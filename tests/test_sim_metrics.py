"""Unit tests for metrics primitives."""

import math

import pytest

from repro.sim.metrics import Histogram, MetricsRegistry, TimeSeries


class TestHistogram:
    def test_mean_and_extremes(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.record(value)
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.count == 4

    def test_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.percentile(50) == pytest.approx(50.0)
        assert histogram.percentile(99) == pytest.approx(99.0)
        assert histogram.percentile(100) == pytest.approx(100.0)

    def test_percentile_out_of_range(self):
        histogram = Histogram()
        histogram.record(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(150)

    def test_empty_histogram_returns_nan(self):
        histogram = Histogram()
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(50))

    def test_interleaved_records_and_queries_stay_correct(self):
        """The cached sorted view must reconcile after every batch of records."""
        histogram = Histogram()
        reference = []
        for round_index in range(5):
            for value in [float((7 * round_index + i) % 13) for i in range(20)]:
                histogram.record(value)
                reference.append(value)
            ordered = sorted(reference)
            assert histogram.percentile(0) == ordered[0]
            assert histogram.percentile(100) == ordered[-1]
            assert histogram.cdf() == [
                (v, (i + 1) / len(ordered)) for i, v in enumerate(ordered)
            ]
            assert histogram.mean == pytest.approx(sum(reference) / len(reference))
            assert histogram.minimum == min(reference)
            assert histogram.maximum == max(reference)

    def test_direct_appends_to_samples_stay_consistent(self):
        """Legacy pattern: appending to the public ``samples`` list directly
        must reconcile into mean/min/max and the sorted view."""
        histogram = Histogram()
        histogram.record(2.0)
        histogram.samples.extend([5.0, 1.0])
        assert histogram.mean == pytest.approx(8.0 / 3.0)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 5.0
        assert histogram.percentile(100) == 5.0
        assert histogram.count == 3

    def test_record_after_direct_append_reconciles_first(self):
        """Regression: record() after a direct append must fold the appended
        value in, not mistake its index for the recorded one."""
        histogram = Histogram()
        histogram.record(1.0)
        histogram.samples.append(2.0)
        histogram.record(3.0)
        assert histogram.mean == pytest.approx(2.0)
        histogram2 = Histogram()
        histogram2.record(5.0)
        histogram2.samples.append(-10.0)
        histogram2.record(7.0)
        assert histogram2.minimum == -10.0
        assert histogram2.maximum == 7.0

    def test_shrinking_samples_recomputes_accumulators(self):
        """Regression: clear()/pop() on the public list must not crash or
        leave stale stats (the pre-optimisation implementation tolerated any
        mutation)."""
        histogram = Histogram()
        histogram.record(1.0)
        histogram.samples.clear()
        histogram.record(2.0)
        assert histogram.mean == 2.0
        assert histogram.minimum == 2.0
        histogram2 = Histogram()
        histogram2.record(5.0)
        histogram2.record(9.0)
        assert histogram2.maximum == 9.0
        histogram2.samples.pop()
        assert histogram2.maximum == 5.0
        assert histogram2.mean == 5.0
        assert histogram2.percentile(100) == 5.0

    def test_clear_then_regrow_is_detected(self):
        """Regression: clear()+extend() to an equal-or-longer length must not
        be mistaken for an appended tail (detected via the last accumulated
        element)."""
        histogram = Histogram()
        histogram.record_many([1.0, 2.0, 3.0])
        assert histogram.percentile(50) == 2.0  # warm the sorted view
        histogram.samples.clear()
        histogram.samples.extend([10.0, 20.0, 30.0, 40.0, 50.0])
        assert histogram.mean == pytest.approx(30.0)
        assert histogram.minimum == 10.0
        assert histogram.maximum == 50.0
        assert histogram.percentile(0) == 10.0
        assert histogram.cdf()[0] == (10.0, 1 / 5)

    def test_invalidate_covers_undetectable_mutations(self):
        """A regrow that reproduces the last accumulated value at its old
        index is not auto-detectable in O(1); invalidate() recovers."""
        histogram = Histogram()
        histogram.record(1.0)
        histogram.record(2.0)
        histogram.samples.clear()
        histogram.samples.extend([9.0, 2.0, 5.0])
        histogram.invalidate()
        assert histogram.mean == pytest.approx(16.0 / 3.0)
        assert histogram.minimum == 2.0
        assert histogram.maximum == 9.0
        assert histogram.percentile(0) == 2.0

    def test_constructor_seeds_accumulators(self):
        histogram = Histogram(samples=[3.0, 1.0, 2.0])
        assert histogram.count == 3
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.percentile(50) == 2.0

    def test_cdf_is_monotone_and_ends_at_one(self):
        histogram = Histogram()
        for value in [3.0, 1.0, 2.0]:
            histogram.record(value)
        cdf = histogram.cdf()
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)
        assert all(f2 >= f1 for f1, f2 in zip(fractions, fractions[1:]))


class TestTimeSeries:
    def test_value_at_step_function(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 2.0

    def test_value_before_first_sample_raises(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.value_at(1.0)

    def test_last(self):
        series = TimeSeries()
        with pytest.raises(ValueError):
            series.last()
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.last() == (2.0, 20.0)


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("x")
        metrics.increment("x", 2.5)
        assert metrics.counter("x") == pytest.approx(3.5)
        assert metrics.counter("missing") == 0.0

    def test_observe_and_snapshot(self):
        metrics = MetricsRegistry()
        metrics.observe("lat", 1.0)
        metrics.observe("lat", 3.0)
        snapshot = metrics.snapshot()
        assert snapshot["lat.mean"] == pytest.approx(2.0)
        assert snapshot["lat.count"] == 2.0

    def test_merge_histograms(self):
        h1 = Histogram(samples=[1.0, 2.0])
        h2 = Histogram(samples=[3.0])
        merged = MetricsRegistry.merge_histograms([h1, h2])
        assert merged.count == 3
