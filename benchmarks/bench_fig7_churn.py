"""Figure 7: maximal tolerated churn rates.

For systems of 50 to 800 nodes, find the highest continuous churn rate
(re-joins per minute, with ~5-6 minute session times) the system sustains.
Three configurations are compared, as in the paper: Sync with (rwl, hc) =
(6, 8), Sync with (11, 5), and Async.  The paper reports that (a) absolute
tolerated churn grows with system size, (b) shorter random walks allow higher
churn, and (c) Async tolerates more churn than Sync (roughly 22.5% versus 18%
of the nodes per minute).
"""

from repro.analysis import format_table
from repro.core.config import AtumParameters, SmrKind
from repro.group.cost import GroupCostModel
from repro.overlay.membership import MembershipConfig, MembershipEngine
from repro.sim import Simulator
from repro.workloads import max_sustainable_churn

CONFIGS = [
    {"label": "SYNC (rwl=6, hc=8)", "kind": SmrKind.SYNC, "rwl": 6, "hc": 8},
    {"label": "SYNC (rwl=11, hc=5)", "kind": SmrKind.SYNC, "rwl": 11, "hc": 5},
    {"label": "ASYNC (guideline)", "kind": SmrKind.ASYNC, "rwl": None, "hc": None},
]


def _engine_factory(system_size, config, seed):
    def factory():
        params = AtumParameters.for_system_size(system_size, config["kind"])
        if config["rwl"] is not None:
            params = params.with_overrides(rwl=config["rwl"], hc=config["hc"])
        sim = Simulator(seed=seed)
        latency = 0.001 if config["kind"] is SmrKind.SYNC else 0.05
        engine = MembershipEngine(
            sim, params.membership_config(), params.cost_model(network_latency=latency)
        )
        engine.build_static([f"n{i}" for i in range(system_size)])
        return engine

    return factory


def _run(scale):
    sizes = [50, 100, 200, 400] if scale == 1 else [50, 100, 200, 400, 800]
    duration = 90.0 * scale
    rows = []
    for size in sizes:
        row = {"system_size": size}
        for config in CONFIGS:
            candidate_fractions = [0.06, 0.10, 0.14, 0.18, 0.225, 0.27, 0.33, 0.40]
            rates = [fraction * size for fraction in candidate_fractions]
            best = max_sustainable_churn(
                _engine_factory(size, config, seed=size), rates_per_minute=rates, duration=duration
            )
            row[config["label"]] = round(best, 1)
            row[f"{config['label']} (%/min)"] = round(100.0 * best / size, 1)
        rows.append(row)
    return rows


def test_fig7_churn(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 7: maximal sustained churn (re-joins/minute)"))

    sync_short = [row["SYNC (rwl=6, hc=8)"] for row in rows]
    sync_long = [row["SYNC (rwl=11, hc=5)"] for row in rows]
    asynchronous = [row["ASYNC (guideline)"] for row in rows]

    # (a) absolute tolerated churn grows with system size for every config.
    assert sync_short == sorted(sync_short)
    assert asynchronous == sorted(asynchronous)
    # (b) shorter random walks tolerate at least as much churn as longer ones.
    assert all(short >= long for short, long in zip(sync_short, sync_long))
    # (c) Async sustains at least as much churn as Sync.
    assert all(a >= s for a, s in zip(asynchronous, sync_long))
    # (d) the relative churn magnitude is in the paper's ballpark (>= ~10%/min
    #     for the largest system measured).
    assert rows[-1]["ASYNC (guideline) (%/min)"] >= 10.0
