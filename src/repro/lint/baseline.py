"""The ratcheted atumlint baseline (``.atumlint-baseline.json``).

Pre-existing accepted debt lives in one explicit, reviewed file instead of
scattered waivers.  Each entry pins a finding by ``(rule, path, snippet)``
— the *content* of the flagged line, so unrelated edits do not churn it —
and must carry a reason.  The ratchet works both ways:

* a finding **not** in the baseline fails ``--check`` (no new debt), and
* a baseline entry matching **no** current finding also fails ``--check``
  (fixed debt must be deleted from the baseline, it can never be
  silently re-spent).

``python -m repro.lint --write-baseline`` regenerates the file from the
current findings, preserving reasons of entries that survive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.core import Finding

BASELINE_FILENAME = ".atumlint-baseline.json"
_UNREVIEWED = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    reason: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)


def load_baseline(path: Path) -> List[BaselineEntry]:
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = []
    for raw in data.get("entries", []):
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                snippet=raw["snippet"],
                reason=raw.get("reason", _UNREVIEWED),
            )
        )
    return entries


def save_baseline(path: Path, entries: Sequence[BaselineEntry]) -> None:
    payload = {
        "comment": (
            "Accepted atumlint debt, ratcheted: --check fails on findings "
            "missing here AND on entries matching no finding.  Every entry "
            "needs a reason; shrink this file, never grow it casually."
        ),
        "entries": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "snippet": entry.snippet,
                "reason": entry.reason,
            }
            for entry in sorted(entries, key=lambda e: e.key())
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@dataclass
class BaselineDiff:
    """Findings vs baseline: what fails the ratchet and why."""

    unbaselined: List[Finding]
    stale: List[BaselineEntry]
    suppressed: List[Finding]

    @property
    def clean(self) -> bool:
        return not self.unbaselined and not self.stale


def diff_against_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> BaselineDiff:
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
        entry.key(): entry for entry in entries
    }
    matched_keys = set()
    unbaselined: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        entry = by_key.get(finding.key())
        if entry is None:
            unbaselined.append(finding)
        else:
            matched_keys.add(entry.key())
            suppressed.append(finding)
    stale = [entry for entry in entries if entry.key() not in matched_keys]
    return BaselineDiff(unbaselined=unbaselined, stale=stale, suppressed=suppressed)


def entries_from_findings(
    findings: Sequence[Finding], previous: Sequence[BaselineEntry]
) -> List[BaselineEntry]:
    """Baseline entries for ``findings``, keeping reasons that survive."""
    reasons = {entry.key(): entry.reason for entry in previous}
    seen = set()
    entries: List[BaselineEntry] = []
    for finding in findings:
        key = finding.key()
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                snippet=finding.snippet,
                reason=reasons.get(key, _UNREVIEWED),
            )
        )
    return entries


__all__ = [
    "BASELINE_FILENAME",
    "BaselineEntry",
    "BaselineDiff",
    "load_baseline",
    "save_baseline",
    "diff_against_baseline",
    "entries_from_findings",
]
