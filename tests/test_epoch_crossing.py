"""Integration coverage of epoch-crossing durable recovery (ISSUE 7).

A node is cut off alone while its vgroup keeps deciding operations, then the
vgroup reconfigures TWICE (two co-members leave) with no further decisions —
so by the heal, the only certified checkpoint is an *old-epoch* certificate
that must be re-anchored into the current epoch by a chain of quorum-signed
epoch-transition records.  The laggard verifies the chain, installs the
certified state, and reaches log equality with its co-members; because the
applications are deterministic functions of the delivered prefix, AShare's
metadata index converges too, verified by snapshot digests.
"""

import pytest

from repro.apps.ashare import AShareCluster
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind
from repro.faults.invariants import check_agreement_logs, cluster_smr_logs
from repro.group.antientropy import AntiEntropyConfig

MB = 1024 * 1024


def build_cluster(seed=11, nodes=40):
    params = AtumParameters(
        hc=3,
        rwl=5,
        gmax=8,
        gmin=4,
        round_duration=0.5,
        smr_kind=SmrKind.ASYNC,
        checkpoint_interval=2,
    )
    # Shuffling re-homes members into other groups on every leave (the
    # paper's anti-targeting defense) — disabled here so the laggard's
    # vgroup keeps a stable core across both reconfigurations and the
    # certificate chain under test actually spans them.
    cluster = AtumCluster(
        params, seed=seed, antientropy=AntiEntropyConfig(), shuffle_enabled=False
    )
    addresses = [f"n{i}" for i in range(nodes)]
    cluster.build_static(addresses)
    return cluster, addresses


def pick_reconfiguring_group(cluster):
    """The largest vgroup: (laggard, two leavers, an in-group put owner).

    The owner must live INSIDE the group: broadcasts are SMR-decided only
    in the origin's vgroup, so an outside owner would leave this group's
    log empty and there would be no checkpoint to certify.
    """
    engine = cluster.engine
    group_id = max(
        sorted(engine.groups), key=lambda gid: len(engine.groups[gid].members)
    )
    members = sorted(engine.groups[group_id].members)
    assert len(members) >= 6, members
    laggard, leavers, owner = members[0], members[1:3], members[3]
    return group_id, laggard, leavers, owner


class TestEpochCrossingIntegration:
    def run_epoch_crossing(self, seed=11):
        cluster, addresses = build_cluster(seed=seed)
        group_id, laggard, leavers, owner = pick_reconfiguring_group(cluster)
        share = AShareCluster(cluster, replication_feedback=False)
        sim = cluster.sim
        # Puts land while everyone is connected, then while the laggard is
        # cut — the cut ones are what state transfer must re-deliver.
        for index, when in enumerate((1.0, 2.0, 3.0, 6.0, 7.0)):
            sim.schedule(
                when,
                lambda i=index: share.put(owner, f"file-{i}", size_bytes=4 * MB, num_chunks=4),
                tag="epoch-crossing.put",
            )
        others = [address for address in addresses if address != laggard]
        split_state = {}
        sim.schedule(
            5.0,
            lambda: split_state.setdefault(
                "id", cluster.network.split([others, [laggard]])
            ),
            tag="epoch-crossing.split",
        )
        # Two reconfigurations of the laggard's vgroup while it is cut and
        # nothing new is decided afterwards: the only certified checkpoint
        # crosses two epoch boundaries.
        for when, leaver in zip((10.0, 14.0), leavers):
            sim.schedule(
                when, lambda a=leaver: cluster.engine.leave(a), tag="epoch-crossing.leave"
            )
        sim.schedule(
            18.0,
            lambda: cluster.network.merge(split_state["id"]),
            tag="epoch-crossing.heal",
        )
        cluster.sim.run(until=90.0)
        return cluster, share, group_id, laggard, owner

    def test_isolated_replica_recovers_across_two_reconfigurations(self):
        cluster, share, group_id, laggard, owner = self.run_epoch_crossing()
        metrics = cluster.sim.metrics
        # The surviving members really formed quorum-signed transition
        # records (two epoch boundaries were crossed)...
        assert metrics.counter("smr.checkpoint.epoch_transitions") > 0
        # ...and the laggard adopted a cross-epoch anchor through the chain.
        assert metrics.counter("smr.checkpoint.anchors_adopted") > 0
        # Log *equality* for the reconfigured group — the laggard's gap
        # closed through certificate-verified transfer, not luck.
        logs = cluster_smr_logs(cluster)
        assert group_id in logs
        for gid, group_logs in logs.items():
            assert check_agreement_logs(group_logs, require_equality=True) == [], gid
        laggard_log = [
            operation.op_id
            for operation in cluster.nodes[laggard].replica.decided_log
        ]
        assert laggard_log in logs[group_id]
        lengths = {len(log) for log in logs[group_id]}
        assert lengths == {5}, lengths

    def test_application_state_reaches_digest_equality(self):
        cluster, share, group_id, laggard, owner = self.run_epoch_crossing()
        # Every put is fully delivered, laggard included.
        for index in range(5):
            record = share.index_of(laggard).get(owner, f"file-{index}")
            assert record is not None, index
        # App state is a deterministic function of the delivered prefix:
        # the laggard's certified recovery makes its snapshot digest equal
        # a co-member's (neither stores replicas, so state is pure index).
        reference = next(
            address
            for address in sorted(cluster.nodes)
            if address not in (laggard, owner) and not share.stored[address]
        )
        assert share.snapshot_digest(laggard) == share.snapshot_digest(reference)

    def test_run_replays_byte_identically(self):
        first, _, _, _, _ = self.run_epoch_crossing()
        second, _, _, _, _ = self.run_epoch_crossing()
        assert dict(first.sim.metrics.counters) == dict(second.sim.metrics.counters)
