"""Integration tests: full Atum clusters (config, broadcast, faults, churn)."""

import pytest

from repro.core import AtumCluster, AtumParameters, SmrKind
from repro.core.config import parameter_table


class TestParameters:
    def test_defaults_valid(self):
        params = AtumParameters()
        assert params.gmin <= params.gmax
        assert params.walk_mode is not None

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AtumParameters(gmin=10, gmax=5)

    def test_for_system_size_scales_group_size(self):
        small = AtumParameters.for_system_size(50)
        large = AtumParameters.for_system_size(5000)
        assert large.gmax >= small.gmax
        assert large.rwl >= small.rwl

    def test_async_uses_bigger_k(self):
        sync = AtumParameters.for_system_size(800, SmrKind.SYNC)
        asyn = AtumParameters.for_system_size(800, SmrKind.ASYNC)
        assert asyn.k > sync.k
        assert asyn.gmax > sync.gmax

    def test_fault_threshold_by_engine(self):
        sync = AtumParameters(smr_kind=SmrKind.SYNC)
        asyn = AtumParameters(smr_kind=SmrKind.ASYNC)
        assert sync.fault_threshold(13) == 6
        assert asyn.fault_threshold(13) == 4

    def test_parameter_table_matches_table_1(self):
        table = parameter_table()
        names = [row["parameter"] for row in table]
        assert names == ["hc", "rwl", "gmax", "gmin", "k"]

    def test_membership_and_smr_configs_derived(self):
        params = AtumParameters(hc=4, rwl=8, gmax=10, gmin=5, round_duration=1.5)
        membership = params.membership_config()
        assert membership.hc == 4 and membership.rwl == 8
        assert params.smr_config().round_duration == 1.5

    def test_with_overrides(self):
        params = AtumParameters()
        changed = params.with_overrides(hc=9)
        assert changed.hc == 9
        assert params.hc != 9 or params.hc == 9  # original untouched
        assert changed is not params


def small_params(kind=SmrKind.SYNC, round_duration=0.5):
    return AtumParameters(
        hc=3,
        rwl=5,
        gmax=6,
        gmin=3,
        smr_kind=kind,
        round_duration=round_duration,
        request_timeout=2.0,
        expected_system_size=40,
    )


class TestBootstrapAndStatic:
    def test_bootstrap_single_node(self):
        cluster = AtumCluster(small_params())
        node = cluster.bootstrap("n0")
        assert cluster.system_size == 1
        assert node.is_member

    def test_build_static_assigns_views_to_all_nodes(self):
        cluster = AtumCluster(small_params())
        addresses = [f"n{i}" for i in range(30)]
        cluster.build_static(addresses)
        assert cluster.system_size == 30
        for address in addresses:
            assert cluster.node(address).is_member
            assert cluster.node(address).replica is not None

    def test_directory_exposes_neighbors(self):
        cluster = AtumCluster(small_params())
        cluster.build_static([f"n{i}" for i in range(30)])
        some_group = next(iter(cluster.engine.groups))
        neighbors = cluster.cycle_neighbor_ids(some_group)
        assert len(neighbors) == cluster.params.hc
        for pred, succ in neighbors:
            assert cluster.view_of_group(pred) is not None
            assert cluster.view_of_group(succ) is not None


class TestBroadcastSync:
    def test_broadcast_reaches_every_correct_node(self):
        cluster = AtumCluster(small_params())
        cluster.build_static([f"n{i}" for i in range(30)])
        bcast = cluster.broadcast("n0", {"hello": "world"})
        cluster.run(until=60.0)
        assert cluster.delivery_fraction(bcast) == 1.0

    def test_broadcast_delivery_calls_application_callback(self):
        received = []
        cluster = AtumCluster(small_params())
        cluster.build_static(
            [f"n{i}" for i in range(12)], deliver_fn=lambda m: received.append(m.payload)
        )
        cluster.broadcast("n3", "payload-x")
        cluster.run(until=60.0)
        assert received.count("payload-x") == 12

    def test_broadcast_latency_bounded_by_rounds(self):
        params = small_params(round_duration=0.5)
        cluster = AtumCluster(params)
        cluster.build_static([f"n{i}" for i in range(40)])
        start = cluster.sim.now
        bcast = cluster.broadcast("n0", "m")
        cluster.run(until=60.0)
        latencies = cluster.delivery_latencies(bcast, start)
        assert len(latencies) == 40
        # Paper (Fig. 8): Sync latency is bounded by ~8 rounds.
        assert max(latencies) <= 10 * params.round_duration

    def test_multiple_broadcasts_from_different_origins(self):
        cluster = AtumCluster(small_params())
        cluster.build_static([f"n{i}" for i in range(24)])
        ids = [cluster.broadcast(f"n{i}", f"msg-{i}") for i in range(0, 24, 6)]
        cluster.run(until=120.0)
        for bcast in ids:
            assert cluster.delivery_fraction(bcast) == 1.0

    def test_broadcast_from_non_member_raises(self):
        cluster = AtumCluster(small_params())
        cluster.build_static([f"n{i}" for i in range(10)])
        outsider = cluster.add_node("outsider")
        with pytest.raises(RuntimeError):
            outsider.broadcast("x")


class TestBroadcastAsync:
    def test_async_broadcast_reaches_everyone_faster_than_sync(self):
        def run(kind):
            cluster = AtumCluster(small_params(kind=kind, round_duration=1.0), seed=3)
            cluster.build_static([f"n{i}" for i in range(30)])
            start = cluster.sim.now
            bcast = cluster.broadcast("n0", "m")
            cluster.run(until=120.0)
            latencies = cluster.delivery_latencies(bcast, start)
            assert cluster.delivery_fraction(bcast) == 1.0
            return max(latencies)

        sync_latency = run(SmrKind.SYNC)
        async_latency = run(SmrKind.ASYNC)
        assert async_latency < sync_latency

    def test_async_uses_wan_profile_by_default(self):
        from repro.net.latency import WanProfile

        cluster = AtumCluster(small_params(kind=SmrKind.ASYNC))
        assert isinstance(cluster.latency_model, WanProfile)


class TestByzantineFaults:
    def test_broadcast_with_byzantine_minority_still_delivers(self):
        params = small_params()
        addresses = [f"n{i}" for i in range(34)]
        byzantine = addresses[-2:]  # ~6% of nodes, as in the paper
        cluster = AtumCluster(params, seed=1)
        cluster.build_static(addresses, byzantine=byzantine)
        bcast = cluster.broadcast("n0", "despite-faults")
        cluster.run(until=90.0)
        assert cluster.delivery_fraction(bcast) == 1.0

    def test_latency_unaffected_by_byzantine_nodes(self):
        params = small_params()

        def max_latency(byzantine):
            cluster = AtumCluster(params, seed=5)
            addresses = [f"n{i}" for i in range(32)]
            cluster.build_static(addresses, byzantine=byzantine)
            origin = next(a for a in addresses if a not in byzantine)
            start = cluster.sim.now
            bcast = cluster.broadcast(origin, "m")
            cluster.run(until=90.0)
            latencies = cluster.delivery_latencies(bcast, start)
            return max(latencies)

        clean = max_latency([])
        faulty = max_latency(["n30", "n31"])
        # Paper section 6.1.3: no performance decay with 5.8% Byzantine nodes.
        assert faulty <= clean * 1.5 + 1.0

    def test_mute_crash_does_not_block_delivery_to_others(self):
        cluster = AtumCluster(small_params(), seed=2)
        cluster.build_static([f"n{i}" for i in range(20)])
        cluster.crash("n7")
        bcast = cluster.broadcast("n0", "m")
        cluster.run(until=60.0)
        # All correct nodes except possibly the crashed one deliver.
        fraction = cluster.delivery_fraction(bcast)
        assert fraction >= 18 / 20


class TestJoinLeaveThroughCluster:
    def test_join_through_contact_then_broadcast(self):
        cluster = AtumCluster(small_params(), seed=4)
        cluster.build_static([f"n{i}" for i in range(12)])
        cluster.join("newcomer", contact="n0")
        cluster.run_until_membership_quiescent(max_time=600.0)
        assert cluster.system_size == 13
        assert cluster.node("newcomer").is_member
        bcast = cluster.broadcast("newcomer", "hello-from-newcomer")
        cluster.run(until=cluster.sim.now + 60.0)
        assert cluster.delivery_fraction(bcast) == 1.0

    def test_leave_removes_membership(self):
        cluster = AtumCluster(small_params(), seed=6)
        cluster.build_static([f"n{i}" for i in range(16)])
        cluster.leave("n3")
        cluster.run_until_membership_quiescent(max_time=600.0)
        assert not cluster.node("n3").is_member
        assert cluster.system_size == 15

    def test_growth_from_bootstrap_via_joins(self):
        cluster = AtumCluster(small_params(), seed=7)
        cluster.bootstrap("seed-node")
        for index in range(10):
            cluster.join(f"j{index}", contact="seed-node")
            cluster.run(until=cluster.sim.now + 30.0)
        cluster.run_until_membership_quiescent(max_time=1200.0)
        assert cluster.system_size == 11
        cluster.engine.validate()
