"""Message digests (SHA-256) over canonically serialized objects.

The canonical encoding is the hot path: every group message, signature and
certificate digest passes through it.  Three optimisations keep it cheap while
producing byte-identical digests to the original implementation:

* the canonical transform walks dataclasses field-by-field instead of calling
  :func:`dataclasses.asdict` (which deep-copies the whole object graph), and
  leaves key sorting to ``json.dumps(sort_keys=True)`` instead of pre-sorting;
* digests of immutable payloads (frozen dataclasses, tuples, strings, ...)
  are memoised in a bounded identity-keyed LRU — in-simulation payload objects
  are shared by reference across nodes, so re-digesting the same broadcast at
  every hop becomes a dictionary hit;
* a pluggable "cost-model-only" mode (:func:`set_digest_mode`) skips SHA-256
  entirely and uses the canonical encoding itself as the digest token, for
  benchmarks that only need timing, not cryptography.  Tokens remain
  deterministic and collision-free, so protocol equality checks still hold.

Set sorting uses an explicit fallback key so mixed-type sets cannot raise
``TypeError`` (sets of a single comparable type keep their historical order,
and therefore their historical digests).
"""

from __future__ import annotations

import json
import hashlib
import os
from contextlib import contextmanager
from dataclasses import asdict, fields, is_dataclass
from typing import Any, Dict, Iterator, Tuple

#: Type alias for hex-encoded digests.
Digest = str

#: Digest modes: ``real`` computes SHA-256; ``cost_only`` returns the (cheap,
#: deterministic, collision-free) canonical encoding prefixed with ``cm:`` so
#: timing-only benchmarks skip cryptographic hashing entirely.
DIGEST_MODE_REAL = "real"
DIGEST_MODE_COST_ONLY = "cost_only"
_DIGEST_MODES = (DIGEST_MODE_REAL, DIGEST_MODE_COST_ONLY)

_digest_mode = os.environ.get("ATUM_DIGEST_MODE", DIGEST_MODE_REAL)
if _digest_mode not in _DIGEST_MODES:
    import warnings

    warnings.warn(
        f"ignoring invalid ATUM_DIGEST_MODE={_digest_mode!r}; "
        f"expected one of {_DIGEST_MODES}, using {DIGEST_MODE_REAL!r}",
        stacklevel=2,
    )
    _digest_mode = DIGEST_MODE_REAL


def get_digest_mode() -> str:
    """Return the active digest mode (``real`` or ``cost_only``)."""
    return _digest_mode


def set_digest_mode(mode: str) -> None:
    """Switch the global digest mode; clears the digest memo on a real switch."""
    global _digest_mode
    if mode not in _DIGEST_MODES:
        raise ValueError(f"unknown digest mode {mode!r}; expected one of {_DIGEST_MODES}")
    if mode == _digest_mode:
        return
    _digest_mode = mode
    _memo.clear()


@contextmanager
def digest_mode(mode: str) -> Iterator[None]:
    """Temporarily switch the digest mode (used by benchmarks and tests)."""
    previous = get_digest_mode()
    set_digest_mode(mode)
    try:
        yield
    finally:
        set_digest_mode(previous)


def _set_sort_key(item: Any) -> Tuple[str, str]:
    """Deterministic ordering for canonicalised set items of mixed types."""
    return (item.__class__.__name__, json.dumps(item, sort_keys=True, default=str))


#: Per-dataclass cache of field names, keyed by class (fields() re-validates
#: the dataclass protocol on every call; field sets are fixed per class).
#: Built from ``dataclasses.fields``, which excludes InitVar/ClassVar
#: pseudo-fields that have no instance attribute.
_field_names_cache: Dict[type, Tuple[str, ...]] = {}


def _dataclass_field_names(cls: type) -> Tuple[str, ...]:
    names = _field_names_cache.get(cls)
    if names is None:
        names = _field_names_cache[cls] = tuple(spec.name for spec in fields(cls))
    return names


def _sort_set_items(items: list) -> list:
    try:
        items.sort()
    except TypeError:
        items.sort(key=_set_sort_key)
    return items


def _canonical(obj: Any) -> Any:
    """Convert ``obj`` into a JSON-serializable canonical form.

    Kept as the reference implementation (and for external callers); the
    digest fast path uses :func:`_canonical_fast`, which produces the same
    JSON under ``json.dumps(sort_keys=True, default=str)``.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return {"__dc__": type(obj).__name__, **_canonical(asdict(obj))}
    if isinstance(obj, dict):
        return {
            str(key): _canonical(value)
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return _sort_set_items([_canonical(item) for item in obj])
    if isinstance(obj, bytes):
        return obj.hex()
    return obj


def _canonical_fast(obj: Any, in_dataclass: bool) -> Any:
    """Cheap canonical transform, JSON-equivalent to :func:`_canonical`.

    ``in_dataclass`` mirrors ``asdict`` semantics: a dataclass nested anywhere
    beneath another dataclass is flattened to a plain field dict without the
    ``__dc__`` marker, exactly as ``asdict`` did in the reference encoding.
    Dict keys are stringified but not pre-sorted — ``json.dumps(sort_keys=True)``
    performs the one and only sort.
    """
    cls = obj.__class__
    if cls is str or cls is int or cls is float or cls is bool or obj is None:
        return obj
    if is_dataclass(obj) and not isinstance(obj, type):
        out = {
            name: _canonical_fast(getattr(obj, name), True)
            for name in _dataclass_field_names(cls)
        }
        if not in_dataclass:
            out["__dc__"] = cls.__name__
        return out
    if isinstance(obj, dict):
        return {str(key): _canonical_fast(value, in_dataclass) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical_fast(item, in_dataclass) for item in obj]
    if isinstance(obj, (set, frozenset)):
        # ``asdict`` never recursed into sets (it deep-copied them), so set
        # elements were always canonicalised by the reference path *with*
        # their ``__dc__`` markers — even beneath a dataclass.  Reset the
        # flag to preserve that encoding exactly.
        return _sort_set_items([_canonical_fast(item, False) for item in obj])
    if isinstance(obj, bytes):
        return obj.hex()
    return obj


def canonical_encode(obj: Any) -> str:
    """Return the canonical JSON encoding of ``obj`` (the pre-image of digests)."""
    return json.dumps(_canonical_fast(obj, False), sort_keys=True, default=str)


def digest_token_mode(token: str) -> str:
    """The digest mode a token was produced under (``cm:`` marks cost-only)."""
    return DIGEST_MODE_COST_ONLY if token.startswith("cm:") else DIGEST_MODE_REAL


def _digest_encoded(encoded: str, mode: str) -> Digest:
    """Turn a canonical encoding into a digest token for ``mode``."""
    if mode == DIGEST_MODE_COST_ONLY:
        return "cm:" + encoded
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def digest_object_in_mode(obj: Any, mode: str) -> Digest:
    """Digest ``obj`` under an explicit mode, regardless of the global one.

    Verification paths use this to check a signature in the mode its digest
    token was created under, so signatures made before a mode switch keep
    verifying after it.
    """
    if mode == _digest_mode:
        return digest_object(obj)
    return _digest_encoded(canonical_encode(obj), mode)


# ---------------------------------------------------------------------- memo
#
# Identity-keyed LRU for digests of immutable payloads.  Keys are ``id(obj)``
# and each entry keeps a strong reference to the object, which guarantees the
# id cannot be recycled while the entry is alive.  Only types whose value
# cannot change under an existing reference are memoised.

_MEMO_LIMIT = 8192
_memo: Dict[int, Tuple[Any, str]] = {}
_MEMO_SCALAR_TYPES = (str, bytes, int, float, complex, type(None))


def _memoizable(obj: Any) -> bool:
    """Whether ``obj`` is *deeply* immutable and safe to memoise by identity.

    The outer type being immutable is not enough: a tuple or frozen dataclass
    can hold a mutable dict/list whose mutation would change the digest while
    the identity stays the same.  The walk runs once per memo store (hits
    never reach it), so its cost is amortised away.
    """
    if isinstance(obj, _MEMO_SCALAR_TYPES):
        return True
    if isinstance(obj, (tuple, frozenset)):
        return all(_memoizable(item) for item in obj)
    params = getattr(obj.__class__, "__dataclass_params__", None)
    if params is not None and params.frozen:
        return all(
            _memoizable(getattr(obj, name))
            for name in _dataclass_field_names(obj.__class__)
        )
    return False


def clear_digest_memo() -> None:
    """Drop all memoised digests (tests and mode switches)."""
    _memo.clear()


def digest_bytes(data: bytes) -> Digest:
    """Return the SHA-256 hex digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def digest_object(obj: Any) -> Digest:
    """Return the digest of an arbitrary (JSON-encodable) object.

    In ``real`` mode this is the SHA-256 hex digest of the canonical JSON
    encoding (byte-identical to the historical implementation); in
    ``cost_only`` mode it is the canonical encoding itself, prefixed with
    ``cm:`` — equal objects still map to equal digests, distinct objects to
    distinct digests, but no cryptographic hash is computed.
    """
    key = id(obj)  # atumlint: allow[ATL008] identity-LRU memo key, guarded by `is obj`; never ordered or serialized
    entry = _memo.get(key)
    if entry is not None and entry[0] is obj:
        # Refresh recency so hot shared payloads are not evicted first.
        del _memo[key]
        _memo[key] = entry
        return entry[1]
    result = _digest_encoded(
        json.dumps(_canonical_fast(obj, False), sort_keys=True, default=str),
        _digest_mode,
    )
    # The deep-immutability walk runs only on the store path; memo hits
    # return above on a single dict probe.
    if _memoizable(obj):
        if len(_memo) >= _MEMO_LIMIT:
            # Evict the oldest entry (dicts preserve insertion order).
            _memo.pop(next(iter(_memo)))
        _memo[id(obj)] = (obj, result)  # atumlint: allow[ATL008] identity-LRU memo key; cache only, never protocol state
    return result


__all__ = [
    "Digest",
    "DIGEST_MODE_REAL",
    "DIGEST_MODE_COST_ONLY",
    "canonical_encode",
    "clear_digest_memo",
    "digest_bytes",
    "digest_mode",
    "digest_object",
    "digest_object_in_mode",
    "digest_token_mode",
    "get_digest_mode",
    "set_digest_mode",
]
