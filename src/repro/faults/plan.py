"""Composable fault plans: the declarative schema of the fault subsystem.

A :class:`FaultPlan` describes *what goes wrong and when* in one simulated
run, as data rather than per-experiment driver code:

* :class:`Partition` — either a set of addresses isolated from the rest of
  the network between ``start`` and ``heal_at`` (``None`` = never heals),
  or — with ``sides`` — a *side-preserving* split whose sides stay
  internally connected while cross-side traffic is dropped;
* :class:`LinkFault` — a time-windowed per-link perturbation (loss,
  duplication, added delay / jitter spikes, payload corruption) matching a
  sender/receiver pattern (``None`` matches any address);
* :class:`NodeFault` — a node-behaviour change (crash with optional
  recovery, silent Byzantine, the paper's §6.1.3 heartbeat-only +
  evict-proposing adversary, or an equivocating broadcaster).

Plans are immutable and validated at construction; they are *applied* by
:class:`repro.faults.behaviours.FaultController` (full cluster) or
:func:`repro.faults.injector.install_link_faults` (bare network).  All
randomness consumed while executing a plan is drawn from dedicated streams
of the simulator's seeded RNG registry (``faults.network``,
``faults.control``), so a given ``(seed, plan)`` pair always produces the
same run — and an **empty plan consumes nothing at all**, keeping golden
traces byte-identical to runs without the fault subsystem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

#: Node behaviours a :class:`NodeFault` may request.
#:
#: * ``"crash"`` — the node stops responding (and heartbeating); with a
#:   ``stop`` time it recovers (crash-recover).
#: * ``"silent"`` — keeps heartbeating but ignores every other protocol
#:   message (the paper's asynchronous adversary).
#: * ``"mute"`` — completely unresponsive, heartbeats included.
#: * ``"evict_attack"`` — the §6.1.3 synchronous adversary: heartbeats only,
#:   plus periodic eviction proposals against correct vgroup peers.
#: * ``"equivocate"`` — participates in gossip but sends conflicting payload
#:   variants of each forwarded group message to disjoint halves of the
#:   destination vgroup.
#: * ``"rejoin_attack"`` — the paper's adaptive join-leave adversary: the
#:   coalition strategically leaves and re-joins trying to concentrate its
#:   members in one vgroup (random-walk placement is what defeats it).
#:   Protocol-wise the node behaves like ``"silent"`` (heartbeats only);
#:   the leave/re-join schedule is driven by
#:   :class:`repro.faults.behaviours.FaultController` at ``attack_period``.
#:
#: The four *responder* behaviours attack the recovery path instead of the
#: dissemination path: the node participates in every protocol normally —
#: it heartbeats, gossips, votes, signs checkpoints (so it legitimately
#: enters the certifier rotation recovering replicas fetch state from) —
#: and misbehaves only when serving a state-transfer request:
#:
#: * ``"stonewall"`` — accepts transfer requests and never replies, burning
#:   one full request-layer timeout per attempt.
#: * ``"slow_drip"`` — replies *correctly* but just inside the request's
#:   deadline, maximising latency without ever producing rejectable
#:   evidence.
#: * ``"garbage_serve"`` — replies promptly with a well-formed response
#:   whose operation bodies are tampered: the certified digest check
#:   rejects it (``smr.checkpoint.rejected_digest_mismatch``).
#: * ``"stale_cert"`` — serves the *previous* stable certificate: a
#:   genuinely signed but useless answer (stonewalls when no older
#:   certificate exists yet).
NODE_BEHAVIOURS = (
    "crash",
    "silent",
    "mute",
    "evict_attack",
    "equivocate",
    "rejoin_attack",
    "stonewall",
    "slow_drip",
    "garbage_serve",
    "stale_cert",
)

#: The subset of :data:`NODE_BEHAVIOURS` that attacks state-transfer
#: serving while participating normally in every other protocol.
RESPONDER_BEHAVIOURS = ("stonewall", "slow_drip", "garbage_serve", "stale_cert")


@dataclass(frozen=True)
class Partition:
    """Cut nodes off from (parts of) the network for a time window.

    Two shapes are expressible:

    * **Per-node isolation** (``members`` only): each listed address can
      neither send nor receive — not even to other members of the same
      partition.  This models nodes behind a failed switch/uplink (each
      looks crashed to everyone, including each other), which is also how
      the paper's fault injection treats unreachable nodes.
    * **Side-preserving split** (``sides``): the named sides stay internally
      connected and only *cross-side* traffic is dropped, so each side keeps
      running its own heartbeats and SMR.  This is the paper's hard case —
      divergence on two live sides followed by reconciliation after the
      heal.  Addresses not named by any side are unaffected (they can talk
      to everyone).  ``members`` is derived as the union of the sides.

    Attributes:
        members: Addresses to cut off (derived from ``sides`` when given).
        start: Simulated time at which the partition forms.
        heal_at: Simulated time at which it heals (``None`` = permanent).
        sides: Optional disjoint address groups forming a side-preserving
            split (at least two, each non-empty).
    """

    members: Tuple[str, ...] = ()
    start: float = 0.0
    heal_at: Optional[float] = None
    sides: Optional[Tuple[Tuple[str, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.sides is not None:
            if len(self.sides) < 2:
                raise ValueError("a side-preserving partition needs at least two sides")
            union: set = set()
            for side in self.sides:
                if not side:
                    raise ValueError("every side of a partition must be non-empty")
                overlap = union.intersection(side)
                if overlap:
                    raise ValueError(
                        f"partition sides must be disjoint; {sorted(overlap)} appear twice"
                    )
                union.update(side)
            if self.members and set(self.members) != union:
                raise ValueError(
                    "members of a side-preserving partition must equal the union of its sides"
                )
            if not self.members:
                object.__setattr__(self, "members", tuple(sorted(union)))
        if not self.members:
            raise ValueError("a partition needs at least one member")
        if self.start < 0.0:
            raise ValueError("partition start must be non-negative")
        if self.heal_at is not None and self.heal_at <= self.start:
            raise ValueError("heal_at must be after start")

    @property
    def is_side_preserving(self) -> bool:
        return self.sides is not None


@dataclass(frozen=True)
class LinkFault:
    """A time-windowed perturbation of matching network links.

    ``src``/``dst`` of ``None`` match any sender/receiver, so a single rule
    can degrade the whole network, one node's uplink (``src=addr``) or
    downlink (``dst=addr``), or one directed link.

    Attributes:
        src: Sender address pattern (``None`` = any).
        dst: Receiver address pattern (``None`` = any).
        start: Window start (inclusive).
        stop: Window end (exclusive; ``inf`` = forever).
        loss: Probability a matching message is dropped.
        duplicate: Probability a matching message is delivered twice.
        extra_delay: Deterministic extra propagation delay in seconds.
        jitter: Upper bound of an additional uniform random delay.
        corrupt: Probability a matching message is delivered *bit-flipped*.
            Corrupted group-message shares fail the receiver's payload-digest
            verification and are discarded; corrupted frames of other
            protocols fail transport authentication and are dropped whole.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    start: float = 0.0
    stop: float = math.inf
    loss: float = 0.0
    duplicate: float = 0.0
    extra_delay: float = 0.0
    jitter: float = 0.0
    corrupt: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.extra_delay < 0.0 or self.jitter < 0.0:
            raise ValueError("extra_delay and jitter must be non-negative")
        if self.stop <= self.start:
            raise ValueError("stop must be after start")

    def matches(self, sender: str, receiver: str, now: float) -> bool:
        """Whether this rule applies to a message on ``sender -> receiver`` at ``now``."""
        if now < self.start or now >= self.stop:
            return False
        if self.src is not None and self.src != sender:
            return False
        if self.dst is not None and self.dst != receiver:
            return False
        return True


@dataclass(frozen=True)
class NodeFault:
    """Switch one node into a faulty behaviour for a time window.

    Attributes:
        address: The node whose behaviour changes.
        behaviour: One of :data:`NODE_BEHAVIOURS`.
        start: Time at which the behaviour begins.
        stop: Time at which the node returns to correct behaviour
            (``None`` = never; for ``"crash"`` a ``stop`` makes it
            crash-recover).
        attack_period: Interval between eviction proposals for
            ``"evict_attack"``, and between strategic leave/re-join moves
            for ``"rejoin_attack"``.
    """

    address: str
    behaviour: str = "crash"
    start: float = 0.0
    stop: Optional[float] = None
    attack_period: float = 30.0

    def __post_init__(self) -> None:
        if self.behaviour not in NODE_BEHAVIOURS:
            raise ValueError(
                f"unknown behaviour {self.behaviour!r}; expected one of {NODE_BEHAVIOURS}"
            )
        if self.start < 0.0:
            raise ValueError("start must be non-negative")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("stop must be after start")
        if self.attack_period <= 0.0:
            raise ValueError("attack_period must be positive")


@dataclass(frozen=True)
class GroupSlowdown:
    """Straggler vgroups: stretch membership-operation durations.

    Models slow vgroups (overloaded hosts, cross-datacenter members) whose
    agreement and state-transfer steps take ``factor`` times longer than the
    cost model predicts, within a time window.  Installed as the membership
    engine's ``cost_perturbation`` hook by
    :class:`repro.faults.behaviours.FaultController`; the added latency is
    observed as ``membership.slowdown_penalty`` so scenario rows can report
    the straggler-induced operation-latency penalty.

    Attributes:
        groups: Vgroup ids to slow down (empty = every vgroup).
        factor: Duration multiplier (``>= 1``).
        start: Window start (inclusive).
        stop: Window end (exclusive; ``inf`` = forever).
    """

    groups: Tuple[str, ...] = ()
    factor: float = 2.0
    start: float = 0.0
    stop: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        if self.start < 0.0:
            raise ValueError("start must be non-negative")
        if self.stop <= self.start:
            raise ValueError("stop must be after start")

    def applies(self, group_id: str, now: float) -> bool:
        if now < self.start or now >= self.stop:
            return False
        return not self.groups or group_id in self.groups


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, composable bundle of faults applied to one run.

    An empty plan is the identity: applying it schedules nothing, installs
    nothing and draws no randomness, so runs are byte-identical to runs
    without the fault subsystem (enforced by the golden-trace tests).
    """

    partitions: Tuple[Partition, ...] = ()
    links: Tuple[LinkFault, ...] = ()
    nodes: Tuple[NodeFault, ...] = ()
    slowdowns: Tuple[GroupSlowdown, ...] = ()

    def is_empty(self) -> bool:
        return not (self.partitions or self.links or self.nodes or self.slowdowns)

    def faulted_addresses(self) -> FrozenSet[str]:
        """Every address named by a partition or node fault.

        Invariant monitors exempt these from the "correct node evicted"
        check: a partitioned or crashed node missing heartbeats *should* be
        evicted, exactly as the paper treats unresponsive nodes as failed.
        """
        addresses = set()
        for partition in self.partitions:
            addresses.update(partition.members)
        for node_fault in self.nodes:
            addresses.add(node_fault.address)
        return frozenset(addresses)

    def unavailable_addresses(self) -> FrozenSet[str]:
        """Addresses the plan makes *unavailable* (isolated or node-faulted).

        Unlike :meth:`faulted_addresses`, members of a *side-preserving*
        partition are excluded: each side keeps operating, so the paper's
        delivery bound still covers broadcasts those nodes originate —
        post-heal reconciliation is expected to deliver them everywhere.
        """
        addresses = set()
        for partition in self.partitions:
            if not partition.is_side_preserving:
                addresses.update(partition.members)
        for node_fault in self.nodes:
            addresses.add(node_fault.address)
        return frozenset(addresses)

    def compose(self, other: "FaultPlan") -> "FaultPlan":
        """The plan applying both this plan's faults and ``other``'s."""
        return FaultPlan(
            partitions=self.partitions + other.partitions,
            links=self.links + other.links,
            nodes=self.nodes + other.nodes,
            slowdowns=self.slowdowns + other.slowdowns,
        )

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return self.compose(other)


__all__ = [
    "FaultPlan",
    "Partition",
    "LinkFault",
    "NodeFault",
    "GroupSlowdown",
    "NODE_BEHAVIOURS",
    "RESPONDER_BEHAVIOURS",
]
