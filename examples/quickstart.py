#!/usr/bin/env python3
"""Quickstart: bring up an Atum system, broadcast a message, join a node.

This example walks through the core Atum API on a small simulated deployment:

1. build a 30-node system (the state a deployment reaches after growing);
2. broadcast a message from one node and check every node delivers it;
3. join a new node through a contact node and let it broadcast too;
4. inject a couple of silent Byzantine nodes and show that delivery to the
   correct nodes is unaffected.

Run with:  python examples/quickstart.py
"""

from repro.core import AtumCluster, AtumParameters, SmrKind


def main() -> None:
    # A configuration suitable for a few tens of nodes, using the synchronous
    # (Dolev-Strong) engine with 0.5-second rounds.
    params = AtumParameters(
        hc=3, rwl=6, gmax=8, gmin=4, smr_kind=SmrKind.SYNC, round_duration=0.5,
        expected_system_size=40,
    )
    cluster = AtumCluster(params, seed=42)

    addresses = [f"node-{i}" for i in range(30)]
    cluster.build_static(addresses)
    print(f"built a system of {cluster.system_size} nodes in {cluster.group_count} vgroups")

    # --- broadcast -----------------------------------------------------------
    start = cluster.sim.now
    bcast = cluster.broadcast("node-0", {"hello": "volatile groups"})
    cluster.run(until=60.0)
    latencies = cluster.delivery_latencies(bcast, start)
    print(
        f"broadcast delivered to {len(latencies)}/{cluster.system_size} nodes, "
        f"median latency {sorted(latencies)[len(latencies) // 2]:.2f}s, "
        f"max {max(latencies):.2f}s"
    )

    # --- join ----------------------------------------------------------------
    cluster.join("newcomer", contact="node-0")
    cluster.run_until_membership_quiescent(max_time=600.0)
    print(f"'newcomer' joined; system size is now {cluster.system_size}")

    start = cluster.sim.now
    bcast2 = cluster.broadcast("newcomer", "greetings from the newcomer")
    cluster.run(until=cluster.sim.now + 60.0)
    print(f"newcomer's broadcast reached {cluster.delivery_fraction(bcast2):.0%} of correct nodes")

    # --- Byzantine nodes -----------------------------------------------------
    cluster.make_byzantine(["node-7", "node-13"])
    start = cluster.sim.now
    bcast3 = cluster.broadcast("node-1", "still fine with Byzantine nodes around")
    cluster.run(until=cluster.sim.now + 60.0)
    print(
        f"with 2 Byzantine nodes, the broadcast still reached "
        f"{cluster.delivery_fraction(bcast3):.0%} of correct nodes"
    )


if __name__ == "__main__":
    main()
