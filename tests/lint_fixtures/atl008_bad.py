"""ATL008 fixture: hash()/id() values reaching ordering decisions."""


def order_key(message):
    return hash(message.sender)


def tiebreak(left, right):
    return left if id(left) < id(right) else right
