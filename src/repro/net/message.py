"""The wire-level message record used by the network substrate."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_MESSAGE_COUNTER = itertools.count(1)


@dataclass
class Message:
    """A message in flight between two actors.

    Attributes:
        sender: Address of the sending actor.
        receiver: Address of the receiving actor.
        payload: Arbitrary protocol payload (usually a dataclass).
        size_bytes: Size used for bandwidth/transfer-time accounting.
        msg_id: Unique identifier (diagnostics, duplicate suppression).
        sent_at: Simulated time at which the message was handed to the network.
    """

    sender: str
    receiver: str
    payload: Any
    size_bytes: int = 256
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))
    sent_at: float = 0.0


@dataclass
class CorruptedPayload:
    """A payload whose bits were flipped in transit (``LinkFault.corrupt``).

    The network cannot know the semantics of the payload it garbles, so it
    wraps the original object and lets the receiving actor model detection:
    group-message shares run the payload-digest verification of
    :class:`repro.group.messages.GroupMessenger` (digest mismatch -> share
    discarded); everything else fails transport authentication and is
    dropped whole.  An actor that does not recognise the wrapper simply
    ignores it, which is the same outcome.
    """

    inner: Any


__all__ = ["Message", "CorruptedPayload"]
