"""atumlint — AST-based determinism & protocol-hygiene analysis for this repo.

Every guarantee the reproduction makes (byte-identical golden traces,
multiprocess == serial ``runpar`` merges, a zero-violation fault matrix)
rests on conventions that used to be enforced by review alone: all
randomness through named seeded streams, no wall-clock time on protocol
paths, no order-unstable iteration feeding sends or RNG draws, counted
(never silently swallowed) exceptions, ``__slots__`` consistency on
hot-path classes, registry-checked metric names.  This package turns those
conventions into a machine-checked pass:

* :mod:`repro.lint.core` — findings, pragma suppression, the rule registry
  and the two-pass project index (per-module ASTs plus a cross-module class
  table for inherited-``__slots__`` resolution).
* :mod:`repro.lint.rules` — the rule classes (``ATL001`` .. ``ATL008``).
  Adding a rule is one subclass with a ``@register_rule`` decorator.
* :mod:`repro.lint.baseline` — the ratcheted baseline
  (``.atumlint-baseline.json``): pre-existing accepted debt is explicit,
  and an entry that stops matching any finding is itself an error.
* :mod:`repro.lint.metrics_scan` — the ATL006 scanner and the generators
  for :mod:`repro.lint.metrics_registry` and ``docs/METRICS.md``.

CLI: ``python -m repro.lint --check`` (see ``--help``).

Suppression pragma (reason string required)::

    value = time.perf_counter()  # atumlint: allow[ATL002] harness wall-clock, not sim time
"""

from repro.lint.core import (
    Finding,
    ProjectIndex,
    Rule,
    register_rule,
    registered_rules,
    run_lint,
)

__all__ = [
    "Finding",
    "ProjectIndex",
    "Rule",
    "register_rule",
    "registered_rules",
    "run_lint",
]
