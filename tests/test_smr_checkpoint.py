"""Tests for PBFT checkpointing and state transfer (repro.smr.checkpoint)."""

from repro.net.latency import LogNormalLatency
from repro.smr import PbftReplica, ReplicaGroupHarness, SmrConfig
from repro.smr.checkpoint import (
    CheckpointAnnounce,
    state_digest_of,
)
from repro.faults.invariants import check_agreement_logs


def make_harness(group_size, interval=2, seed=0, timeout=2.0, announce=2.0):
    return ReplicaGroupHarness(
        group_size=group_size,
        replica_class=PbftReplica,
        config=SmrConfig(
            request_timeout=timeout,
            checkpoint_interval=interval,
            checkpoint_announce_period=announce,
        ),
        seed=seed,
        latency_model=LogNormalLatency(median=0.02, sigma=0.3),
    )


def decide(harness, count, prefix="op", start_until=5.0):
    for index in range(count):
        harness.propose("replica-0", "noop", index, op_id=f"{prefix}-{index}")
    harness.run(until=harness.sim.now + start_until)


class TestCheckpointFormation:
    def test_disabled_by_default(self):
        harness = ReplicaGroupHarness(group_size=4, replica_class=PbftReplica, seed=1)
        decide(harness, 4)
        for actor in harness.actors.values():
            assert actor.replica.checkpoints is None
            assert actor.replica.stable_checkpoint_seq() is None
        assert harness.sim.metrics.counter("smr.checkpoint.emitted") == 0

    def test_stable_checkpoint_forms_at_interval_boundaries(self):
        harness = make_harness(4, interval=2)
        decide(harness, 5)
        for actor in harness.actors.values():
            assert actor.replica.stable_checkpoint_seq() == 4  # 5 ops, interval 2
            stable = actor.replica.checkpoints.stable
            assert len(set(stable.signers)) >= 3  # 2f+1 of 4
            assert stable.state_digest == state_digest_of(
                actor.replica.decided_log[:4], 2
            )
            # The incremental chain cache equals the from-scratch fold.
            assert actor.replica.checkpoints._state_digest_at(4) == stable.state_digest
        assert harness.sim.metrics.counter("smr.checkpoint.emitted") > 0
        assert harness.sim.metrics.counter("smr.checkpoint.rejected") == 0

    def test_slots_below_stable_checkpoint_are_garbage_collected(self):
        harness = make_harness(4, interval=2)
        decide(harness, 6)
        assert harness.sim.metrics.counter("smr.checkpoint.slots_gc") > 0
        for actor in harness.actors.values():
            replica = actor.replica
            positions = replica.checkpoints._positions
            stable_seq = replica.checkpoints.stable_seq
            for slot in replica._slots.values():
                if slot.executed and slot.operation is not None:
                    assert positions.get(slot.operation.op_id, stable_seq) >= stable_seq

    def test_single_replica_group_checkpoints_alone(self):
        harness = make_harness(1, interval=2)
        decide(harness, 4)
        assert harness.actors["replica-0"].replica.stable_checkpoint_seq() == 4

    def test_certificates_survive_a_digest_mode_switch(self):
        # Certificates signed under the real digest mode must still verify
        # after the process switches to cost-only digests (the timing-only
        # perf path), exactly like every other KeyRegistry signature.
        from repro.crypto.digest import DIGEST_MODE_COST_ONLY, digest_mode

        harness = make_harness(4, interval=2)
        decide(harness, 2)
        replica = harness.actors["replica-0"].replica
        certificate = replica.checkpoints.stable
        assert replica.checkpoints.valid_certificate(certificate)
        with digest_mode(DIGEST_MODE_COST_ONLY):
            assert replica.checkpoints.valid_certificate(certificate)

    def test_reconfigure_reanchors_certificates_and_keeps_the_log(self):
        harness = make_harness(4, interval=2)
        decide(harness, 4)
        replica = harness.actors["replica-0"].replica
        assert replica.stable_checkpoint_seq() == 4
        replica.reconfigure(harness.addresses)
        # The epoch-scoped stable certificate resets, but it survives as
        # the cross-epoch anchor (re-anchored by a transition record), so
        # the group can still serve certified transfers while quiet.
        assert replica.checkpoints.stable is None
        assert replica.checkpoints.anchor is not None
        assert replica.stable_checkpoint_seq() == 4
        assert len(replica.decided_log) == 4  # the decided log persists


class TestEpochCrossingRecovery:
    """Certificates survive reconfigurations via epoch-transition records."""

    def test_isolated_replica_catches_up_across_two_reconfigurations(self):
        harness = make_harness(4, interval=2, seed=5)
        decide(harness, 4, prefix="pre")
        split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
        decide(harness, 2, prefix="mid", start_until=8.0)
        assert [len(log) for log in harness.decided_logs()] == [6, 6, 6, 4]
        # Two reconfigurations while replica-3 is cut off (membership
        # installs are engine-driven, so the isolated replica's epoch
        # advances too — it just misses all the vote traffic).
        for _ in range(2):
            for actor in harness.actors.values():
                actor.replica.reconfigure(harness.addresses)
            harness.run(until=harness.sim.now + 4.0)
        majority = harness.actors["replica-0"].replica
        assert majority.epoch == 2
        assert majority.checkpoints.stable is None  # quiet since the epoch change
        assert majority.checkpoints.anchor is not None
        assert majority.checkpoints.anchor.seq == 6
        assert [t.new_epoch for t in majority.checkpoints.transitions] == [1, 2]
        assert harness.sim.metrics.counter("smr.checkpoint.epoch_transitions") > 0
        harness.network.merge(split)
        # NO new operations in epoch 2: the only recovery path is the
        # announce carrying the anchored epoch-0 certificate plus its
        # transition chain, then a chain-verified state transfer.
        harness.run(until=harness.sim.now + 25.0)
        assert [len(log) for log in harness.decided_logs()] == [6, 6, 6, 6]
        assert not check_agreement_logs(harness.decided_logs(), require_equality=True)

    def test_transition_chain_survives_three_epochs_while_quiet(self):
        harness = make_harness(4, interval=2, seed=6)
        decide(harness, 4)
        for _ in range(3):
            for actor in harness.actors.values():
                actor.replica.reconfigure(harness.addresses)
            harness.run(until=harness.sim.now + 3.0)
        replica = harness.actors["replica-1"].replica
        certificate, chain = replica.checkpoints._serving_chain()
        assert certificate is not None and certificate.seq == 4
        assert [t.new_epoch for t in chain] == [1, 2, 3]
        assert replica.checkpoints._transition_chain_error(certificate, chain) is None


class TestStateTransferLiveness:
    """The tentpole scenario: log liveness restored with no pending requests."""

    def test_isolated_replica_catches_up_with_no_pending_requests(self):
        harness = make_harness(4, interval=2, seed=3)
        decide(harness, 2, prefix="pre")
        split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
        decide(harness, 4, prefix="mid", start_until=10.0)
        assert [len(log) for log in harness.decided_logs()] == [6, 6, 6, 2]
        harness.network.merge(split)
        # NO new requests after the heal: catch-up must come from the
        # periodic checkpoint announce -> state transfer -> realignment.
        harness.run(until=harness.sim.now + 25.0)
        assert [len(log) for log in harness.decided_logs()] == [6, 6, 6, 6]
        assert harness.agreement_violations(require_equality=True) == []
        metrics = harness.sim.metrics
        assert metrics.counter("smr.checkpoint.transfers_completed") >= 1
        assert metrics.counter("smr.checkpoint.ops_installed") >= 4
        assert metrics.counter("smr.checkpoint.rejected") == 0

    def test_uncertified_tail_recovered_through_announce_view_change(self):
        # One decided operation with interval 4: no checkpoint certificate
        # ever forms, so the cut replica can only catch up through the
        # announce's log-length tail signal (frozen deficit -> view change).
        harness = make_harness(4, interval=4, seed=5)
        split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
        decide(harness, 1, prefix="tail", start_until=8.0)
        assert [len(log) for log in harness.decided_logs()] == [1, 1, 1, 0]
        harness.network.merge(split)
        harness.run(until=harness.sim.now + 30.0)
        assert harness.agreement_violations(require_equality=True) == []
        assert [len(log) for log in harness.decided_logs()] == [1, 1, 1, 1]
        assert harness.sim.metrics.counter("smr.checkpoint.tail_view_changes") >= 1

    def test_two_replicas_stalled_at_the_same_length_still_recover(self):
        # Regression: a peer announce that is NOT ahead used to clear the
        # tail-deficit clock, so two replicas stalled at the same log
        # length suppressed each other's recovery with every announce
        # round and stayed frozen forever.
        harness = make_harness(5, interval=4, seed=19)
        split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
        decide(harness, 1, prefix="pair", start_until=8.0)
        assert [len(log) for log in harness.decided_logs()] == [1, 1, 1, 0, 0]
        harness.network.merge(split)
        harness.run(until=harness.sim.now + 30.0)
        assert [len(log) for log in harness.decided_logs()] == [1, 1, 1, 1, 1]
        assert harness.agreement_violations(require_equality=True) == []

    def test_active_groups_never_trigger_tail_view_changes(self):
        # Ordinary in-flight lag (our log still moving) must not be treated
        # as a stall: decide a stream of operations with no faults and
        # assert the tail heuristic stays quiet.
        harness = make_harness(4, interval=3, seed=7)
        for index in range(9):
            harness.propose("replica-1", "noop", index, op_id=f"s-{index}")
            harness.run(until=harness.sim.now + 1.0)
        harness.run(until=harness.sim.now + 10.0)
        assert harness.agreement_violations(require_equality=True) == []
        # Ordinary view changes (and their legitimate new-view transfers)
        # may occur under steady traffic; the *stall* heuristic must not.
        assert harness.sim.metrics.counter("smr.checkpoint.tail_view_changes") == 0

    def test_gap_hint_triggers_state_request(self):
        harness = make_harness(4, interval=2, seed=9, announce=1000.0)
        split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
        decide(harness, 4, prefix="gap", start_until=10.0)
        harness.network.merge(split)
        lagging = harness.actors["replica-3"].replica
        assert len(lagging.decided_log) == 0
        # With announces effectively disabled, an anti-entropy-style hint is
        # the only gap signal; the certificate arrives with the response.
        lagging.checkpoints.on_gap_hint("replica-0", 4)
        harness.run(until=harness.sim.now + 10.0)
        assert len(lagging.decided_log) >= 4
        assert harness.sim.metrics.counter("smr.checkpoint.gap_hints") == 1
        assert harness.agreement_violations() == []

    def test_lower_seq_install_does_not_cancel_a_pending_higher_transfer(self):
        # Regression: a hint-path response serving an OLD certificate used
        # to clear the pending higher-seq transfer target, unblocking
        # execution with the higher checkpoint's gap still open (and never
        # re-requesting it, since the stable seq already matched).
        from repro.smr.checkpoint import (
            CheckpointCertificate,
            StateTransferResponse,
            checkpoint_statement,
            state_digest_of,
        )

        harness = make_harness(4, interval=2, seed=17, announce=1000.0)
        split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
        decide(harness, 6, prefix="race", start_until=12.0)
        harness.network.merge(split)
        serving = harness.actors["replica-0"].replica
        lagging = harness.actors["replica-3"].replica
        high = serving.checkpoints.stable
        assert high.seq == 6 and len(lagging.decided_log) == 0
        # A genuine (signed, truthful) certificate for the older seq-2
        # checkpoint, as an earlier certifier would have served it.
        low_digest = state_digest_of(serving.decided_log[:2], 2)
        low_statement = checkpoint_statement(0, 2, low_digest)
        low = CheckpointCertificate(
            epoch=0,
            seq=2,
            state_digest=low_digest,
            signatures=tuple(
                harness.registry.sign(s, low_statement)
                for s in ("replica-0", "replica-1", "replica-2")
            ),
        )
        lagging.checkpoints._begin_transfer(high)
        assert lagging.checkpoints.transfer_blocking
        requests_before = harness.sim.metrics.counter("smr.checkpoint.state_requests")
        lagging.on_message(
            StateTransferResponse(
                epoch=0,
                certificate=low,
                base_count=0,
                operations=tuple(serving.decided_log[:2]),
            ),
            "replica-0",
        )
        # The old prefix installed, but the higher gap stays open: still
        # blocked, and the remaining gap was re-requested immediately.
        assert len(lagging.decided_log) == 2
        assert lagging.checkpoints.transfer_blocking
        assert (
            harness.sim.metrics.counter("smr.checkpoint.state_requests")
            > requests_before
        )
        lagging.on_message(
            StateTransferResponse(
                epoch=0,
                certificate=high,
                base_count=2,
                operations=tuple(serving.decided_log[2:6]),
            ),
            "replica-0",
        )
        assert len(lagging.decided_log) == 6
        assert not lagging.checkpoints.transfer_blocking
        assert harness.agreement_violations(require_equality=True) == []

    def test_view_change_votes_carry_the_stable_certificate(self):
        harness = make_harness(4, interval=2, seed=11)
        decide(harness, 4)
        replica = harness.actors["replica-1"].replica
        replica._start_view_change()
        votes = replica._view_change_votes[replica.view + 1]
        assert votes[replica.node_id].checkpoint is not None
        assert votes[replica.node_id].checkpoint.seq == 4


class TestEqualityChecks:
    def test_prefix_consistent_lagging_log_passes_without_equality(self):
        logs = [["a", "b", "c"], ["a", "b"]]
        assert check_agreement_logs(logs) == []

    def test_equality_mode_flags_lagging_logs(self):
        logs = [["a", "b", "c"], ["a", "b"]]
        mismatches = check_agreement_logs(logs, require_equality=True)
        assert len(mismatches) == 1
        assert "different log lengths" in mismatches[0]

    def test_equality_mode_passes_equal_logs(self):
        logs = [["a", "b"], ["a", "b"], ["a", "b"]]
        assert check_agreement_logs(logs, require_equality=True) == []

    def test_divergence_reported_once_not_also_as_length(self):
        logs = [["a", "x", "c"], ["a", "y"]]
        mismatches = check_agreement_logs(logs, require_equality=True)
        assert len(mismatches) == 1
        assert "diverge" in mismatches[0]


class TestAnnounceHygiene:
    def test_announce_from_non_member_is_rejected(self):
        harness = make_harness(4, interval=2, seed=13)
        decide(harness, 2)
        replica = harness.actors["replica-0"].replica
        rejected_before = harness.sim.metrics.counter("smr.checkpoint.rejected")
        replica.on_message(
            CheckpointAnnounce(epoch=0, certificate=None, log_length=50),
            "intruder",
        )
        assert (
            harness.sim.metrics.counter("smr.checkpoint.rejected")
            == rejected_before + 1
        )

    def test_wrong_epoch_announce_is_ignored(self):
        harness = make_harness(4, interval=2, seed=15)
        decide(harness, 2)
        replica = harness.actors["replica-0"].replica
        replica.on_message(
            CheckpointAnnounce(epoch=7, certificate=None, log_length=50),
            "replica-1",
        )
        # Neither rejected-counted nor acted on: a different epoch is simply
        # not addressed to this configuration.
        assert replica.checkpoints._tail_deficit_since < 0
