"""Byzantine fault injection helpers.

The paper injects faults by modifying node behaviour (section 6.1.3): in the
synchronous deployment, Byzantine nodes keep sending heartbeats (so they are
not evicted) but otherwise do not participate, and periodically propose to
evict correct nodes; in the asynchronous deployment faulty nodes simply stay
quiet.  Because a Byzantine minority can neither forge group messages nor
reach agreement quorums, both behaviours reduce to "the faulty node
contributes nothing" from the perspective of correct nodes -- which is what
the ``silent`` behaviour of :class:`repro.core.node.AtumNode` implements.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


def select_byzantine(
    addresses: Sequence[str],
    count: Optional[int] = None,
    fraction: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> List[str]:
    """Select a random subset of addresses to behave Byzantine.

    Exactly one of ``count`` or ``fraction`` must be given.  The selection is
    uniform, matching the paper's random placement of faulty nodes (random
    walk shuffling is precisely what makes this the worst an adversary can do
    without a join-leave attack).
    """
    if (count is None) == (fraction is None):
        raise ValueError("specify exactly one of count or fraction")
    if fraction is not None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        count = int(round(fraction * len(addresses)))
    assert count is not None
    if count > len(addresses):
        raise ValueError("cannot select more Byzantine nodes than addresses")
    rng = rng or random.Random(0)
    return sorted(rng.sample(list(addresses), count))


__all__ = ["select_byzantine"]
