"""ATL008 fixture: stable digests for ordering, identity only with a waiver."""

from repro.crypto.digest import digest_object


def order_key(message):
    return digest_object(message.sender)


def memo_key(obj):
    return id(obj)  # atumlint: allow[ATL008] fixture: identity-cache key, never ordered or serialized
