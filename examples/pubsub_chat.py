#!/usr/bin/env python3
"""ASub example: a topic-based publish/subscribe service.

Creates two topics, subscribes a set of nodes to each, publishes events, and
shows that every subscriber of a topic (and only subscribers of that topic)
receives them.  Topic operations map one-to-one to the Atum API: create_topic
-> bootstrap, subscribe -> join, publish -> broadcast, unsubscribe -> leave.

Run with:  python examples/pubsub_chat.py
"""

from repro.apps.asub import ASubService
from repro.core.config import AtumParameters, SmrKind


def main() -> None:
    params = AtumParameters(
        hc=3, rwl=5, gmax=6, gmin=3, smr_kind=SmrKind.SYNC, round_duration=0.5,
        expected_system_size=30,
    )
    service = ASubService(params, seed=7)

    news_subscribers = [f"reader-{i}" for i in range(15)]
    sports_subscribers = [f"fan-{i}" for i in range(10)]
    news = service.create_topic("news", creator="editor", prebuilt_subscribers=news_subscribers)
    sports = service.create_topic("sports", creator="commentator", prebuilt_subscribers=sports_subscribers)
    print(f"topic 'news' has {news.subscriber_count()} subscribers")
    print(f"topic 'sports' has {sports.subscriber_count()} subscribers")

    # Publish on both topics.
    news.publish("editor", {"headline": "Volatile groups scale beyond 1000 nodes"})
    news.publish("reader-3", {"headline": "Readers can publish too"})
    sports.publish("commentator", {"score": "3-1"})
    news.run(60.0)
    sports.run(60.0)

    for subscriber in ("reader-0", "reader-7"):
        events = news.events_received_by(subscriber)
        print(f"{subscriber} received {len(events)} news events: "
              f"{[e.payload['headline'] for e in events]}")
    print(f"fan-2 received {len(sports.events_received_by('fan-2'))} sports event(s)")
    print(f"fan-2 received {len(news.events_received_by('fan-2'))} news events (not subscribed)")

    # A subscriber loses interest and unsubscribes.
    news.unsubscribe("reader-14")
    news.cluster.run_until_membership_quiescent(max_time=600.0)
    print(f"after one unsubscribe, 'news' has {news.subscriber_count()} subscribers")


if __name__ == "__main__":
    main()
