"""ATL005 fixture: slot-consistent writes, open layouts, and a waiver."""


class Cache:
    __slots__ = ("entries", "hits")

    def __init__(self):
        self.entries = {}
        self.hits = 0


class Open(Cache):
    __slots__ = ("extra", "__dict__")

    def __init__(self):
        super().__init__()
        self.extra = 1
        self.anything = 2  # __dict__ in __slots__: layout open, not checked


class Waived:
    __slots__ = ("value",)

    def tag(self):
        self.value = 1
        self.debug_tag = "x"  # atumlint: allow[ATL005] fixture: dev-only write behind a feature flag
