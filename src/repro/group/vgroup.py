"""Volatile group (vgroup) views.

A vgroup is identified by a stable ``group_id`` and, at any point in time, has
a *composition*: the set of node addresses that currently form it, together
with an epoch number that increases on every reconfiguration (join, leave,
shuffle, split, merge).  Nodes keep :class:`VGroupView` snapshots of their own
vgroup and of neighbouring vgroups; group messages are addressed to a view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple


def majority_threshold(size: int) -> int:
    """Number of senders required to accept a group message (strict majority)."""
    return size // 2 + 1


@dataclass(frozen=True)
class VGroupView:
    """An immutable snapshot of a vgroup's composition.

    Attributes:
        group_id: Stable identifier of the vgroup.
        members: Node addresses forming the vgroup in this epoch.
        epoch: Reconfiguration counter; higher epochs supersede lower ones.
    """

    group_id: str
    members: Tuple[str, ...]
    epoch: int = 0

    @staticmethod
    def create(group_id: str, members: Iterable[str], epoch: int = 0) -> "VGroupView":
        """Create a view with a deterministic (sorted) member order."""
        return VGroupView(group_id=group_id, members=tuple(sorted(members)), epoch=epoch)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def member_set(self) -> FrozenSet[str]:
        return frozenset(self.members)

    def contains(self, address: str) -> bool:
        return address in self.members

    def majority(self) -> int:
        """Senders needed for a group message from this vgroup to be accepted."""
        return majority_threshold(self.size)

    def with_members(self, members: Iterable[str]) -> "VGroupView":
        """Return a successor view (epoch + 1) with a new composition."""
        return VGroupView.create(self.group_id, members, epoch=self.epoch + 1)

    def add(self, address: str) -> "VGroupView":
        if address in self.members:
            return self
        return self.with_members(list(self.members) + [address])

    def remove(self, address: str) -> "VGroupView":
        if address not in self.members:
            return self
        return self.with_members(m for m in self.members if m != address)

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(self.members)


__all__ = ["VGroupView", "majority_threshold"]
