"""Reproduction of *Atum: Scalable Group Communication Using Volatile Groups*.

This package implements the Atum group communication middleware
(Middleware 2016) on top of a deterministic discrete-event simulation
substrate.  The public surface mirrors the paper's layering:

* :mod:`repro.sim` -- discrete-event simulation kernel (clock, actors, timers).
* :mod:`repro.net` -- network substrate with latency/bandwidth/loss models.
* :mod:`repro.crypto` -- digests, simulated signatures, certificate chains.
* :mod:`repro.smr` -- BFT state machine replication (Dolev-Strong and PBFT).
* :mod:`repro.group` -- volatile groups, group messages, eviction.
* :mod:`repro.overlay` -- H-graph overlay, gossip, random walks, shuffling,
  logarithmic grouping.
* :mod:`repro.core` -- the Atum API (bootstrap/join/leave/broadcast) and the
  cluster driver used by examples, tests and benchmarks.
* :mod:`repro.apps` -- ASub (pub/sub), AShare (file sharing), AStream
  (streaming) built on the Atum API.
* :mod:`repro.baselines` -- classic gossip, whole-system SMR and an NFS-like
  file server used as comparison points in the paper's evaluation.
* :mod:`repro.workloads` -- growth, churn, Byzantine and data workload drivers.
* :mod:`repro.analysis` -- statistics helpers (chi-square uniformity test,
  CDFs, robustness analysis) used by the benchmark harness.

The most commonly used entry points (``AtumCluster``, ``AtumParameters``,
``AtumNode``) are re-exported lazily at package level.
"""

from typing import Any

__version__ = "1.0.0"

__all__ = [
    "AtumParameters",
    "SmrKind",
    "AtumCluster",
    "AtumNode",
    "__version__",
]

_LAZY_EXPORTS = {
    "AtumParameters": ("repro.core.config", "AtumParameters"),
    "SmrKind": ("repro.core.config", "SmrKind"),
    "AtumCluster": ("repro.core.cluster", "AtumCluster"),
    "AtumNode": ("repro.core.node", "AtumNode"),
}


def __getattr__(name: str) -> Any:
    """Lazily import the top-level convenience exports."""
    if name in _LAZY_EXPORTS:
        module_name, attribute = _LAZY_EXPORTS[name]
        module = __import__(module_name, fromlist=[attribute])
        value = getattr(module, attribute)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
