"""Network substrate: latency models, bandwidth-aware links, loss, partitions.

This package substitutes for the EC2 deployments in the paper's evaluation.
The :class:`repro.net.network.Network` delivers messages between actors with
latencies drawn from a :class:`repro.net.latency.LatencyModel` and transfer
times derived from message sizes and per-node bandwidth.  The WAN profile
models the 8-region deployment used for the asynchronous Atum variant; the
LAN profile models a single-datacenter deployment used for the synchronous
variant.
"""

from repro.net.message import Message
from repro.net.latency import (
    LatencyModel,
    FixedLatency,
    UniformLatency,
    LogNormalLatency,
    LanProfile,
    WanProfile,
    RegionalLatency,
)
from repro.net.network import Network, NetworkConfig

__all__ = [
    "Message",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LogNormalLatency",
    "LanProfile",
    "WanProfile",
    "RegionalLatency",
    "Network",
    "NetworkConfig",
]
