"""Tests for the workload drivers (growth, churn, broadcasts, Byzantine selection)."""

import random

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters
from repro.group.cost import GroupCostModel
from repro.group.vgroup import VGroupView
from repro.overlay.membership import MembershipConfig, MembershipEngine, MembershipError
from repro.sim import Simulator
from repro.workloads import (
    BroadcastWorkload,
    BroadcastWorkloadConfig,
    ChurnConfig,
    ChurnWorkload,
    GrowthConfig,
    GrowthWorkload,
    max_sustainable_churn,
    select_byzantine,
    select_byzantine_per_group,
)


def make_engine(seed=0, synchronous=True, size=0):
    sim = Simulator(seed=seed)
    config = MembershipConfig(hc=3, rwl=6, gmax=8, gmin=4)
    engine = MembershipEngine(sim, config, GroupCostModel(synchronous=synchronous, round_duration=1.0))
    if size:
        engine.build_static([f"n{i}" for i in range(size)])
    return engine


class TestGrowthWorkload:
    def test_reaches_target_size(self):
        engine = make_engine()
        workload = GrowthWorkload(engine, GrowthConfig(target_size=60, join_fraction_per_minute=0.2,
                                                       provisioning_delay=5.0, max_duration=20_000))
        series = workload.run()
        assert engine.system_size == 60
        assert series.values()[-1] == 60
        engine.validate()

    def test_growth_is_superlinear(self):
        # Because the join rate is proportional to the current size, the second
        # half of the growth takes less time than the first half.
        engine = make_engine(seed=1)
        workload = GrowthWorkload(engine, GrowthConfig(target_size=120, join_fraction_per_minute=0.2,
                                                       provisioning_delay=5.0, max_duration=40_000))
        workload.run()
        quarter = workload.time_to_reach(30)
        half = workload.time_to_reach(60)
        full = workload.time_to_reach(120)
        assert quarter is not None and half is not None and full is not None
        assert (full - half) < (half - quarter) * 1.5

    def test_higher_join_rate_lowers_exchange_completion(self):
        def completion(rate):
            engine = make_engine(seed=2)
            workload = GrowthWorkload(
                engine,
                GrowthConfig(target_size=100, join_fraction_per_minute=rate,
                             provisioning_delay=2.0, max_duration=60_000),
            )
            workload.run()
            return workload.exchange_completion_rate()

        slow = completion(0.08)
        fast = completion(0.40)
        # Figure 13: faster growth suppresses more exchanges.
        assert fast <= slow

    def test_time_to_reach_unreached_size_is_none(self):
        engine = make_engine()
        workload = GrowthWorkload(engine, GrowthConfig(target_size=20, join_fraction_per_minute=0.2,
                                                       provisioning_delay=1.0))
        workload.run()
        assert workload.time_to_reach(500) is None


class TestChurnWorkload:
    def test_low_churn_is_sustained(self):
        engine = make_engine(seed=3, size=60)
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=5, duration=180.0))
        result = workload.run()
        assert result.sustained
        assert result.completed_joins > 0
        engine.validate()

    def test_extreme_churn_is_not_sustained(self):
        engine = make_engine(seed=4, size=60)
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=2000, duration=120.0))
        result = workload.run()
        assert not result.sustained

    def test_system_size_roughly_preserved(self):
        engine = make_engine(seed=5, size=50)
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=10, duration=120.0))
        workload.run()
        assert 40 <= engine.system_size <= 60

    def test_max_sustainable_churn_returns_highest_sustained_rate(self):
        def factory():
            return make_engine(seed=6, size=50)

        best = max_sustainable_churn(factory, rates_per_minute=[2, 8, 4000], duration=120.0)
        assert best in (2, 8)

    def test_async_sustains_more_churn_than_sync(self):
        def best_for(synchronous):
            def factory():
                return make_engine(seed=7, synchronous=synchronous, size=50)

            return max_sustainable_churn(factory, rates_per_minute=[5, 20, 60, 120], duration=120.0)

        assert best_for(False) >= best_for(True)


class TestBroadcastWorkload:
    def _cluster(self):
        params = AtumParameters(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5)
        cluster = AtumCluster(params, seed=8)
        cluster.build_static([f"n{i}" for i in range(24)])
        return cluster

    def test_all_broadcasts_fully_delivered(self):
        cluster = self._cluster()
        workload = BroadcastWorkload(cluster, BroadcastWorkloadConfig(count=5, interval=0.2, settle_time=30.0))
        latencies = workload.run()
        assert len(latencies) == 5 * 24
        assert all(fraction == 1.0 for fraction in workload.delivery_fractions().values())

    def test_latencies_positive_and_bounded(self):
        cluster = self._cluster()
        workload = BroadcastWorkload(cluster, BroadcastWorkloadConfig(count=3, interval=0.2, settle_time=30.0))
        latencies = workload.run()
        assert all(0.0 <= latency <= 10.0 for latency in latencies)

    def test_empty_cluster_raises(self):
        params = AtumParameters(hc=3, rwl=5, gmax=6, gmin=3)
        cluster = AtumCluster(params)
        workload = BroadcastWorkload(cluster)
        with pytest.raises(RuntimeError):
            workload.run()


class TestChurnAccountingFix:
    """Failed leaves must not count as requested re-joins (issue 3 satellite)."""

    def test_failed_leave_not_requested_and_counted(self):
        engine = make_engine(seed=9, size=20)
        workload = ChurnWorkload(engine, ChurnConfig())

        def failing_leave(node, eviction=False):
            raise MembershipError("victim vanished")

        engine.leave = failing_leave
        workload._rejoin_one()
        assert workload._requested == 0
        assert engine.sim.metrics.counter("churn.leave_failed") == 1
        # The re-join never started: no churn-* newcomer was joined.
        assert not any(node.startswith("churn-") for node in engine.node_group)

    def test_unexpected_errors_propagate(self):
        engine = make_engine(seed=9, size=20)
        workload = ChurnWorkload(engine, ChurnConfig())

        def broken_leave(node, eviction=False):
            raise RuntimeError("engine bug")

        engine.leave = broken_leave
        with pytest.raises(RuntimeError):
            workload._rejoin_one()

    def test_result_reports_leave_failures(self):
        engine = make_engine(seed=10, size=20)

        def failing_leave(node, eviction=False):
            raise MembershipError("always fails")

        engine.leave = failing_leave
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=30, duration=20.0, warmup=1.0))
        result = workload.run()
        assert result.leave_failures > 0
        assert result.requested_rejoins == 0
        # No requested re-joins means the completion ratio is trivially 1.0
        # instead of a skewed figure derived from failed leaves.
        assert result.completion_ratio == 1.0

    def test_successful_churn_has_no_leave_failures(self):
        engine = make_engine(seed=3, size=60)
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=5, duration=120.0))
        result = workload.run()
        assert result.leave_failures == 0
        assert result.requested_rejoins > 0


class TestByzantineSelection:
    def test_select_by_count(self):
        addresses = [f"n{i}" for i in range(100)]
        chosen = select_byzantine(addresses, count=7)
        assert len(chosen) == 7
        assert set(chosen) <= set(addresses)

    def test_select_by_fraction(self):
        addresses = [f"n{i}" for i in range(850)]
        chosen = select_byzantine(addresses, fraction=0.058)
        assert len(chosen) == round(0.058 * 850)

    def test_both_or_neither_rejected(self):
        with pytest.raises(ValueError):
            select_byzantine(["a"], count=1, fraction=0.5)
        with pytest.raises(ValueError):
            select_byzantine(["a"])

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            select_byzantine(["a", "b"], count=3)

    def test_deterministic_with_seeded_rng(self):
        addresses = [f"n{i}" for i in range(50)]
        first = select_byzantine(addresses, count=5, rng=random.Random(1))
        second = select_byzantine(addresses, count=5, rng=random.Random(1))
        assert first == second

    def test_fraction_rounds_down(self):
        # round() would pick 2 of 5 for a one-third fraction (1.666 -> 2);
        # the adversary controls *at most* the stated fraction, so floor it.
        addresses = [f"n{i}" for i in range(5)]
        assert len(select_byzantine(addresses, fraction=1 / 3)) == 1

    def test_half_fraction_on_small_cluster_rejected(self):
        # floor(0.5 * 4) = 2 of 4 is not a strict minority.
        addresses = [f"n{i}" for i in range(4)]
        with pytest.raises(ValueError, match="minority"):
            select_byzantine(addresses, fraction=0.5)
        assert len(select_byzantine(addresses, fraction=0.5, allow_majority=True)) == 2

    def test_majority_count_rejected_unless_allowed(self):
        addresses = [f"n{i}" for i in range(5)]
        with pytest.raises(ValueError, match="minority"):
            select_byzantine(addresses, count=3)
        assert len(select_byzantine(addresses, count=3, allow_majority=True)) == 3
        # A strict minority passes.
        assert len(select_byzantine(addresses, count=2)) == 2

    def test_zero_selection_always_allowed(self):
        assert select_byzantine(["a"], count=0) == []
        assert select_byzantine([], fraction=0.9) == []


class TestByzantinePerGroupSelection:
    def test_strict_minority_of_every_group(self):
        views = [
            VGroupView.create("g1", [f"a{i}" for i in range(4)]),
            VGroupView.create("g2", [f"b{i}" for i in range(5)]),
            VGroupView.create("g3", [f"c{i}" for i in range(6)]),
        ]
        chosen = select_byzantine_per_group(views, 0.5, rng=random.Random(1))
        for view in views:
            inside = [address for address in chosen if address in view.member_set]
            assert len(inside) <= (len(view.members) - 1) // 2

    def test_small_fraction_selects_nothing_in_tiny_groups(self):
        views = [VGroupView.create("g1", ["a0", "a1", "a2"])]
        assert select_byzantine_per_group(views, 0.25, rng=random.Random(1)) == []

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            select_byzantine_per_group([], 1.5)
