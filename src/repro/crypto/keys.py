"""Simulated public-key signatures and MACs.

A :class:`KeyRegistry` plays the role of the PKI assumed by the paper: every
node owns a :class:`KeyPair` registered under its address, signatures are
HMAC-SHA256 values keyed by the node's secret, and verification consults the
registry.  Because protocol code only ever holds the *registry* (never another
node's secret), a Byzantine node implemented on top of this library cannot
fabricate signatures of correct nodes -- the property Dolev-Strong and PBFT
need.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict

from repro.crypto.digest import (
    digest_object,
    digest_object_in_mode,
    digest_token_mode,
)


class SignatureError(Exception):
    """Raised when signature verification fails."""


@dataclass(frozen=True)
class Signature:
    """A signature over an object digest by a named signer."""

    signer: str
    digest: str
    mac: str

    def covers(self, obj: Any) -> bool:
        """Return whether this signature was computed over ``obj``.

        The digest is recomputed in the mode this signature's token was
        created under, so signatures survive a global digest-mode switch.
        """
        return self.digest == digest_object_in_mode(obj, digest_token_mode(self.digest))


@dataclass(frozen=True)
class KeyPair:
    """A (simulated) key pair: the secret is only known to the registry."""

    owner: str
    secret: bytes

    def mac_of(self, digest: str) -> str:
        """The MAC this key produces over a digest (single source of truth)."""
        return hmac.new(self.secret, digest.encode("utf-8"), hashlib.sha256).hexdigest()

    def sign(self, obj: Any) -> Signature:
        digest = digest_object(obj)
        return Signature(signer=self.owner, digest=digest, mac=self.mac_of(digest))


class KeyRegistry:
    """Creates and verifies signatures for a population of nodes."""

    def __init__(self, domain: str = "atum") -> None:
        self.domain = domain
        self._keys: Dict[str, KeyPair] = {}

    def generate(self, owner: str) -> KeyPair:
        """Create (or return the existing) key pair for ``owner``."""
        if owner not in self._keys:
            secret = hashlib.sha256(f"{self.domain}:{owner}".encode("utf-8")).digest()
            self._keys[owner] = KeyPair(owner=owner, secret=secret)
        return self._keys[owner]

    def has_key(self, owner: str) -> bool:
        return owner in self._keys

    def sign(self, owner: str, obj: Any) -> Signature:
        """Sign ``obj`` on behalf of ``owner`` (creating a key if necessary)."""
        return self.generate(owner).sign(obj)

    def verify(self, signature: Signature, obj: Any) -> bool:
        """Return ``True`` iff ``signature`` is a valid signature of ``obj``.

        The comparison digest is computed in the mode the signature's token
        was created under (see :func:`repro.crypto.digest.digest_token_mode`),
        so switching the global digest mode does not invalidate signatures
        created earlier.
        """
        expected = digest_object_in_mode(obj, digest_token_mode(signature.digest))
        return self.verify_digest(signature, expected)

    def verify_digest(self, signature: Signature, digest: str) -> bool:
        """Verify against a precomputed digest of the signed object.

        Lets callers that check many signatures over the same statement (e.g.
        certificate chains) canonicalise and digest the statement once instead
        of twice per signature.
        """
        key = self._keys.get(signature.signer)
        if key is None:
            return False
        if signature.digest != digest:
            return False
        return hmac.compare_digest(key.mac_of(digest), signature.mac)

    def verify_or_raise(self, signature: Signature, obj: Any) -> None:
        if not self.verify(signature, obj):
            raise SignatureError(
                f"invalid signature by {signature.signer} over digest {signature.digest[:12]}"
            )

    def mac(self, owner: str, peer: str, obj: Any) -> str:
        """Compute a pairwise MAC (used for authenticated point-to-point links)."""
        key = self.generate(owner)
        material = f"{peer}:{digest_object(obj)}".encode("utf-8")
        return hmac.new(key.secret, material, hashlib.sha256).hexdigest()


__all__ = ["KeyPair", "KeyRegistry", "Signature", "SignatureError"]
