"""Atum core: configuration, the Atum node API, and the cluster driver.

* :class:`repro.core.config.AtumParameters` -- the system parameters of the
  paper's Table 1 (``hc``, ``rwl``, ``gmin``, ``gmax``, ``k``) plus the choice
  of SMR engine, with helpers that derive a configuration from a target system
  size using the Figure 4 guideline.
* :class:`repro.core.node.AtumNode` -- a node of the system, exposing the Atum
  API (``join``, ``leave``, ``broadcast``) and the application callbacks
  (``deliver``, ``forward``).
* :class:`repro.core.cluster.AtumCluster` -- the driver that hosts many Atum
  nodes on one simulator, wires them to the membership engine and the network,
  and provides the measurement hooks used by tests, examples and benchmarks.
"""

from repro.core.config import AtumParameters, SmrKind, parameter_table
from repro.core.node import AtumNode, BroadcastMessage
from repro.core.cluster import AtumCluster

__all__ = [
    "AtumParameters",
    "SmrKind",
    "parameter_table",
    "AtumNode",
    "BroadcastMessage",
    "AtumCluster",
]
