"""Message digests (SHA-256) over canonically serialized objects."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Any

#: Type alias for hex-encoded digests.
Digest = str


def _canonical(obj: Any) -> Any:
    """Convert ``obj`` into a JSON-serializable canonical form."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {"__dc__": type(obj).__name__, **_canonical(asdict(obj))}
    if isinstance(obj, dict):
        return {str(key): _canonical(value) for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(item) for item in obj)
    if isinstance(obj, bytes):
        return obj.hex()
    return obj


def digest_bytes(data: bytes) -> Digest:
    """Return the SHA-256 hex digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def digest_object(obj: Any) -> Digest:
    """Return the SHA-256 hex digest of an arbitrary (JSON-encodable) object."""
    encoded = json.dumps(_canonical(obj), sort_keys=True, default=str).encode("utf-8")
    return digest_bytes(encoded)


__all__ = ["Digest", "digest_bytes", "digest_object"]
