"""Figure 10: impact of Byzantine nodes on AShare read latency (50 nodes).

A 50-node system stores files of 10 chunks x 1 MB with rho = 8; 7 random nodes
are Byzantine and corrupt every replica they store.  Reads are measured as a
function of the file's replica count, with all replicas correct and with 1-6
faulty replicas.  Expected shape: corrupted replicas raise the read latency
(up to ~3x for moderately replicated files), and the penalty shrinks as the
replica count approaches the chunk count (the "ideal configuration").
"""

from repro.analysis import format_table
from repro.apps.ashare import AShareCluster
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters
from repro.workloads import select_byzantine

MB = 1024 * 1024


def run_experiment(num_nodes, num_files, byzantine_count, rho, scale, seed=0):
    params = AtumParameters.for_system_size(num_nodes)
    params = params.with_overrides(round_duration=0.5)
    atum = AtumCluster(params, seed=seed)
    addresses = [f"n{i}" for i in range(num_nodes)]
    byzantine = select_byzantine(addresses, count=byzantine_count)
    atum.build_static(addresses, byzantine=byzantine)
    share = AShareCluster(atum, rho=rho, replication_feedback=False)
    correct = [a for a in addresses if a not in byzantine]
    rng = atum.sim.rng.stream("fig10")

    measured_files = max(10, num_files // (10 // scale if scale < 10 else 1) // 5)
    replica_counts = list(range(8, 21, 2))
    rows = []
    for replicas in replica_counts:
        clean_latencies = []
        faulty_latencies = []
        for index in range(measured_files // len(replica_counts) + 1):
            owner = correct[rng.randrange(len(correct))]
            # File with all-correct replica holders.
            name_clean = f"clean-{replicas}-{index}"
            share.put(owner, name_clean, size_bytes=10 * MB, num_chunks=10)
            # File with 1-6 of its replicas held by Byzantine nodes.
            name_faulty = f"faulty-{replicas}-{index}"
            share.put(owner, name_faulty, size_bytes=10 * MB, num_chunks=10)
            atum.run(until=atum.sim.now + 20.0)

            clean_holders = [a for a in correct if a != owner][: replicas - 1]
            share.seed_replicas(owner, name_clean, clean_holders)
            faulty_count = 1 + (index % 6)
            faulty_holders = byzantine[:faulty_count] + [
                a for a in correct if a != owner
            ][: replicas - 1 - faulty_count]
            share.seed_replicas(owner, name_faulty, faulty_holders)

            reader = correct[(rng.randrange(len(correct)))]
            clean = share.get(reader, owner, name_clean)
            faulty = share.get(reader, owner, name_faulty)
            if clean is not None:
                clean_latencies.append(clean / 10.0)
            if faulty is not None:
                faulty_latencies.append(faulty / 10.0)
        rows.append(
            {
                "replicas": replicas,
                "all_correct_s_per_mb": round(sum(clean_latencies) / len(clean_latencies), 3),
                "faulty_replicas_s_per_mb": round(sum(faulty_latencies) / len(faulty_latencies), 3),
            }
        )
    return rows


def check_shape(rows):
    for row in rows:
        # Corrupted replicas never make reads faster.
        assert row["faulty_replicas_s_per_mb"] >= row["all_correct_s_per_mb"]
        # And the penalty stays below ~4x (paper: up to 3x).
        assert row["faulty_replicas_s_per_mb"] <= row["all_correct_s_per_mb"] * 4.0
    # The penalty at 8 replicas is larger than at 20 replicas (more replicas
    # dilute the corrupted ones).
    first, last = rows[0], rows[-1]
    first_penalty = first["faulty_replicas_s_per_mb"] / first["all_correct_s_per_mb"]
    last_penalty = last["faulty_replicas_s_per_mb"] / last["all_correct_s_per_mb"]
    assert last_penalty <= first_penalty + 0.05


def test_fig10_ashare_byzantine_50_nodes(benchmark, scale):
    rows = benchmark.pedantic(
        run_experiment, args=(50, 100, 7, 8, scale), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Figure 10: AShare read latency per MB, 50 nodes, 7 Byzantine"))
    check_shape(rows)
