"""Ablation (section 5.1): backward-phase vs certificate-chain random walks.

The two reply schemes trade message hops against cryptographic work: the
backward phase doubles the number of group-message hops per walk, while the
certificate chain replies directly but carries (and verifies) one certificate
per hop.  The paper uses the backward phase in Sync (verification would blow
the round budget) and certificates in Async.
"""

from repro.analysis import format_table
from repro.crypto import CryptoCostModel, KeyRegistry
from repro.crypto.certificates import CertificateChain, make_certificate
from repro.group.cost import GroupCostModel
from repro.overlay.random_walk import WalkMode


def _run(scale):
    rows = []
    crypto = CryptoCostModel()
    registry = KeyRegistry()
    for rwl in (5, 9, 13):
        for group_size in (7, 14):
            sync_cost = GroupCostModel(synchronous=True, round_duration=1.0)
            async_cost = GroupCostModel(synchronous=False, network_latency=0.05)
            backward = async_cost.random_walk_latency(rwl, group_size, backward_phase=True)
            certificates = async_cost.random_walk_latency(rwl, group_size, backward_phase=False)

            # Build and verify an actual certificate chain to size it.
            chain = CertificateChain(walk_id=f"walk-{rwl}-{group_size}")
            previous = "G0"
            quorum = group_size // 2 + 1
            for hop in range(rwl):
                members = [f"{previous}-m{i}" for i in range(group_size)]
                for member in members:
                    registry.generate(member)
                chain.append(
                    make_certificate(
                        registry, chain.walk_id, hop, previous, members, f"G{hop + 1}",
                        signers=members[:quorum],
                    )
                )
                previous = f"G{hop + 1}"
            assert chain.verify(registry, "G0")
            rows.append(
                {
                    "rwl": rwl,
                    "group_size": group_size,
                    "backward_phase_latency_s": round(backward, 3),
                    "certificate_latency_s": round(certificates, 3),
                    "certificate_chain_bytes": chain.size_bytes(),
                    "chain_verify_cpu_s": round(
                        crypto.certificate_chain_verify_cost(rwl, quorum), 4
                    ),
                }
            )
    return rows


def test_ablation_walk_modes(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: random-walk reply schemes (backward phase vs certificates)"))

    for row in rows:
        # Certificates avoid the backward hops, so end-to-end walk latency is lower...
        assert row["certificate_latency_s"] < row["backward_phase_latency_s"]
        # ...but the chain grows linearly with the walk length.
        assert row["certificate_chain_bytes"] == 512 * row["rwl"]
    # Verification CPU grows with both rwl and the quorum size.
    assert rows[-1]["chain_verify_cpu_s"] > rows[0]["chain_verify_cpu_s"]
