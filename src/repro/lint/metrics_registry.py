"""GENERATED metric-name registry — do not edit by hand.

Regenerate with ``python -m repro.lint --gen-metrics`` after adding or
removing a metric; ``python -m repro.lint --check`` fails while this file
and the code disagree.  Maps every counter/histogram/series name literal
used anywhere in ``src/repro`` to its kind, the modules that use it, and
whether it surfaces as a ``FAULT_MATRIX.json`` row column.
"""

METRICS = {
    'ae.hints_sent': {
        "kind": 'counter',
        "modules": ('repro/group/antientropy.py',),
        "matrix_column": False,
    },
    'ae.reproposals': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/group/antientropy.py'),
        "matrix_column": True,
    },
    'ae.requests_sent': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py', 'repro/group/antientropy.py'),
        "matrix_column": True,
    },
    'ae.retry_storm': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/group/antientropy.py'),
        "matrix_column": True,
    },
    'ae.shares_resent': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/group/antientropy.py'),
        "matrix_column": True,
    },
    'ae.store_gc_dropped': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/group/antientropy.py'),
        "matrix_column": True,
    },
    'ae.summaries_sent': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/group/antientropy.py'),
        "matrix_column": True,
    },
    'ae.summary_window_truncated': {
        "kind": 'counter',
        "modules": ('repro/group/antientropy.py',),
        "matrix_column": False,
    },
    'ashare.get_latency': {
        "kind": 'histogram',
        "modules": ('repro/apps/ashare.py',),
        "matrix_column": False,
    },
    'ashare.get_latency_per_mb': {
        "kind": 'histogram',
        "modules": ('repro/apps/ashare.py',),
        "matrix_column": False,
    },
    'ashare.get_missing': {
        "kind": 'counter',
        "modules": ('repro/apps/ashare.py',),
        "matrix_column": False,
    },
    'ashare.get_no_replica': {
        "kind": 'counter',
        "modules": ('repro/apps/ashare.py',),
        "matrix_column": False,
    },
    'ashare.replications_started': {
        "kind": 'counter',
        "modules": ('repro/apps/ashare.py',),
        "matrix_column": False,
    },
    'ashare.snapshot_rejected': {
        "kind": 'counter',
        "modules": ('repro/apps/ashare.py',),
        "matrix_column": False,
    },
    'ashare.snapshots_restored': {
        "kind": 'counter',
        "modules": ('repro/apps/ashare.py',),
        "matrix_column": False,
    },
    'astream.invalid_chunks': {
        "kind": 'counter',
        "modules": ('repro/apps/astream.py',),
        "matrix_column": False,
    },
    'astream.pulls': {
        "kind": 'counter',
        "modules": ('repro/apps/astream.py',),
        "matrix_column": False,
    },
    'astream.snapshot_rejected': {
        "kind": 'counter',
        "modules": ('repro/apps/astream.py',),
        "matrix_column": False,
    },
    'astream.snapshots_restored': {
        "kind": 'counter',
        "modules": ('repro/apps/astream.py',),
        "matrix_column": False,
    },
    'astream.tier2_latency': {
        "kind": 'histogram',
        "modules": ('repro/apps/astream.py',),
        "matrix_column": False,
    },
    'atum.broadcast_reproposals': {
        "kind": 'counter',
        "modules": ('repro/core/node.py',),
        "matrix_column": False,
    },
    'atum.broadcasts_started': {
        "kind": 'counter',
        "modules": ('repro/core/node.py',),
        "matrix_column": False,
    },
    'atum.deliveries': {
        "kind": 'counter',
        "modules": ('repro/core/node.py',),
        "matrix_column": False,
    },
    'atum.delivery_latency': {
        "kind": 'histogram',
        "modules": ('repro/core/node.py',),
        "matrix_column": False,
    },
    'atum.gossip_forwards': {
        "kind": 'counter',
        "modules": ('repro/core/node.py',),
        "matrix_column": False,
    },
    'churn.leave_failed': {
        "kind": 'counter',
        "modules": ('repro/workloads/churn.py',),
        "matrix_column": False,
    },
    'cluster.eviction_duplicate_suppressed': {
        "kind": 'counter',
        "modules": ('repro/core/cluster.py',),
        "matrix_column": False,
    },
    'cluster.eviction_leave_failed': {
        "kind": 'counter',
        "modules": ('repro/core/cluster.py',),
        "matrix_column": False,
    },
    'directory.evictions_deferred': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/overlay/directory.py'),
        "matrix_column": True,
    },
    'directory.join_revalidations_revoked': {
        "kind": 'counter',
        "modules": ('repro/core/cluster.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'directory.joins_recorded': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/overlay/directory.py'),
        "matrix_column": True,
    },
    'directory.merge_eviction_failed': {
        "kind": 'counter',
        "modules": ('repro/core/cluster.py',),
        "matrix_column": False,
    },
    'directory.merge_evictions_enforced': {
        "kind": 'counter',
        "modules": ('repro/core/cluster.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'directory.merges': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/overlay/directory.py'),
        "matrix_column": True,
    },
    'directory.splits': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/overlay/directory.py'),
        "matrix_column": True,
    },
    'faults.evictions_proposed_by_byzantine': {
        "kind": 'counter',
        "modules": ('repro/faults/behaviours.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.flash_join_failed': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'faults.messages_corrupted': {
        "kind": 'counter',
        "modules": ('repro/faults/injector.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.messages_delayed': {
        "kind": 'counter',
        "modules": ('repro/faults/injector.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.messages_dropped': {
        "kind": 'counter',
        "modules": ('repro/faults/injector.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.messages_duplicated': {
        "kind": 'counter',
        "modules": ('repro/faults/injector.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.partitions_formed': {
        "kind": 'counter',
        "modules": ('repro/faults/behaviours.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.partitions_healed': {
        "kind": 'counter',
        "modules": ('repro/faults/behaviours.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.plan_leave_skipped': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'faults.rejoin_group_fraction': {
        "kind": 'histogram',
        "modules": ('repro/faults/behaviours.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.rejoin_join_failed': {
        "kind": 'counter',
        "modules": ('repro/faults/behaviours.py',),
        "matrix_column": False,
    },
    'faults.rejoin_joins': {
        "kind": 'counter',
        "modules": ('repro/faults/behaviours.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.rejoin_leave_failed': {
        "kind": 'counter',
        "modules": ('repro/faults/behaviours.py',),
        "matrix_column": False,
    },
    'faults.rejoin_leaves': {
        "kind": 'counter',
        "modules": ('repro/faults/behaviours.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.rejoin_threshold_excess': {
        "kind": 'histogram',
        "modules": ('repro/faults/behaviours.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.transfer_garbage_served': {
        "kind": 'counter',
        "modules": ('repro/core/node.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.transfer_slow_dripped': {
        "kind": 'counter',
        "modules": ('repro/core/node.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.transfer_stale_served': {
        "kind": 'counter',
        "modules": ('repro/core/node.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'faults.transfer_stonewalled': {
        "kind": 'counter',
        "modules": ('repro/core/node.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'group.corrupted_shares_dropped': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'group.equivocations_sent': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'group.evictions_proposed': {
        "kind": 'counter',
        "modules": ('repro/group/heartbeat.py',),
        "matrix_column": False,
    },
    'group.forged_size_rejected': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'group.messages_accepted': {
        "kind": 'counter',
        "modules": ('repro/sim/protocol_perf.py',),
        "matrix_column": False,
    },
    'group.shares_sent': {
        "kind": 'counter',
        "modules": ('repro/sim/protocol_perf.py',),
        "matrix_column": False,
    },
    'invariants.check_errors': {
        "kind": 'counter',
        "modules": ('repro/faults/invariants.py',),
        "matrix_column": False,
    },
    'membership.evictions_started': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'membership.exchanges_attempted': {
        "kind": 'counter',
        "modules": ('repro/overlay/membership.py', 'repro/workloads/growth.py'),
        "matrix_column": False,
    },
    'membership.exchanges_completed': {
        "kind": 'counter',
        "modules": ('repro/overlay/membership.py', 'repro/sim/protocol_perf.py', 'repro/workloads/growth.py'),
        "matrix_column": False,
    },
    'membership.exchanges_suppressed': {
        "kind": 'counter',
        "modules": ('repro/overlay/membership.py',),
        "matrix_column": False,
    },
    'membership.group_count': {
        "kind": 'series',
        "modules": ('repro/overlay/membership.py',),
        "matrix_column": False,
    },
    'membership.join_latency': {
        "kind": 'histogram',
        "modules": ('repro/sim/protocol_perf.py', 'repro/workloads/churn.py'),
        "matrix_column": False,
    },
    'membership.joins_completed': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/sim/protocol_perf.py', 'repro/workloads/churn.py'),
        "matrix_column": True,
    },
    'membership.joins_started': {
        "kind": 'counter',
        "modules": ('repro/overlay/membership.py',),
        "matrix_column": False,
    },
    'membership.leaves_completed': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/sim/protocol_perf.py', 'repro/workloads/churn.py'),
        "matrix_column": True,
    },
    'membership.merges': {
        "kind": 'counter',
        "modules": ('repro/overlay/membership.py', 'repro/sim/protocol_perf.py'),
        "matrix_column": False,
    },
    'membership.slowdown_penalty': {
        "kind": 'histogram',
        "modules": ('repro/faults/behaviours.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'membership.splits': {
        "kind": 'counter',
        "modules": ('repro/overlay/membership.py', 'repro/sim/protocol_perf.py'),
        "matrix_column": False,
    },
    'membership.system_size': {
        "kind": 'series',
        "modules": ('repro/overlay/membership.py', 'repro/workloads/growth.py'),
        "matrix_column": False,
    },
    'membership.walks_started': {
        "kind": 'counter',
        "modules": ('repro/overlay/membership.py',),
        "matrix_column": False,
    },
    'mw.delivers': {
        "kind": 'counter',
        "modules": ('repro/core/middleware.py',),
        "matrix_column": False,
    },
    'mw.evictions': {
        "kind": 'counter',
        "modules": ('repro/core/middleware.py',),
        "matrix_column": False,
    },
    'mw.nodes_added': {
        "kind": 'counter',
        "modules": ('repro/core/middleware.py',),
        "matrix_column": False,
    },
    'mw.nodes_left': {
        "kind": 'counter',
        "modules": ('repro/core/middleware.py',),
        "matrix_column": False,
    },
    'mw.sends': {
        "kind": 'counter',
        "modules": ('repro/core/middleware.py',),
        "matrix_column": False,
    },
    'mw.timer_ticks': {
        "kind": 'counter',
        "modules": ('repro/core/middleware.py',),
        "matrix_column": False,
    },
    'mw.view_changes': {
        "kind": 'counter',
        "modules": ('repro/core/middleware.py',),
        "matrix_column": False,
    },
    'net.bytes_sent': {
        "kind": 'counter',
        "modules": ('repro/net/network.py',),
        "matrix_column": False,
    },
    'net.corrupted_discarded': {
        "kind": 'counter',
        "modules": ('repro/core/node.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'net.delivery_latency': {
        "kind": 'histogram',
        "modules": ('repro/net/network.py', 'repro/sim/protocol_perf.py'),
        "matrix_column": False,
    },
    'net.messages_delivered': {
        "kind": 'counter',
        "modules": ('repro/net/network.py', 'repro/sim/protocol_perf.py'),
        "matrix_column": False,
    },
    'net.messages_lost': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/net/network.py'),
        "matrix_column": True,
    },
    'net.messages_partitioned': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/net/network.py'),
        "matrix_column": True,
    },
    'net.messages_sent': {
        "kind": 'counter',
        "modules": ('repro/net/network.py', 'repro/sim/protocol_perf.py'),
        "matrix_column": False,
    },
    'net.messages_undeliverable': {
        "kind": 'counter',
        "modules": ('repro/net/network.py',),
        "matrix_column": False,
    },
    'perf.latency': {
        "kind": 'histogram',
        "modules": ('repro/sim/perf.py',),
        "matrix_column": False,
    },
    'perf.swallowed_errors': {
        "kind": 'counter',
        "modules": ('repro/sim/protocol_perf.py',),
        "matrix_column": False,
    },
    'policy.antientropy_period': {
        "kind": 'histogram',
        "modules": ('repro/core/policies.py',),
        "matrix_column": False,
    },
    'policy.gmax': {
        "kind": 'histogram',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'policy.gmin': {
        "kind": 'histogram',
        "modules": ('repro/core/policies.py',),
        "matrix_column": False,
    },
    'policy.gossip_fanout': {
        "kind": 'histogram',
        "modules": ('repro/core/policies.py',),
        "matrix_column": False,
    },
    'policy.heartbeat_period': {
        "kind": 'histogram',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'policy.proposals': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'policy.rejected_bounds': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'policy.rejected_coupling': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'policy.rejected_immutable': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py',),
        "matrix_column": False,
    },
    'policy.rejected_oscillation': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'policy.rejected_rate': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'policy.rejected_step': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'policy.transition_step': {
        "kind": 'histogram',
        "modules": ('repro/core/policies.py',),
        "matrix_column": False,
    },
    'policy.transitions': {
        "kind": 'counter',
        "modules": ('repro/core/policies.py', 'repro/faults/scenarios.py'),
        "matrix_column": True,
    },
    'req.completed': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/net/requests.py'),
        "matrix_column": True,
    },
    'req.deduplicated': {
        "kind": 'counter',
        "modules": ('repro/net/requests.py',),
        "matrix_column": False,
    },
    'req.garbage_replies': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'req.gave_up': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/net/requests.py'),
        "matrix_column": True,
    },
    'req.quarantine_released': {
        "kind": 'counter',
        "modules": ('repro/net/requests.py',),
        "matrix_column": False,
    },
    'req.quarantine_threshold': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py', 'repro/net/requests.py'),
        "matrix_column": True,
    },
    'req.quarantined': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/net/requests.py'),
        "matrix_column": True,
    },
    'req.rejected_expired': {
        "kind": 'counter',
        "modules": ('repro/net/requests.py',),
        "matrix_column": False,
    },
    'req.rejected_malformed': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/group/antientropy.py', 'repro/net/requests.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'req.rejected_misaddressed': {
        "kind": 'counter',
        "modules": ('repro/net/requests.py',),
        "matrix_column": False,
    },
    'req.rejected_replayed': {
        "kind": 'counter',
        "modules": ('repro/net/requests.py',),
        "matrix_column": False,
    },
    'req.rejected_unknown': {
        "kind": 'counter',
        "modules": ('repro/net/requests.py',),
        "matrix_column": False,
    },
    'req.rejected_unsolicited': {
        "kind": 'counter',
        "modules": ('repro/net/requests.py',),
        "matrix_column": False,
    },
    'req.resolved_externally': {
        "kind": 'counter',
        "modules": ('repro/net/requests.py',),
        "matrix_column": False,
    },
    'req.sent': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/net/requests.py'),
        "matrix_column": True,
    },
    'req.stale_replies': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'req.timeouts': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/net/requests.py'),
        "matrix_column": True,
    },
    'scenario.catchup_latency': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'scenario.completion_ratio': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'scenario.delivery_fraction': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'scenario.policy_bound_met': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'scenario.policy_transitions': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'scenario.quarantine_threshold': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'scenario.rejoin_max_excess': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'scenario.rejoin_max_fraction': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'scenario.slowdown_penalty': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py',),
        "matrix_column": True,
    },
    'smr.checkpoint.anchors_adopted': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.announces': {
        "kind": 'counter',
        "modules": ('repro/smr/checkpoint.py',),
        "matrix_column": False,
    },
    'smr.checkpoint.catchup_latency': {
        "kind": 'histogram',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.emitted': {
        "kind": 'counter',
        "modules": ('repro/smr/checkpoint.py',),
        "matrix_column": False,
    },
    'smr.checkpoint.epoch_transitions': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.gap_hints': {
        "kind": 'counter',
        "modules": ('repro/smr/checkpoint.py',),
        "matrix_column": False,
    },
    'smr.checkpoint.gaps_detected': {
        "kind": 'counter',
        "modules": ('repro/smr/checkpoint.py',),
        "matrix_column": False,
    },
    'smr.checkpoint.ops_installed': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.rejected': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.slots_gc': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/pbft.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.stable': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.state_requests': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.state_responses': {
        "kind": 'counter',
        "modules": ('repro/smr/checkpoint.py',),
        "matrix_column": False,
    },
    'smr.checkpoint.tail_view_changes': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.transfers_completed': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/checkpoint.py'),
        "matrix_column": True,
    },
    'smr.checkpoint.transition_votes': {
        "kind": 'counter',
        "modules": ('repro/smr/checkpoint.py',),
        "matrix_column": False,
    },
    'smr.decided': {
        "kind": 'counter',
        "modules": ('repro/smr/base.py',),
        "matrix_column": False,
    },
    'smr.pbft.new_views': {
        "kind": 'counter',
        "modules": ('repro/smr/pbft.py',),
        "matrix_column": False,
    },
    'smr.pbft.pre_prepares': {
        "kind": 'counter',
        "modules": ('repro/smr/pbft.py',),
        "matrix_column": False,
    },
    'smr.pbft.view_change_revotes': {
        "kind": 'counter',
        "modules": ('repro/smr/pbft.py',),
        "matrix_column": False,
    },
    'smr.pbft.view_changes': {
        "kind": 'counter',
        "modules": ('repro/faults/scenarios.py', 'repro/smr/pbft.py'),
        "matrix_column": True,
    },
    'smr.sync.instances_started': {
        "kind": 'counter',
        "modules": ('repro/smr/dolev_strong.py',),
        "matrix_column": False,
    },
    'smr.sync.invalid_chain': {
        "kind": 'counter',
        "modules": ('repro/smr/dolev_strong.py',),
        "matrix_column": False,
    },
    'smr.sync.null_decisions': {
        "kind": 'counter',
        "modules": ('repro/smr/dolev_strong.py',),
        "matrix_column": False,
    },
    'smr.sync.relays': {
        "kind": 'counter',
        "modules": ('repro/smr/dolev_strong.py',),
        "matrix_column": False,
    },
    'stack.deliveries': {
        "kind": 'counter',
        "modules": ('repro/sim/protocol_perf.py',),
        "matrix_column": False,
    },
    'stack.forwards': {
        "kind": 'counter',
        "modules": ('repro/sim/protocol_perf.py',),
        "matrix_column": False,
    },
}

__all__ = ["METRICS"]
