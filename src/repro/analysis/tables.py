"""Plain-text table formatting for benchmark output.

Every benchmark in ``benchmarks/`` prints the rows/series the corresponding
paper table or figure reports; these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered_rows = [
        {column: _render(row.get(column, "")) for column in columns} for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered_rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rendered_rows:
        lines.append(" | ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def format_cdf_rows(
    cdf: Iterable[Tuple[float, float]], value_label: str = "latency_s"
) -> List[Dict[str, object]]:
    """Turn (value, fraction) pairs into table rows."""
    return [
        {value_label: round(value, 4), "fraction_delivered": round(fraction, 4)}
        for value, fraction in cdf
    ]


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


__all__ = ["format_table", "format_cdf_rows"]
