"""ATL000 fixture: pragma hygiene violations (reason-less / unknown rule)."""

import random


def draw():
    value = random.random()  # atumlint: allow[ATL001]
    return value  # atumlint: allow[ATL999] names a rule that does not exist
