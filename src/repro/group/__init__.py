"""Group layer: volatile groups, group messages, heartbeats, cost model.

The group layer masks individual node failures and provides the abstraction of
robust vgroups (paper section 3.1).  Its building blocks are:

* :class:`repro.group.vgroup.VGroupView` -- an immutable snapshot of a vgroup's
  identity and membership.
* :class:`repro.group.messages.GroupMessenger` -- sends and accepts *group
  messages*: a message from vgroup A to vgroup B is sent by every correct node
  of A to every node of B, and accepted by a node of B once a majority of A has
  sent it.  The digest optimisation of section 5.1 is implemented here.
* :class:`repro.group.heartbeat.HeartbeatMonitor` -- periodic heartbeats and
  eviction of unresponsive group members (section 5.1).
* :class:`repro.group.cost.GroupCostModel` -- latency model of group-level
  operations (group messages, SMR agreement) used by the vgroup-granularity
  membership engine.
"""

from repro.group.vgroup import VGroupView, majority_threshold
from repro.group.messages import GroupMessenger, GroupMessageEnvelope, NodeBinding
from repro.group.heartbeat import HeartbeatMonitor, HeartbeatConfig
from repro.group.cost import GroupCostModel

__all__ = [
    "VGroupView",
    "majority_threshold",
    "GroupMessenger",
    "GroupMessageEnvelope",
    "NodeBinding",
    "HeartbeatMonitor",
    "HeartbeatConfig",
    "GroupCostModel",
]
