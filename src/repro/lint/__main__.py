"""atumlint CLI: ``python -m repro.lint [targets ...]``.

Modes
-----
(default)            lint, print unbaselined findings, exit 1 if any
--check              strict CI mode: also fail on stale baseline entries,
                     a stale metrics registry, or a stale docs/METRICS.md
--write-baseline     rewrite .atumlint-baseline.json from current findings
--gen-metrics        regenerate src/repro/lint/metrics_registry.py
--gen-metrics-doc    regenerate docs/METRICS.md
--json PATH          additionally write the findings report as JSON
--list-rules         print the rule table and exit
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    BASELINE_FILENAME,
    diff_against_baseline,
    entries_from_findings,
    load_baseline,
    save_baseline,
)
from repro.lint.core import run_lint, registered_rules
from repro.lint.metrics_scan import (
    registry_diff,
    render_doc,
    render_registry,
    scan_metrics,
)


def find_root(start: Path) -> Path:
    """The repo root: nearest ancestor containing ``src/repro``."""
    for candidate in [start, *start.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return start


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="atumlint: determinism & protocol-hygiene static analysis",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="files/directories to lint (default: src/repro under the repo root)",
    )
    parser.add_argument("--root", type=Path, default=None, help="repo root override")
    parser.add_argument(
        "--check",
        action="store_true",
        help="strict CI mode: fail on unbaselined findings, stale baseline "
        "entries, stale metrics registry or stale docs/METRICS.md",
    )
    parser.add_argument(
        "--rules", default=None, help="comma-separated rule ids (default: all)"
    )
    parser.add_argument("--json", type=Path, default=None, help="write findings JSON")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_FILENAME} from current findings",
    )
    parser.add_argument(
        "--gen-metrics",
        action="store_true",
        help="regenerate src/repro/lint/metrics_registry.py",
    )
    parser.add_argument(
        "--gen-metrics-doc", action="store_true", help="regenerate docs/METRICS.md"
    )
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-finding output"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = (args.root or find_root(Path.cwd())).resolve()
    targets = (
        [Path(t) for t in args.targets] if args.targets else [root / "src" / "repro"]
    )
    baseline_path = root / BASELINE_FILENAME
    registry_path = root / "src" / "repro" / "lint" / "metrics_registry.py"
    doc_path = root / "docs" / "METRICS.md"

    if args.list_rules:
        for rule_id, cls in sorted(registered_rules().items()):
            print(f"{rule_id}  {cls.title}")
        return 0

    if args.gen_metrics or args.gen_metrics_doc:
        metrics = scan_metrics(targets, root)
        if args.gen_metrics:
            registry_path.write_text(render_registry(metrics), encoding="utf-8")
            print(f"wrote {registry_path.relative_to(root)} ({len(metrics)} names)")
        if args.gen_metrics_doc:
            doc_path.parent.mkdir(parents=True, exist_ok=True)
            doc_path.write_text(render_doc(metrics), encoding="utf-8")
            print(f"wrote {doc_path.relative_to(root)}")
        return 0

    rule_ids = (
        [r.strip() for r in args.rules.split(",") if r.strip()] if args.rules else None
    )
    findings = run_lint(targets, root, rule_ids)
    entries = load_baseline(baseline_path)
    diff = diff_against_baseline(findings, entries)

    if args.write_baseline:
        save_baseline(baseline_path, entries_from_findings(findings, entries))
        print(
            f"wrote {BASELINE_FILENAME} with {len(findings)} entr"
            f"{'y' if len(findings) == 1 else 'ies'}"
        )
        return 0

    failures: List[str] = []
    if not args.quiet:
        for finding in diff.unbaselined:
            print(finding)
    if diff.unbaselined:
        failures.append(f"{len(diff.unbaselined)} unbaselined finding(s)")

    stale_registry: List[str] = []
    orphaned_registry: List[str] = []
    doc_stale = False
    if args.check:
        if diff.stale:
            for entry in diff.stale:
                print(
                    f"stale baseline entry (fixed? delete it): "
                    f"{entry.rule} {entry.path} :: {entry.snippet}"
                )
            failures.append(f"{len(diff.stale)} stale baseline entr(ies)")
        from repro.lint.metrics_registry import METRICS

        scanned = scan_metrics(targets, root)
        stale_registry, orphaned_registry = registry_diff(scanned, METRICS)
        for name in stale_registry:
            print(f"metric {name!r} used in code but missing from the registry")
        for name in orphaned_registry:
            print(f"metric {name!r} in the registry but no longer used anywhere")
        if stale_registry or orphaned_registry:
            failures.append(
                "stale metrics registry (run python -m repro.lint --gen-metrics)"
            )
        if doc_path.exists():
            doc_stale = doc_path.read_text(encoding="utf-8") != render_doc(scanned)
        else:
            doc_stale = True
        if doc_stale:
            print("docs/METRICS.md is stale (run python -m repro.lint --gen-metrics-doc)")
            failures.append("stale docs/METRICS.md")

    if args.json is not None:
        report = {
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                    "snippet": f.snippet,
                    "baselined": False,
                }
                for f in diff.unbaselined
            ]
            + [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                    "snippet": f.snippet,
                    "baselined": True,
                }
                for f in diff.suppressed
            ],
            "stale_baseline": [
                {"rule": e.rule, "path": e.path, "snippet": e.snippet}
                for e in diff.stale
            ],
            "ok": not failures,
        }
        args.json.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    if failures:
        print(f"atumlint: FAIL ({'; '.join(failures)})", file=sys.stderr)
        return 1
    suppressed = len(diff.suppressed)
    print(
        f"atumlint: OK ({len(findings)} finding(s), {suppressed} baselined, "
        f"{len(entries)} baseline entr{'y' if len(entries) == 1 else 'ies'})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
