"""Random-walk certificates (paper section 5.1, "Random walk communication").

When a random walk is carried out with certificates, each forwarding vgroup
appends a :class:`WalkCertificate` attesting to the identity of the next hop.
The selected vgroup can then reply directly to the originator, which verifies
the whole :class:`CertificateChain`.  The chain grows linearly in the walk
length -- the trade-off the paper discusses against the backward-phase scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.crypto.digest import digest_object_in_mode, digest_token_mode
from repro.crypto.keys import KeyRegistry, Signature


@dataclass(frozen=True)
class WalkCertificate:
    """One hop of a certified random walk.

    The certificate states: vgroup ``issuer`` (identified by its group id)
    forwarded walk ``walk_id`` to vgroup ``next_hop`` at hop index ``hop``.
    ``signatures`` contains one signature per issuer-group member that signed
    the statement; a certificate is valid when a majority of the issuer's
    membership signed it.
    """

    walk_id: str
    hop: int
    issuer: str
    issuer_members: tuple
    next_hop: str
    signatures: tuple

    def statement(self) -> dict:
        """The signed statement (excludes the signatures themselves)."""
        return {
            "walk_id": self.walk_id,
            "hop": self.hop,
            "issuer": self.issuer,
            "issuer_members": list(self.issuer_members),
            "next_hop": self.next_hop,
        }


def make_certificate(
    registry: KeyRegistry,
    walk_id: str,
    hop: int,
    issuer: str,
    issuer_members: Sequence[str],
    next_hop: str,
    signers: Sequence[str],
) -> WalkCertificate:
    """Build a certificate signed by ``signers`` (members of the issuer vgroup)."""
    certificate = WalkCertificate(
        walk_id=walk_id,
        hop=hop,
        issuer=issuer,
        issuer_members=tuple(issuer_members),
        next_hop=next_hop,
        signatures=(),
    )
    statement = certificate.statement()
    signatures = tuple(registry.sign(signer, statement) for signer in signers)
    return WalkCertificate(
        walk_id=walk_id,
        hop=hop,
        issuer=issuer,
        issuer_members=tuple(issuer_members),
        next_hop=next_hop,
        signatures=signatures,
    )


@dataclass
class CertificateChain:
    """An ordered chain of walk certificates, one per hop."""

    walk_id: str
    certificates: List[WalkCertificate] = field(default_factory=list)

    def append(self, certificate: WalkCertificate) -> None:
        self.certificates.append(certificate)

    def __len__(self) -> int:
        return len(self.certificates)

    def size_bytes(self, per_certificate_bytes: int = 512) -> int:
        """Approximate serialized size; linear in the walk length."""
        return per_certificate_bytes * len(self.certificates)

    def verify(self, registry: KeyRegistry, origin_group: str) -> bool:
        """Verify the chain: signatures, majority quorums and hop linkage.

        The statement of each certificate is canonicalised and digested once,
        then every signature is checked against that digest (in cost-model-only
        digest mode the digest is the cheap ``cm:`` token, but the MAC check
        always runs — skipping it would let forged signatures through and make
        the mode behave differently under Byzantine scenarios).  A quorum
        counts *distinct* signers: duplicated signatures from one member do
        not add up to a majority.

        Args:
            registry: Key registry used to check signatures.
            origin_group: Group id that started the walk; the first certificate
                must be issued by it.
        """
        previous_next = origin_group
        for index, certificate in enumerate(self.certificates):
            if certificate.walk_id != self.walk_id:
                return False
            if certificate.hop != index:
                return False
            if certificate.issuer != previous_next:
                return False
            statement = certificate.statement()
            # Digest the statement at most once per token mode seen among the
            # signatures (normally exactly one); signatures created before a
            # digest-mode switch keep verifying after it.
            digest_per_mode: dict = {}
            members = certificate.issuer_members
            valid_signers = set()
            for signature in certificate.signatures:
                if not isinstance(signature, Signature):
                    continue
                if signature.signer not in members:
                    continue
                mode = digest_token_mode(signature.digest)
                expected = digest_per_mode.get(mode)
                if expected is None:
                    expected = digest_per_mode[mode] = digest_object_in_mode(
                        statement, mode
                    )
                if registry.verify_digest(signature, expected):
                    valid_signers.add(signature.signer)
            required = len(members) // 2 + 1
            if len(valid_signers) < required:
                return False
            previous_next = certificate.next_hop
        return True

    @property
    def selected_group(self) -> str:
        """The vgroup at the end of the walk (the selected vgroup)."""
        if not self.certificates:
            raise ValueError("empty certificate chain")
        return self.certificates[-1].next_hop


__all__ = ["WalkCertificate", "CertificateChain", "make_certificate"]
