"""Tests for the unified request/response layer (repro.net.requests).

Covers the correlated-envelope contract (malformed / replayed /
misaddressed / expired / unsolicited traffic is rejected and counted,
never dispatched), the retry/backoff/rotation machinery, the per-peer
suspicion scoreboard with decay-guaranteed quarantine release, the
seeded fuzz battery the issue calls for, and the JitteredBackoff gate
behind anti-entropy repair spacing.
"""

import random
import zlib

import pytest

from repro.net.requests import (
    JitteredBackoff,
    PeerScore,
    RequestEnvelope,
    RequestManager,
    RequestPolicy,
    ResponseEnvelope,
    Scoreboard,
)
from repro.sim.simulator import Simulator


PEERS = ("p0", "p1", "p2", "p3")


class Transport:
    """Records what a manager ships; lets tests answer selectively."""

    def __init__(self):
        self.sent = []  # (peer, payload, size_bytes)

    def __call__(self, peer, payload, size_bytes):
        self.sent.append((peer, payload, size_bytes))

    @property
    def envelopes(self):
        return [
            (peer, payload)
            for peer, payload, _ in self.sent
            if isinstance(payload, RequestEnvelope)
        ]

    def last_envelope(self):
        return self.envelopes[-1]


def build_manager(sim=None, owner="n0", policy=None):
    sim = sim or Simulator(seed=5)
    transport = Transport()
    manager = RequestManager(sim, owner, transport, policy=policy)
    return sim, transport, manager


def reply(manager, envelope, payload, responder=None):
    response = ResponseEnvelope(
        request_id=envelope.request_id,
        kind=envelope.kind,
        payload=payload,
        responder=responder or "whoever",
    )
    return manager.on_envelope(response, response.responder)


# ------------------------------------------------------------------ policy


class TestRequestPolicy:
    def test_timeouts_back_off_exponentially_and_cap(self):
        policy = RequestPolicy(base_timeout=2.0, backoff_factor=2.0, max_timeout=10.0)
        assert policy.timeout_for(0) == 2.0
        assert policy.timeout_for(1) == 4.0
        assert policy.timeout_for(2) == 8.0
        assert policy.timeout_for(3) == 10.0  # capped
        assert policy.timeout_for(9) == 10.0


# -------------------------------------------------------------- scoreboard


class TestScoreboard:
    def test_evidence_weights_accumulate(self):
        sim = Simulator(seed=1)
        board = Scoreboard(sim, RequestPolicy())
        board.note("p", "timeout")
        board.note("p", "stale")
        score = board.snapshot()["p"]
        assert score.timeouts == 1 and score.stale == 1
        assert score.suspicion == pytest.approx(1.0 + 2.0)

    def test_suspicion_decays_with_half_life(self):
        sim = Simulator(seed=1)
        policy = RequestPolicy(decay_half_life=10.0)
        board = Scoreboard(sim, policy)
        board.note("p", "garbage")  # weight 3.0
        score = board.snapshot()["p"]
        assert score.decayed(sim.now + 10.0, 10.0) == pytest.approx(1.5)
        assert score.decayed(sim.now + 20.0, 10.0) == pytest.approx(0.75)

    def test_quarantine_requires_threshold_and_decay_releases_it(self):
        sim = Simulator(seed=1)
        policy = RequestPolicy(quarantine_threshold=4.0, decay_half_life=5.0)
        board = Scoreboard(sim, policy)
        board.note("p", "garbage")  # 3.0 < 4.0
        assert not board.quarantined("p")
        board.note("p", "stale")  # 5.0 >= 4.0
        assert board.quarantined("p")
        assert sim.metrics.counter("req.quarantined") == 1
        # Decay alone releases: advance past ~half a half-life.
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert not board.quarantined("p")
        assert sim.metrics.counter("req.quarantine_released") == 1

    def test_timeouts_alone_never_quarantine_forever(self):
        # A merely-slow peer keeps timing out, but as long as evidence
        # arrives slower than it decays the peer is never locked out.
        sim = Simulator(seed=1)
        policy = RequestPolicy(
            timeout_weight=1.0, quarantine_threshold=4.0, decay_half_life=5.0
        )
        board = Scoreboard(sim, policy)

        def tick(remaining):
            board.note("p", "timeout")
            if remaining:
                sim.schedule(10.0, lambda: tick(remaining - 1))

        tick(10)
        sim.run()
        # 10s between timeouts = 2 half-lives: suspicion never reaches 4.
        assert not board.quarantined("p")
        assert sim.metrics.counter("req.quarantined") == 0

    def test_unknown_peer_is_not_quarantined(self):
        sim = Simulator(seed=1)
        board = Scoreboard(sim, RequestPolicy())
        assert not board.quarantined("never-seen")


class TestAdaptiveQuarantine:
    """Fault-rate-fed quarantine thresholds (ISSUE 7 tentpole 4)."""

    @staticmethod
    def adaptive_policy(**overrides):
        defaults = dict(
            adaptive_quarantine=True,
            quarantine_threshold=4.0,
            min_quarantine_threshold=2.0,
            fault_window=10.0,
            quiet_fault_rate=0.05,
            adaptive_gain=2.0,
            decay_half_life=5.0,
        )
        defaults.update(overrides)
        return RequestPolicy(**defaults)

    @staticmethod
    def storm(sim, board, events, period=1.0, kind="garbage"):
        def tick(remaining):
            board.note(f"p{remaining % 3}", kind)
            if remaining:
                sim.schedule(period, lambda: tick(remaining - 1))

        tick(events)
        sim.run()

    def test_static_policy_keeps_constant_threshold_and_no_histogram(self):
        sim = Simulator(seed=1)
        board = Scoreboard(sim, RequestPolicy())
        self.storm(sim, board, events=15)
        assert board.effective_threshold(sim.now) == 4.0
        assert sim.metrics.histogram("req.quarantine_threshold").samples == []

    def test_hostile_window_tightens_threshold(self):
        sim = Simulator(seed=1)
        board = Scoreboard(sim, self.adaptive_policy())
        # ~1 evidence event per sim second across a 10s window: rate >> quiet.
        self.storm(sim, board, events=15)
        threshold = board.effective_threshold(sim.now)
        assert threshold < 4.0
        assert threshold >= 2.0
        # The window roll observed the adapted threshold.
        samples = sim.metrics.histogram("req.quarantine_threshold").samples
        assert samples and min(samples) == threshold

    def test_quiet_window_relaxes_back_to_base(self):
        sim = Simulator(seed=1)
        board = Scoreboard(sim, self.adaptive_policy())
        self.storm(sim, board, events=15)
        assert board.effective_threshold(sim.now) < 4.0
        # Roll once to flush the storm's tail events, then a fully quiet
        # window measures rate 0 and relaxes the threshold to its base.
        sim.schedule(30.0, lambda: board.effective_threshold(sim.now))
        sim.run()
        sim.schedule(15.0, lambda: None)
        sim.run()
        assert board.effective_threshold(sim.now) == 4.0

    def test_tightened_threshold_never_drops_below_floor(self):
        sim = Simulator(seed=1)
        board = Scoreboard(sim, self.adaptive_policy(adaptive_gain=100.0))
        self.storm(sim, board, events=40, period=0.25)
        assert board.effective_threshold(sim.now) == 2.0

    def test_decay_release_survives_the_tightest_threshold(self):
        # PR-6 invariant preserved under adaptation: the floor is strictly
        # positive, so decay alone still releases every quarantined peer.
        sim = Simulator(seed=1)
        board = Scoreboard(sim, self.adaptive_policy(adaptive_gain=100.0))
        self.storm(sim, board, events=40, period=0.25)
        assert board.effective_threshold(sim.now) == 2.0
        board.note("q", "garbage")  # 3.0 >= tightened 2.0
        assert board.quarantined("q")
        released_before = sim.metrics.counter("req.quarantine_released")
        sim.schedule(40.0, lambda: None)
        sim.run()
        assert not board.quarantined("q")
        assert sim.metrics.counter("req.quarantine_released") == released_before + 1

    def test_timeouts_alone_never_quarantine_forever_with_adaptation(self):
        sim = Simulator(seed=1)
        board = Scoreboard(sim, self.adaptive_policy())
        self.storm(sim, board, events=10, period=10.0, kind="timeout")
        # 10s between timeouts = 2 half-lives; even if windows tighten the
        # threshold to its floor (2.0), suspicion tops out below it.
        assert sim.metrics.counter("req.quarantined") == 0


# ------------------------------------------------------- request lifecycle


class TestRequestLifecycle:
    def test_envelope_carries_correlation_id_and_absolute_deadline(self):
        sim, transport, manager = build_manager(
            policy=RequestPolicy(base_timeout=3.0, spread_rotation=False)
        )
        manager.request("kind", {"x": 1}, PEERS)
        peer, envelope = transport.last_envelope()
        assert peer == "p0"  # spread disabled: preference order respected
        assert envelope.request_id == "n0:req:0"
        assert envelope.requester == "n0"
        assert envelope.deadline == pytest.approx(sim.now + 3.0)

    def test_ok_response_completes_and_fires_on_done(self):
        sim, transport, manager = build_manager()
        done = []
        manager.request(
            "kind", "q", PEERS, on_response=lambda p, r: "ok", on_done=lambda: done.append(1)
        )
        peer, envelope = transport.last_envelope()
        assert reply(manager, envelope, "a", responder=peer)
        assert done == [1]
        assert manager.pending_count() == 0
        assert sim.metrics.counter("req.completed") == 1

    def test_timeout_retries_with_backoff_and_rotation(self):
        policy = RequestPolicy(
            base_timeout=2.0, backoff_factor=2.0, jitter=0.0, spread_rotation=False
        )
        sim, transport, manager = build_manager(policy=policy)
        manager.request("kind", "q", PEERS)
        sim.run(until=2.5)
        assert sim.metrics.counter("req.timeouts") == 1
        targets = [peer for peer, _ in transport.envelopes]
        assert targets == ["p0", "p1"]  # rotated off the timed-out peer
        # Second-attempt deadline backed off: 2.0 -> 4.0.
        _, second = transport.last_envelope()
        assert second.deadline - second.sent_at == pytest.approx(4.0)

    def test_first_attempt_draws_no_randomness(self):
        sim, transport, manager = build_manager()
        manager.request("kind", "q", PEERS, on_response=lambda p, r: "ok")
        peer, envelope = transport.last_envelope()
        reply(manager, envelope, "a", responder=peer)
        assert manager._rng is None  # jitter stream never created

    def test_garbage_reply_adds_suspicion_and_retries_immediately(self):
        sim, transport, manager = build_manager(
            policy=RequestPolicy(spread_rotation=False)
        )
        verdicts = iter(["garbage", "ok"])
        manager.request("kind", "q", PEERS, on_response=lambda p, r: next(verdicts))
        peer0, envelope0 = transport.last_envelope()
        assert reply(manager, envelope0, "junk", responder=peer0)
        # Retried at once (no timer wait), rotated to the next candidate.
        peer1, envelope1 = transport.last_envelope()
        assert peer1 == "p1" and envelope1 is not envelope0
        assert sim.metrics.counter("req.garbage_replies") == 1
        assert manager.scoreboard.snapshot()[peer0].garbage == 1

    def test_quarantined_peers_are_skipped_until_all_are(self):
        sim, transport, manager = build_manager(
            policy=RequestPolicy(spread_rotation=False)
        )
        for peer in PEERS[:2]:
            manager.scoreboard.note(peer, "garbage")
            manager.scoreboard.note(peer, "stale")  # 5.0 >= 4.0
        manager.request("kind", "q", PEERS)
        peer, _ = transport.last_envelope()
        assert peer == "p2"
        # Everyone quarantined: liveness wins, the rotation peer is used.
        for peer in PEERS[2:]:
            manager.scoreboard.note(peer, "garbage")
            manager.scoreboard.note(peer, "stale")
        manager.request("kind", "q", PEERS)
        peer, _ = transport.last_envelope()
        assert peer == "p0"

    def test_max_attempts_gives_up_with_callback(self):
        policy = RequestPolicy(base_timeout=1.0, jitter=0.0, max_attempts=2)
        sim, transport, manager = build_manager(policy=policy)
        gave_up = []
        manager.request("kind", "q", PEERS, on_give_up=lambda: gave_up.append(1))
        sim.run(until=30.0)
        assert gave_up == [1]
        assert len(transport.envelopes) == 2
        assert sim.metrics.counter("req.gave_up") == 1
        assert manager.pending_count() == 0

    def test_satisfied_resolves_externally_at_timeout(self):
        sim, transport, manager = build_manager(
            policy=RequestPolicy(base_timeout=1.0, jitter=0.0)
        )
        state = {"have": False}
        manager.request("kind", "q", PEERS, satisfied=lambda: state["have"])
        state["have"] = True  # side channel delivered the data
        sim.run(until=5.0)
        assert sim.metrics.counter("req.resolved_externally") == 1
        assert len(transport.envelopes) == 1  # no retry was sent
        assert manager.pending_count() == 0

    def test_dedup_key_suppresses_concurrent_duplicates(self):
        sim, transport, manager = build_manager()
        first = manager.request("kind", "q", PEERS, dedup_key="k")
        assert first is not None and manager.has_pending("k")
        assert manager.request("kind", "q", PEERS, dedup_key="k") is None
        assert sim.metrics.counter("req.deduplicated") == 1
        manager.cancel(first)
        assert not manager.has_pending("k")
        assert manager.request("kind", "q", PEERS, dedup_key="k") is not None

    def test_callable_payload_is_re_evaluated_per_attempt(self):
        sim, transport, manager = build_manager(
            policy=RequestPolicy(base_timeout=1.0, jitter=0.0)
        )
        clock = {"n": 0}

        def payload():
            clock["n"] += 1
            return clock["n"]

        manager.request("kind", payload, PEERS)
        sim.run(until=1.5)
        payloads = [env.payload for _, env in transport.envelopes]
        assert payloads == [1, 2]  # retry carried fresh state, not a snapshot

    def test_empty_peer_list_is_a_noop(self):
        sim, transport, manager = build_manager()
        assert manager.request("kind", "q", ()) is None
        assert transport.sent == []


class TestRotationSpread:
    def test_rotation_base_is_derived_from_owner_crc(self):
        for owner in ("n0", "n1", "node-with-long-name"):
            sim, transport, manager = build_manager(owner=owner)
            manager.request("kind", "q", PEERS)
            expected = PEERS[(zlib.crc32(owner.encode()) & 0xFFFF) % len(PEERS)]
            peer, _ = transport.last_envelope()
            assert peer == expected

    def test_successive_requests_start_at_successive_candidates(self):
        sim, transport, manager = build_manager(owner="n0")
        base = zlib.crc32(b"n0") & 0xFFFF
        for sequence in range(4):
            manager.request("kind", "q", PEERS)
            peer, _ = transport.last_envelope()
            assert peer == PEERS[(base + sequence) % len(PEERS)]

    def test_spread_disabled_always_respects_preference_order(self):
        sim, transport, manager = build_manager(
            policy=RequestPolicy(spread_rotation=False)
        )
        for _ in range(3):
            manager.request("kind", "q", PEERS)
            peer, _ = transport.last_envelope()
            assert peer == "p0"


# -------------------------------------------------- response-side rejection


class TestResponseRejection:
    def pending_envelope(self, manager, transport):
        manager.request("kind", "q", PEERS)
        return transport.last_envelope()

    def test_non_envelope_payloads_are_not_consumed(self):
        sim, transport, manager = build_manager()
        assert manager.on_envelope({"not": "an envelope"}, "p0") is False
        assert manager.on_envelope("text", "p0") is False

    def test_malformed_ids_rejected(self):
        sim, transport, manager = build_manager()
        self.pending_envelope(manager, transport)
        bad = ResponseEnvelope(request_id=7, kind="kind", payload="a", responder="p0")
        assert manager.on_envelope(bad, "p0")
        assert sim.metrics.counter("req.rejected_malformed") == 1
        assert manager.pending_count() == 1  # request unharmed

    def test_unknown_and_replayed_ids_counted_separately(self):
        sim, transport, manager = build_manager()
        peer, envelope = self.pending_envelope(manager, transport)
        unknown = ResponseEnvelope(
            request_id="n0:req:999", kind="kind", payload="a", responder=peer
        )
        assert manager.on_envelope(unknown, peer)
        assert sim.metrics.counter("req.rejected_unknown") == 1
        # Complete the request, then replay the very same id.
        reply(manager, envelope, "a", responder=peer)
        late = ResponseEnvelope(
            request_id=envelope.request_id, kind="kind", payload="a", responder=peer
        )
        assert manager.on_envelope(late, peer)
        assert sim.metrics.counter("req.rejected_replayed") == 1

    def test_wrong_kind_rejected(self):
        sim, transport, manager = build_manager()
        peer, envelope = self.pending_envelope(manager, transport)
        wrong = ResponseEnvelope(
            request_id=envelope.request_id, kind="other", payload="a", responder=peer
        )
        assert manager.on_envelope(wrong, peer)
        assert sim.metrics.counter("req.rejected_malformed") == 1
        assert manager.pending_count() == 1

    def test_response_from_unqueried_peer_rejected(self):
        # Only peers the request was actually sent to may answer it: a
        # bystander (or an adversary racing the honest responder) that
        # guesses the id is rejected and counted.
        sim, transport, manager = build_manager()
        _, envelope = self.pending_envelope(manager, transport)
        forged = ResponseEnvelope(
            request_id=envelope.request_id, kind="kind", payload="evil", responder="p3"
        )
        assert manager.on_envelope(forged, "p3")
        assert sim.metrics.counter("req.rejected_unsolicited") == 1
        assert manager.pending_count() == 1


# ------------------------------------------------- server-side validation


class TestServerValidation:
    def envelope(self, sim, deadline=None, requester="n1", kind="kind"):
        return RequestEnvelope(
            request_id="n1:req:0",
            kind=kind,
            payload="q",
            requester=requester,
            sent_at=sim.now,
            deadline=sim.now + 3.0 if deadline is None else deadline,
        )

    def test_valid_envelope_passes(self):
        sim, transport, manager = build_manager()
        envelope = self.envelope(sim)
        assert manager.validate_request(envelope, "kind", "n1") is envelope

    def test_malformed_and_wrong_kind_rejected(self):
        sim, transport, manager = build_manager()
        assert manager.validate_request("junk", "kind") is None
        assert manager.validate_request(self.envelope(sim, kind="other"), "kind") is None
        assert sim.metrics.counter("req.rejected_malformed") == 2

    def test_misaddressed_envelope_rejected(self):
        # Wire-level sender != claimed requester: answering would ship the
        # response to a third party of the forger's choosing.
        sim, transport, manager = build_manager()
        envelope = self.envelope(sim, requester="victim")
        assert manager.validate_request(envelope, "kind", sender="attacker") is None
        assert sim.metrics.counter("req.rejected_misaddressed") == 1

    def test_expired_envelope_rejected(self):
        sim, transport, manager = build_manager()
        envelope = self.envelope(sim, deadline=1.0)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert manager.validate_request(envelope, "kind", "n1") is None
        assert sim.metrics.counter("req.rejected_expired") == 1

    def test_respond_ships_a_correlated_envelope(self):
        sim, transport, manager = build_manager()
        envelope = self.envelope(sim)
        manager.respond(envelope, "answer", size_bytes=99)
        peer, response, size = transport.sent[-1]
        assert peer == "n1" and size == 99
        assert isinstance(response, ResponseEnvelope)
        assert response.request_id == envelope.request_id
        assert response.responder == "n0"


# ------------------------------------------------------------ fuzz battery


class TestFuzzBattery:
    """Seeded adversarial traffic: nothing crashes, nothing is dispatched."""

    KINDS = ("kind", "other", "", "ae.pull")

    def random_response(self, rng, envelope):
        request_id = rng.choice(
            [envelope.request_id, "n0:req:999", "", 42, None, envelope.request_id * 2]
        )
        kind = rng.choice(list(self.KINDS) + [7, None])
        payload = rng.choice(["x", (), (1, 2), {"a": 1}, None, b"bytes", float("nan")])
        responder = rng.choice(list(PEERS) + ["stranger", ""])
        return (
            ResponseEnvelope(
                request_id=request_id, kind=kind, payload=payload, responder=responder
            ),
            responder,
        )

    def test_hostile_response_storm_never_completes_a_request(self):
        rng = random.Random(1234)
        sim, transport, manager = build_manager(
            policy=RequestPolicy(spread_rotation=False)
        )
        manager.request("kind", "q", PEERS, on_response=lambda p, r: "ok")
        queried_peer, envelope = transport.last_envelope()
        for _ in range(500):
            response, sender = self.random_response(rng, envelope)
            # The only accepting combination is the real id + real kind
            # from the one queried peer; skip it so everything must bounce.
            if (
                response.request_id == envelope.request_id
                and response.kind == envelope.kind
                and sender == queried_peer
            ):
                continue
            assert manager.on_envelope(response, sender) is True
        assert manager.pending_count() == 1  # still pending, never completed
        assert sim.metrics.counter("req.completed") == 0
        rejected = sum(
            sim.metrics.counter(f"req.rejected_{reason}")
            for reason in ("malformed", "unknown", "replayed", "unsolicited")
        )
        assert rejected > 0
        # The honest reply still lands after the storm.
        assert reply(manager, envelope, "real", responder=queried_peer)
        assert sim.metrics.counter("req.completed") == 1

    def test_hostile_request_storm_never_validates(self):
        rng = random.Random(99)
        sim, transport, manager = build_manager()
        accepted = 0
        for _ in range(300):
            shape = rng.randrange(4)
            if shape == 0:
                candidate = rng.choice(["junk", 7, None, (), {"kind": "kind"}])
                sender = "n1"
            else:
                requester = rng.choice(["n1", "forged", ""])
                candidate = RequestEnvelope(
                    request_id=rng.choice(["n1:req:0", 3, ""]),
                    kind=rng.choice(list(self.KINDS)),
                    payload="q",
                    requester=requester,
                    sent_at=sim.now,
                    deadline=rng.choice([sim.now + 3.0, sim.now - 1.0]),
                )
                sender = rng.choice(["n1", "forged"])
            result = manager.validate_request(candidate, "kind", sender)
            if result is not None:
                accepted += 1
                assert isinstance(result, RequestEnvelope)
                assert result.kind == "kind"
                assert result.requester == sender
                assert result.deadline >= sim.now
        rejections = sum(
            sim.metrics.counter(f"req.rejected_{reason}")
            for reason in ("malformed", "misaddressed", "expired")
        )
        assert accepted + rejections == 300

    def test_fuzzed_managers_are_seed_deterministic(self):
        def run(seed):
            rng = random.Random(seed)
            sim, transport, manager = build_manager()
            manager.request(
                "kind", "q", PEERS, policy=RequestPolicy(base_timeout=1.0, max_attempts=4)
            )
            for _ in range(100):
                _, envelope = transport.last_envelope()
                response, sender = self.random_response(rng, envelope)
                manager.on_envelope(response, sender)
                sim.run(until=sim.now + rng.random())
            return dict(sim.metrics.counters)

        assert run(7) == run(7)


# ---------------------------------------------------------- jittered backoff


class TestJitteredBackoff:
    def test_attempt_gates_until_delay_elapses(self):
        sim = Simulator(seed=3)
        backoff = JitteredBackoff(sim, "b", base=2.0, jitter=0.0)
        assert backoff.attempt("k")
        assert not backoff.attempt("k")
        assert not backoff.ready("k")
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert backoff.ready("k")
        assert backoff.attempt("k")

    def test_delays_grow_by_factor_and_cap(self):
        sim = Simulator(seed=3)
        backoff = JitteredBackoff(
            sim, "b", base=2.0, factor=2.0, jitter=0.0, max_delay=5.0
        )
        backoff.attempt("k")
        assert backoff._state["k"][0] == pytest.approx(2.0)
        sim.schedule(2.0, lambda: None)
        sim.run()
        backoff.attempt("k")
        assert backoff._state["k"][0] == pytest.approx(2.0 + 4.0)
        sim.schedule(4.0, lambda: None)
        sim.run()
        backoff.attempt("k")
        assert backoff._state["k"][0] == pytest.approx(6.0 + 5.0)  # capped

    def test_zero_jitter_draws_no_rng(self):
        sim = Simulator(seed=3)
        backoff = JitteredBackoff(sim, "b", base=2.0, jitter=0.0)
        backoff.attempt("k")
        assert backoff._rng is None

    def test_reset_forgets_and_prune_filters(self):
        sim = Simulator(seed=3)
        backoff = JitteredBackoff(sim, "b", base=2.0, jitter=0.0)
        backoff.attempt("k")
        backoff.reset("k")
        assert backoff.attempt("k")  # immediately allowed again
        backoff.attempt("other")
        backoff.prune(lambda key: key == "other")
        assert "other" not in backoff._state and "k" in backoff._state
