"""Applying fault plans to a running cluster: the fault *control plane*.

:class:`FaultController` turns a declarative :class:`~repro.faults.plan.
FaultPlan` into scheduled simulator events against an
:class:`~repro.core.cluster.AtumCluster`:

* partitions form and heal at their configured times — per-node isolation
  through the network's partition machinery, side-preserving splits through
  its ``split``/``merge`` side-aware routing;
* link faults install a :class:`~repro.faults.injector.LinkFaultInjector`
  on the network;
* group slowdowns install a ``cost_perturbation`` hook on the membership
  engine, stretching straggler vgroups' operation durations;
* node faults flip node behaviours on schedule — crash (+ recovery), silent,
  mute, the §6.1.3 evict-proposing adversary (periodic eviction proposals
  against correct vgroup peers, driven here because a heartbeat-only node
  has no protocol activity of its own to hang a timer on), and equivocating
  broadcasters.

All control-plane randomness (victim choice of the eviction attack) comes
from the ``faults.control`` stream of the simulation's seeded registry.
Applying an **empty plan schedules nothing and installs nothing**, keeping
runs byte-identical to unfaulted ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.middleware import MiddlewareChain
from repro.faults.injector import LinkFaultInjector
from repro.faults.plan import FaultPlan, NodeFault
from repro.overlay.membership import MembershipError


class FaultController:
    """Schedules and executes one fault plan against one cluster."""

    def __init__(self, cluster, plan: FaultPlan, monitor=None) -> None:
        self.cluster = cluster
        self.plan = plan
        self.monitor = monitor
        self.injector: Optional[LinkFaultInjector] = None
        self._installed = False
        # Node faults currently in effect per address, in start order.  When
        # a windowed fault ends, the most recently started fault still
        # active takes over (or the node recovers if none remains), so
        # composed per-address faults — nested or partially overlapping
        # windows, a permanent behaviour under a crash-recover window — do
        # not erase each other.
        self._active_faults: Dict[str, List[NodeFault]] = {}
        # Attack timers self-reschedule until their fault's stop time even
        # while the behaviour is temporarily displaced, so each evict_attack
        # or rejoin_attack fault gets exactly one timer chain.
        self._attacks_started: set = set()
        # The join-leave coalition: every rejoin_attack address of the plan
        # (computed once; the attack coordinates across the whole coalition).
        self._rejoin_coalition: List[str] = sorted(
            {nf.address for nf in plan.nodes if nf.behaviour == "rejoin_attack"}
        )

    def install(self) -> "FaultController":
        """Schedule every fault of the plan; idempotent, returns ``self``."""
        if self._installed or self.plan.is_empty():
            self._installed = True
            return self
        self._installed = True
        cluster = self.cluster
        sim = cluster.sim
        if self.monitor is not None:
            self.monitor.exempt(self.plan.faulted_addresses())

        partitions = self.plan.partitions
        for partition in partitions:
            if partition.is_side_preserving:
                # Side-preserving splits are tracked by id on the network, so
                # forming and healing are exact regardless of overlaps with
                # other partitions.
                handle: Dict[str, int] = {}

                # Clusters route splits through their split-brain
                # coordinator (per-side membership directories + merge
                # reconciliation); bare network harnesses fall back to the
                # network-level machinery.
                split_fn = getattr(cluster, "split", None) or cluster.network.split
                merge_fn = getattr(cluster, "merge", None) or cluster.network.merge

                def form_split(
                    partition=partition, handle=handle, split_fn=split_fn
                ) -> None:
                    handle["id"] = split_fn(partition.sides)
                    sim.metrics.increment("faults.partitions_formed")

                self._at(partition.start, form_split, tag="faults.partition")
                if partition.heal_at is not None:

                    def heal_split(handle=handle, merge_fn=merge_fn) -> None:
                        split_id = handle.pop("id", None)
                        if split_id is not None:
                            merge_fn(split_id)
                        sim.metrics.increment("faults.partitions_healed")

                    self._at(partition.heal_at, heal_split, tag="faults.heal")
                continue
            members = partition.members

            def form(members=members) -> None:
                cluster.network.partition(members)
                sim.metrics.increment("faults.partitions_formed")

            self._at(partition.start, form, tag="faults.partition")
            if partition.heal_at is not None:

                def heal(partition=partition) -> None:
                    # Composed plans may cover an address with several
                    # overlapping partitions; healing one must not release
                    # addresses another still-active partition isolates.
                    now = sim.now
                    still_covered = set()
                    for other in partitions:
                        if other is partition or other.is_side_preserving:
                            continue
                        if other.start <= now and (
                            other.heal_at is None or now < other.heal_at
                        ):
                            still_covered.update(other.members)
                    to_heal = [m for m in partition.members if m not in still_covered]
                    if to_heal:
                        cluster.network.heal(to_heal)
                    sim.metrics.increment("faults.partitions_healed")

                self._at(partition.heal_at, heal, tag="faults.heal")

        if self.plan.links:
            self.injector = LinkFaultInjector(sim, self.plan.links)
            chain_fn = getattr(cluster, "middleware_chain", None)
            if chain_fn is not None:
                chain_fn().add(self.injector)
            else:
                # Bare harness: a Network stand-in without the cluster-level
                # pipeline gets a network-only chain.
                cluster.network.install_middleware(
                    MiddlewareChain(self.injector, scenario="link-faults")
                )

        if self.plan.slowdowns:
            self._install_slowdowns()

        for node_fault in self.plan.nodes:
            self._at(
                node_fault.start,
                lambda nf=node_fault: self._start_behaviour(nf),
                tag="faults.node",
            )
            if node_fault.stop is not None:
                self._at(
                    node_fault.stop,
                    lambda nf=node_fault: self._stop_behaviour(nf),
                    tag="faults.recover",
                )
        return self

    # -------------------------------------------------------------- slowdowns

    def _install_slowdowns(self) -> None:
        """Install the straggler-vgroup hook on the membership engine.

        Composes every applicable :class:`~repro.faults.plan.GroupSlowdown`
        multiplicatively per reservation and observes the added latency as
        ``membership.slowdown_penalty`` (the matrix reports its mean/max as
        the straggler-induced operation-latency penalty).  Chains any
        pre-existing hook rather than replacing it.
        """
        engine = self.cluster.engine
        sim = self.cluster.sim
        slowdowns = self.plan.slowdowns
        inner = engine.cost_perturbation

        def perturb(group_id: str, duration: float) -> float:
            if inner is not None:
                duration = inner(group_id, duration)
            factor = 1.0
            for slowdown in slowdowns:
                if slowdown.applies(group_id, sim.now):
                    factor *= slowdown.factor
            if factor > 1.0:
                penalty = duration * (factor - 1.0)
                sim.metrics.observe("membership.slowdown_penalty", penalty)
                return duration * factor
            return duration

        engine.cost_perturbation = perturb

    # ------------------------------------------------------------- behaviours

    def _start_behaviour(self, node_fault: NodeFault) -> None:
        cluster = self.cluster
        address = node_fault.address
        node = cluster.nodes.get(address)
        if node is None:
            return
        cluster.sim.metrics.increment(
            f"faults.behaviour_{node_fault.behaviour}_started"
        )
        self._active_faults.setdefault(address, []).append(node_fault)
        self._apply_behaviour(node_fault)

    def _stop_behaviour(self, node_fault: NodeFault) -> None:
        cluster = self.cluster
        address = node_fault.address
        node = cluster.nodes.get(address)
        if node is None:
            return
        cluster.sim.metrics.increment(
            f"faults.behaviour_{node_fault.behaviour}_stopped"
        )
        active = self._active_faults.get(address, [])
        if node_fault in active:
            active.remove(node_fault)
        cluster.recover(address)
        if active:
            # Another fault still covers this address: the most recently
            # started one takes over instead of leaving the node correct.
            self._apply_behaviour(active[-1])

    def _apply_behaviour(self, node_fault: NodeFault) -> None:
        cluster = self.cluster
        behaviour = node_fault.behaviour
        if behaviour == "crash" or behaviour == "mute":
            # Both mean "completely unresponsive": byzantine='mute' plus a
            # stopped heartbeat monitor, so liveness detection can evict the
            # node.  They differ only in intent (crash windows recover).
            cluster.crash(node_fault.address)
            return
        node = cluster.nodes.get(node_fault.address)
        if node is not None:
            node.byzantine = behaviour
        if behaviour == "evict_attack" and node_fault not in self._attacks_started:
            self._attacks_started.add(node_fault)
            self._schedule_attack(node_fault)
        if behaviour == "rejoin_attack" and node_fault not in self._attacks_started:
            self._attacks_started.add(node_fault)
            self._schedule_rejoin(node_fault)

    # --------------------------------------------------------- eviction attack

    def _schedule_attack(self, node_fault: NodeFault) -> None:
        self.cluster.sim.schedule(
            node_fault.attack_period,
            lambda: self._attack_tick(node_fault),
            tag="faults.evict_attack",
        )

    def _attack_tick(self, node_fault: NodeFault) -> None:
        """One eviction proposal by the §6.1.3 adversary against a correct peer.

        The attacker reports a deterministic rotation of its correct vgroup
        peers as "suspected".  Because an eviction needs majority suspicion
        inside the vgroup, a Byzantine minority's proposals never pass — the
        invariant monitor flags it immediately if one ever does.
        """
        cluster = self.cluster
        attacker = cluster.nodes.get(node_fault.address)
        if attacker is None:
            return
        if node_fault.stop is not None and cluster.sim.now >= node_fault.stop:
            return
        view = attacker.vgroup_view
        # Propose only while the attack behaviour is actually active (another
        # windowed fault, e.g. a crash, may have temporarily displaced it);
        # the timer itself keeps running until the fault's stop time.
        if attacker.byzantine == "evict_attack" and view is not None:
            victims = [
                member
                for member in view.members
                if member != attacker.address
                and (cluster.nodes.get(member) is None or cluster.nodes[member].is_correct)
            ]
            if victims:
                tick = int(cluster.sim.now / node_fault.attack_period)
                victim = victims[tick % len(victims)]
                cluster.sim.metrics.increment("faults.evictions_proposed_by_byzantine")
                cluster.request_eviction(victim, suspected_by=attacker.address)
        self._schedule_attack(node_fault)

    # -------------------------------------------------------- join-leave attack

    def _schedule_rejoin(self, node_fault: NodeFault) -> None:
        self.cluster.sim.schedule(
            node_fault.attack_period,
            lambda: self._rejoin_tick(node_fault),
            tag="faults.rejoin_attack",
        )

    def _coalition_placement(self) -> Dict[str, int]:
        """Coalition members per current vgroup (groups with none omitted)."""
        placement: Dict[str, int] = {}
        node_group = self.cluster.engine.node_group
        for address in self._rejoin_coalition:
            group_id = node_group.get(address)
            if group_id is not None:
                placement[group_id] = placement.get(group_id, 0) + 1
        return placement

    def _observe_concentration(self) -> None:
        """Record the worst per-vgroup coalition concentration right now.

        Two histograms, both over the per-tick worst vgroup:

        * ``faults.rejoin_group_fraction`` — coalition members / group size
          (reporting);
        * ``faults.rejoin_threshold_excess`` — coalition members minus the
          group's eviction/agreement threshold ``(size - 1) // 2`` (the
          strict-minority bound every defence rests on).  The attack *fails*
          as long as the maximum stays ≤ 0: the coalition never outgrew a
          strict minority of any vgroup, so group-message majorities, SMR
          quorums and eviction votes all hold.
        """
        groups = self.cluster.engine.groups
        placement = self._coalition_placement()
        worst_fraction = 0.0
        worst_excess = -float(
            max((view.size for view in groups.values()), default=1)
        )
        for group_id, count in placement.items():
            view = groups.get(group_id)
            if view is not None and view.size > 0:
                worst_fraction = max(worst_fraction, count / view.size)
                worst_excess = max(worst_excess, count - (view.size - 1) // 2)
        metrics = self.cluster.sim.metrics
        metrics.observe("faults.rejoin_group_fraction", worst_fraction)
        metrics.observe("faults.rejoin_threshold_excess", worst_excess)

    def _rejoin_tick(self, node_fault: NodeFault) -> None:
        """One strategic move of the §3.2 join-leave adversary.

        The coalition's strategy: pick the vgroup already holding the most
        coalition members as the *target* and funnel everyone else towards
        it by leaving and re-joining (a re-join is placed by a fresh random
        walk — exactly the die the attacker keeps re-rolling).  Misplaced
        members move concurrently — the most aggressive schedule — but
        each waits out its own in-flight membership operation, so a member
        churns at most one operation per completed move rather than one
        per tick, keeping the run a placement-quality measurement instead
        of an engine-backlog storm.
        """
        cluster = self.cluster
        now = cluster.sim.now
        if node_fault.stop is not None and now >= node_fault.stop:
            return
        self._schedule_rejoin(node_fault)
        node = cluster.nodes.get(node_fault.address)
        if node is None or node.byzantine != "rejoin_attack":
            return  # temporarily displaced by another fault; timer keeps running
        coalition = self._rejoin_coalition
        if node_fault.address == coalition[0]:
            # One designated observer per tick round records concentration.
            self._observe_concentration()
        address = node_fault.address
        engine = cluster.engine
        if engine.has_pending_operation(address):
            return  # a leave or re-join of this attacker is still running
        if address not in engine.node_group:
            # Out of the system (left last move, or the join aborted against
            # a busy contact vgroup): re-join through the ordinary protocol —
            # placement is the engine's random walk, which is the whole
            # point of the attack — and retry every tick until it lands.
            try:
                cluster.join(address)
                cluster.sim.metrics.increment("faults.rejoin_joins")
            except MembershipError:
                # The identity is still blocked (e.g. its eviction has not
                # finished); the next tick retries.  Counted so a plan whose
                # rejoins never land is visible in the metrics.
                cluster.sim.metrics.increment("faults.rejoin_join_failed")
            return
        placement = self._coalition_placement()
        if not placement:
            return
        # The rally point: the vgroup already holding the most coalition
        # members (ties break deterministically), even from an all-equal
        # start — consolidating on *some* group is the whole attack, and
        # each re-join re-rolls the random-walk die hoping to land there.
        target = min(
            group_id
            for group_id, count in placement.items()
            if count == max(placement.values())
        )
        if engine.node_group[address] == target:
            return
        try:
            cluster.leave(address)
            cluster.sim.metrics.increment("faults.rejoin_leaves")
        except MembershipError:
            # A concurrent operation owns the address right now; the next
            # tick retries.
            cluster.sim.metrics.increment("faults.rejoin_leave_failed")

    # ----------------------------------------------------------------- helpers

    def _at(self, time: float, callback, tag: str) -> None:
        sim = self.cluster.sim
        sim.schedule_at(max(time, sim.now), callback, tag=tag)


def apply_plan(cluster, plan: FaultPlan, monitor=None) -> FaultController:
    """Convenience wrapper: build and install a controller for ``plan``."""
    return FaultController(cluster, plan, monitor=monitor).install()


__all__ = ["FaultController", "apply_plan"]
