"""Empirical CDFs and latency summaries (used for Figure 8-style results)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def empirical_cdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Return the empirical CDF of ``samples`` as sorted (value, fraction) pairs."""
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples at or below ``threshold``."""
    if not samples:
        return 0.0
    return sum(1 for sample in samples if sample <= threshold) / len(samples)


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``samples`` (p in [0, 100])."""
    if not samples:
        return math.nan
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    """A compact latency summary: count, mean, median, p90, p99, max."""
    if not samples:
        return {"count": 0, "mean": math.nan, "median": math.nan, "p90": math.nan,
                "p99": math.nan, "max": math.nan}
    return {
        "count": float(len(samples)),
        "mean": sum(samples) / len(samples),
        "median": percentile(samples, 50),
        "p90": percentile(samples, 90),
        "p99": percentile(samples, 99),
        "max": max(samples),
    }


def cdf_at_thresholds(
    samples: Sequence[float], thresholds: Iterable[float]
) -> List[Tuple[float, float]]:
    """Evaluate the empirical CDF at the given thresholds (for plotting rows)."""
    return [(threshold, fraction_below(samples, threshold)) for threshold in thresholds]


__all__ = [
    "empirical_cdf",
    "fraction_below",
    "percentile",
    "latency_summary",
    "cdf_at_thresholds",
]
