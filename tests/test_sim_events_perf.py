"""Micro-coverage for the tuple-heap event queue and a gross perf floor."""

import time

from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator


class TestTupleHeapOrdering:
    def test_equal_timestamps_pop_in_push_order(self):
        queue = EventQueue()
        events = [queue.push(5.0, lambda: None, tag=f"e{i}") for i in range(100)]
        popped = []
        while (event := queue.pop()) is not None:
            popped.append(event)
        assert popped == events

    def test_equal_time_priority_orders_before_seq(self):
        queue = EventQueue()
        low = queue.push(1.0, lambda: None, priority=9, tag="low")
        high = queue.push(1.0, lambda: None, priority=-1, tag="high")
        mid = queue.push(1.0, lambda: None, priority=0, tag="mid")
        order = [queue.pop().tag for _ in range(3)]
        assert order == ["high", "mid", "low"]
        assert low.seq < high.seq < mid.seq  # seq reflects push order, not pop order

    def test_interleaved_times_and_priorities(self):
        queue = EventQueue()
        spec = [(2.0, 0), (1.0, 5), (1.0, 0), (3.0, -2), (1.0, 5), (2.0, -1)]
        for index, (t, priority) in enumerate(spec):
            queue.push(t, lambda: None, priority=priority, tag=str(index))
        popped = []
        while (event := queue.pop()) is not None:
            popped.append((event.time, event.priority, event.seq))
        assert popped == sorted(popped)

    def test_event_handles_have_slots(self):
        event = EventQueue().push(1.0, lambda: None)
        assert not hasattr(event, "__dict__")
        assert isinstance(event, Event)

    def test_event_lt_matches_heap_order(self):
        a = Event(1.0, 0, 0, lambda: None)
        b = Event(1.0, 0, 1, lambda: None)
        c = Event(0.5, 9, 2, lambda: None)
        assert a < b
        assert c < a


class TestCancellation:
    def test_cancellation_during_drain(self):
        """Events cancelled from a callback mid-drain never fire."""
        sim = Simulator()
        fired = []
        victims = []

        def arm(name, delay):
            victims.append(sim.schedule(delay, lambda: fired.append(name)))

        # First event cancels two of four later events while the queue drains.
        arm("a", 2.0)
        arm("b", 3.0)
        arm("c", 4.0)
        arm("d", 5.0)
        sim.schedule(1.0, lambda: (sim.cancel(victims[1]), sim.cancel(victims[3])))
        sim.run()
        assert fired == ["a", "c"]

    def test_cancel_is_idempotent_and_len_stays_consistent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert len(sim.queue) == 2
        sim.cancel(event)
        sim.cancel(event)
        assert len(sim.queue) == 1
        sim.run()
        assert len(sim.queue) == 0

    def test_cancelled_root_is_skipped_by_peek(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        queue.notify_cancelled()
        assert queue.peek_time() == 2.0
        assert len(queue) == 1

    def test_clear_empties_heap(self):
        queue = EventQueue()
        for i in range(10):
            queue.push(float(i), lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None


class TestRunLimits:
    def test_negative_max_events_stops_immediately(self):
        """Historical semantics: a depleted (negative) budget processes nothing."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run(max_events=-1)
        assert fired == []
        sim.run(max_events=0)
        assert fired == []
        sim.run()
        assert fired == [1]


class TestThroughputFloor:
    def test_events_per_second_floor(self):
        """Generous floor so gross kernel regressions fail fast.

        The optimised kernel sustains ~700k events/sec on the reference
        container; 60k leaves an order-of-magnitude margin for slow CI hosts.
        """
        sim = Simulator(seed=3)
        count = 30_000
        state = {"left": count}

        def tick():
            if state["left"] > 0:
                state["left"] -= 1
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        start = time.perf_counter()
        sim.run_until_idle()
        elapsed = time.perf_counter() - start
        assert sim.processed_events == count + 1
        assert count / elapsed > 60_000
