"""The configuration guideline of Figure 4.

The paper derives, by simulation, the minimal random-walk length ``rwl`` such
that a Pearson chi-square test at confidence level 0.99 cannot distinguish the
distribution of walk end-points from a uniform distribution over the vgroups,
for a given number of vgroups and H-graph cycles ``hc``.  This module
reproduces that simulation and exposes the resulting guideline, which the rest
of the library uses to configure ``rwl`` and ``hc`` for a target system size.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from scipy import stats

from repro.overlay.hgraph import HGraph
from repro.overlay.random_walk import structural_walk
from repro.sim.rng import named_stream

#: Number of walk samples per chi-square test (per start vertex batch).
DEFAULT_SAMPLES_PER_GROUP = 30

#: Significance level of the paper's test (confidence level 0.99).
DEFAULT_ALPHA = 0.01


def uniformity_pvalue(
    num_groups: int,
    hc: int,
    rwl: int,
    rng: random.Random,
    samples_per_group: int = DEFAULT_SAMPLES_PER_GROUP,
) -> float:
    """Chi-square p-value that walk end-points are uniform over the vgroups.

    Builds a random H-graph with ``num_groups`` vertices and ``hc`` cycles,
    runs ``samples_per_group * num_groups`` walks of length ``rwl`` from a
    fixed start vertex, and tests the end-point counts against the uniform
    distribution.  A *high* p-value means the test cannot distinguish the
    sample from uniform (the desired outcome).
    """
    vertices = [f"g{i}" for i in range(num_groups)]
    graph = HGraph.random(vertices, hc, rng)
    total_samples = samples_per_group * num_groups
    counts: Counter = Counter()
    start = vertices[0]
    for _ in range(total_samples):
        outcome = structural_walk(graph, start, rwl, rng)
        counts[outcome.selected] += 1
    observed = [counts.get(vertex, 0) for vertex in vertices]
    result = stats.chisquare(observed)
    return float(result.pvalue)


def is_uniform(
    num_groups: int,
    hc: int,
    rwl: int,
    rng: random.Random,
    alpha: float = DEFAULT_ALPHA,
    samples_per_group: int = DEFAULT_SAMPLES_PER_GROUP,
    trials: int = 3,
) -> bool:
    """Whether walks of length ``rwl`` pass the uniformity test.

    The test is repeated ``trials`` times on independent graphs; the median
    outcome is used, which makes the guideline robust to unlucky graphs.
    """
    passes = 0
    for _ in range(trials):
        pvalue = uniformity_pvalue(num_groups, hc, rwl, rng, samples_per_group)
        if pvalue > alpha:
            passes += 1
    return passes * 2 > trials


def optimal_walk_length(
    num_groups: int,
    hc: int,
    rng: Optional[random.Random] = None,
    max_rwl: int = 30,
    alpha: float = DEFAULT_ALPHA,
    samples_per_group: int = DEFAULT_SAMPLES_PER_GROUP,
    trials: int = 3,
) -> int:
    """The smallest ``rwl`` whose end-point distribution passes the test.

    This is the quantity plotted on the y-axis of Figure 4.
    """
    rng = rng or named_stream("overlay.guideline.optimal_walk_length")
    for rwl in range(1, max_rwl + 1):
        if is_uniform(num_groups, hc, rwl, rng, alpha, samples_per_group, trials):
            return rwl
    return max_rwl


def guideline_table(
    group_counts: Sequence[int] = (8, 32, 128, 512, 2048, 8192),
    cycle_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    rng: Optional[random.Random] = None,
    samples_per_group: int = DEFAULT_SAMPLES_PER_GROUP,
    trials: int = 1,
    max_rwl: int = 30,
) -> Dict[int, Dict[int, int]]:
    """Compute the full Figure 4 guideline: ``{num_groups: {hc: optimal rwl}}``."""
    rng = rng or named_stream("overlay.guideline.table")
    table: Dict[int, Dict[int, int]] = {}
    for num_groups in group_counts:
        table[num_groups] = {}
        for hc in cycle_counts:
            table[num_groups][hc] = optimal_walk_length(
                num_groups,
                hc,
                rng,
                max_rwl=max_rwl,
                samples_per_group=samples_per_group,
                trials=trials,
            )
    return table


@dataclass(frozen=True)
class RecommendedConfig:
    """An (hc, rwl) pair recommended for a target number of vgroups."""

    hc: int
    rwl: int


#: Pre-computed guideline derived from the paper's Figure 4 (used as defaults
#: so that configuring a cluster does not require re-running the simulation).
#: Keys are *approximate numbers of vgroups*; the closest key is used.
PAPER_GUIDELINE: Dict[int, RecommendedConfig] = {
    8: RecommendedConfig(hc=3, rwl=6),
    32: RecommendedConfig(hc=4, rwl=7),
    128: RecommendedConfig(hc=6, rwl=9),
    512: RecommendedConfig(hc=6, rwl=10),
    2048: RecommendedConfig(hc=8, rwl=11),
    8192: RecommendedConfig(hc=8, rwl=13),
}


def recommended_config(expected_groups: int) -> RecommendedConfig:
    """The (hc, rwl) recommendation for an expected number of vgroups.

    Mirrors the paper's examples, e.g. roughly 128 vgroups -> ``rwl = 9`` with
    ``hc = 6`` (section 3.2), and 800 nodes in roughly 120 vgroups ->
    ``(hc, rwl) = (5, 10)`` (section 6.1.1) which falls between the 128- and
    512-group rows of the guideline.
    """
    keys = sorted(PAPER_GUIDELINE)
    best = min(keys, key=lambda key: abs(key - max(1, expected_groups)))
    return PAPER_GUIDELINE[best]


__all__ = [
    "uniformity_pvalue",
    "is_uniform",
    "optimal_walk_length",
    "guideline_table",
    "RecommendedConfig",
    "PAPER_GUIDELINE",
    "recommended_config",
    "DEFAULT_ALPHA",
    "DEFAULT_SAMPLES_PER_GROUP",
]
