"""Sharded parallel scenario runner: fan seeded simulations across cores.

Scenario sweeps (the paper figures, parameter scans, robustness grids) are
embarrassingly parallel: every shard is an independent, seeded simulation.
This module fans a list of seeds across worker processes and merges the
per-shard metric snapshots **deterministically** — results depend only on the
seeds and the scenario, never on worker count or completion order:

* shards are dispatched with ``Pool.map``, whose results come back in input
  order, and merged in that order;
* counters are summed and histogram samples concatenated in seed order, so
  float accumulation order is fixed;
* the default start method is ``fork`` where available, so workers inherit
  the parent interpreter's hash salt — a shard computes bit-identical results
  inline, in a forked worker, or under ``workers=1``.

A shard function must be **picklable** (a module-level function) and return a
plain-dict snapshot::

    {"counters": {name: float}, "histograms": {name: [samples...]}}

:mod:`repro.sim.protocol_perf` provides ready-made shards
(``broadcast_shard``, ``churn_shard``); ``benchmarks/bench_protocol_speed.py``
and the determinism tests drive them through :func:`run_sharded`.

Knobs
-----

* ``workers`` — worker process count; ``None`` reads ``ATUM_RUNPAR_WORKERS``
  and falls back to ``os.cpu_count()``.  ``workers<=1`` (or a single shard)
  runs serially in-process, with no multiprocessing dependency.
* shard seeding — each shard receives one seed from ``seeds``; derive
  disjoint streams inside the scenario via :func:`repro.sim.rng.derive_seed`.
"""

from __future__ import annotations

import os
from importlib import import_module
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.metrics import Histogram

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "ATUM_RUNPAR_WORKERS"

ShardResult = Dict[str, Any]


def resolve_target(target: "str | Callable[..., ShardResult]") -> Callable[..., ShardResult]:
    """Resolve a shard function from a ``"module:function"`` path (or pass through)."""
    if callable(target):
        return target
    module_name, _, attr = target.partition(":")
    if not attr:
        raise ValueError(f"shard target {target!r} must look like 'module:function'")
    fn = getattr(import_module(module_name), attr)
    if not callable(fn):
        raise TypeError(f"shard target {target!r} is not callable")
    return fn


def _target_path(target: "str | Callable[..., ShardResult]") -> Optional[str]:
    """Importable ``module:function`` path of ``target``, or ``None``.

    ``None`` means the callable cannot be re-imported by a worker process
    (lambda, nested function, ``functools.partial``, methods); such targets
    still work, but only serially.
    """
    if isinstance(target, str):
        return target
    module = getattr(target, "__module__", None)
    qualname = getattr(target, "__qualname__", None)
    if not module or not qualname or "." in qualname or "<" in qualname:
        return None
    return f"{module}:{qualname}"


def _run_shard(job: Tuple[str, int, Dict[str, Any]]) -> ShardResult:
    """Worker entry point: resolve the target by path and run one seed."""
    target_path, seed, kwargs = job
    return resolve_target(target_path)(seed, **kwargs)


def default_workers() -> int:
    """Worker count from ``ATUM_RUNPAR_WORKERS``, else ``os.cpu_count()``."""
    raw = os.environ.get(WORKERS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def run_sharded(
    target: "str | Callable[..., ShardResult]",
    seeds: Sequence[int],
    workers: Optional[int] = None,
    kwargs: Optional[Dict[str, Any]] = None,
) -> List[ShardResult]:
    """Run ``target(seed, **kwargs)`` for every seed; results in seed order.

    With ``workers > 1`` shards run in a multiprocessing pool (``fork`` start
    method where available, so workers share the parent's hash salt); the
    returned list order is always the input seed order regardless of which
    worker finished first.
    """
    kwargs = kwargs or {}
    seeds = list(seeds)
    if workers is None:
        workers = default_workers()
    workers = min(workers, len(seeds)) if seeds else 1
    # Callables that workers cannot re-import (lambdas, partials, nested
    # functions) degrade to a serial run instead of crashing the pool.
    target_path = _target_path(target)
    if workers <= 1 or len(seeds) <= 1 or target_path is None:
        fn = resolve_target(target)
        return [fn(seed, **kwargs) for seed in seeds]

    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    context = mp.get_context("fork" if "fork" in methods else "spawn")
    jobs = [(target_path, seed, kwargs) for seed in seeds]
    with context.Pool(processes=workers) as pool:
        return pool.map(_run_shard, jobs)


def merge_shards(results: Iterable[ShardResult]) -> ShardResult:
    """Deterministically merge shard snapshots (in the given order).

    Counters are summed and histogram samples concatenated in iteration
    order, so the merged result is bit-identical however the shards were
    computed.  The merged ``histograms`` values are :class:`Histogram`
    instances ready for ``mean``/``percentile``/``cdf`` queries.
    """
    counters: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}
    shards = 0
    for result in results:
        shards += 1
        for name, value in result.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, samples in result.get("histograms", {}).items():
            histogram = histograms.get(name)
            if histogram is None:
                histogram = histograms[name] = Histogram()
            histogram.samples.extend(samples)
    return {"shards": shards, "counters": counters, "histograms": histograms}


def run_and_merge(
    target: "str | Callable[..., ShardResult]",
    seeds: Sequence[int],
    workers: Optional[int] = None,
    kwargs: Optional[Dict[str, Any]] = None,
) -> ShardResult:
    """Convenience wrapper: :func:`run_sharded` then :func:`merge_shards`."""
    return merge_shards(run_sharded(target, seeds, workers=workers, kwargs=kwargs))


def main(argv: Optional[Sequence[str]] = None) -> None:  # pragma: no cover - CLI
    """CLI: ``python -m repro.sim.runpar --scenario broadcast --shards 4``."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        default="broadcast",
        choices=("broadcast", "churn"),
        help="which repro.sim.protocol_perf shard to fan out",
    )
    parser.add_argument("--shards", type=int, default=4, help="number of seeded shards")
    parser.add_argument("--base-seed", type=int, default=7, help="seed of the first shard")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=f"worker processes (default: ${WORKERS_ENV} or cpu count)",
    )
    args = parser.parse_args(argv)
    target = f"repro.sim.protocol_perf:{args.scenario}_shard"
    seeds = [args.base_seed + index for index in range(args.shards)]
    merged = run_and_merge(target, seeds, workers=args.workers)
    printable = {
        "shards": merged["shards"],
        "counters": merged["counters"],
        "histograms": {
            name: {
                "count": histogram.count,
                "mean": histogram.mean,
                "p99": histogram.percentile(99),
            }
            for name, histogram in merged["histograms"].items()
        },
    }
    print(json.dumps(printable, indent=2, sort_keys=True))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "WORKERS_ENV",
    "ShardResult",
    "resolve_target",
    "default_workers",
    "run_sharded",
    "merge_shards",
    "run_and_merge",
]
