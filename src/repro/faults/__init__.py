"""Composable fault injection and runtime invariant checking.

Atum's core claims are robustness claims; this package makes adversity a
first-class, composable layer instead of ad-hoc per-experiment code:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan` schema
  (partitions with heal times, per-link loss/duplication/delay spikes,
  node-behaviour faults);
* :mod:`repro.faults.injector` — the network-level injector consulted by
  :class:`repro.net.network.Network` per routed message;
* :mod:`repro.faults.behaviours` — the control plane applying a plan to an
  :class:`~repro.core.cluster.AtumCluster` (crash-recover, silent,
  evict-attacking and equivocating nodes);
* :mod:`repro.faults.invariants` — the runtime :class:`InvariantMonitor`
  asserting the paper's safety invariants while a scenario runs;
* :mod:`repro.faults.scenarios` — the plan × workload matrix driver fanned
  out over :mod:`repro.sim.runpar`.

Determinism contract: plans execute off dedicated seeded RNG streams, and an
empty plan installs nothing — golden traces stay byte-identical.
"""

from repro.faults.plan import FaultPlan, LinkFault, NodeFault, Partition, NODE_BEHAVIOURS
from repro.faults.injector import LinkFaultInjector, install_link_faults
from repro.faults.behaviours import FaultController, apply_plan
from repro.faults.invariants import (
    InvariantConfig,
    InvariantMonitor,
    InvariantViolation,
    check_agreement_logs,
)

__all__ = [
    "FaultPlan",
    "LinkFault",
    "NodeFault",
    "Partition",
    "NODE_BEHAVIOURS",
    "LinkFaultInjector",
    "install_link_faults",
    "FaultController",
    "apply_plan",
    "InvariantConfig",
    "InvariantMonitor",
    "InvariantViolation",
    "check_agreement_logs",
]
