"""Whole-system synchronous Byzantine agreement baseline.

The second baseline of Figure 8 scales the Dolev-Strong agreement used inside
Atum's vgroups out to the entire system.  Its latency is ``(f + 1)`` rounds,
where ``f`` is the number of tolerated faults: with 850 nodes, 50 tolerated
faults and 1.5-second rounds this is ~76.5 seconds -- the far-right step of
the paper's CDF.

The analytic model is exact for the failure-free case; a message-level
simulation for small systems is provided for cross-validation against the
analytic latency (used in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.smr import ReplicaGroupHarness, SmrConfig, SyncSmrReplica
from repro.smr.base import sync_fault_threshold


def global_smr_latency(
    num_nodes: int,
    tolerated_faults: int | None = None,
    round_duration: float = 1.5,
) -> float:
    """Latency of a whole-system Dolev-Strong broadcast: ``(f + 1)`` rounds."""
    faults = (
        tolerated_faults
        if tolerated_faults is not None
        else sync_fault_threshold(num_nodes)
    )
    return (faults + 1) * round_duration


@dataclass
class GlobalSmrBaseline:
    """Whole-system SMR baseline with both analytic and simulated latency."""

    num_nodes: int = 850
    tolerated_faults: int = 50
    round_duration: float = 1.5

    def analytic_latency(self) -> float:
        return global_smr_latency(self.num_nodes, self.tolerated_faults, self.round_duration)

    def delivery_latencies(self) -> List[float]:
        """One latency sample per node (all nodes decide at the same boundary)."""
        latency = self.analytic_latency()
        return [latency] * self.num_nodes

    def simulate_small(self, num_nodes: int = 9, seed: int = 0) -> float:
        """Message-level simulation of a small instance (cross-validation).

        Returns the measured decision latency of one broadcast among
        ``num_nodes`` replicas with the configured round duration.
        """
        harness = ReplicaGroupHarness(
            group_size=num_nodes,
            replica_class=SyncSmrReplica,
            config=SmrConfig(round_duration=self.round_duration),
            seed=seed,
        )
        operation = harness.propose("replica-0", "broadcast", "baseline")
        harness.run(until=(num_nodes + 4) * self.round_duration * 2)
        return harness.decision_latency(operation.op_id)


__all__ = ["global_smr_latency", "GlobalSmrBaseline"]
