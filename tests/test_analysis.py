"""Tests for the analysis helpers (robustness, CDFs, tables)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    all_vgroups_robust_probability,
    empirical_cdf,
    format_table,
    fraction_below,
    latency_summary,
    monte_carlo_vgroup_failure,
    optimal_group_size_table,
    vgroup_failure_probability,
)
from repro.analysis.cdf import cdf_at_thresholds, percentile
from repro.analysis.robustness import logarithmic_group_size
from repro.analysis.tables import format_cdf_rows


class TestRobustness:
    def test_paper_example_small_group(self):
        # Section 3.1: g=4, p=0.05, synchronous -> failure probability ~0.014.
        probability = vgroup_failure_probability(4, 0.05, synchronous=True)
        assert probability == pytest.approx(0.014, abs=0.002)

    def test_paper_example_large_group(self):
        # Section 3.1: g=20, p=0.05 -> ~1.13e-8.
        probability = vgroup_failure_probability(20, 0.05, synchronous=True)
        assert probability == pytest.approx(1.134e-8, rel=0.05)

    def test_larger_groups_are_more_robust(self):
        small = vgroup_failure_probability(6, 0.06)
        large = vgroup_failure_probability(24, 0.06)
        assert large < small

    def test_async_engine_less_robust_than_sync(self):
        sync = vgroup_failure_probability(12, 0.10, synchronous=True)
        asyn = vgroup_failure_probability(12, 0.10, synchronous=False)
        assert asyn > sync

    def test_k4_keeps_all_groups_robust_at_6_percent(self):
        # Section 3.1: with k = 4 and 6% faults, all vgroups robust w.p. ~0.999.
        system_size = 2000
        group_size = logarithmic_group_size(system_size, k=4)
        probability = all_vgroups_robust_probability(system_size, group_size, 0.06)
        assert probability > 0.99

    def test_all_robust_decreases_with_system_size_at_fixed_group_size(self):
        small = all_vgroups_robust_probability(500, 10, 0.05)
        large = all_vgroups_robust_probability(50_000, 10, 0.05)
        assert large < small

    def test_monte_carlo_matches_analytic(self):
        analytic = vgroup_failure_probability(8, 0.2)
        estimated = monte_carlo_vgroup_failure(8, 0.2, trials=20_000)
        assert estimated == pytest.approx(analytic, abs=0.02)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            vgroup_failure_probability(8, 1.5)

    def test_optimal_group_size_table_monotone_in_k(self):
        rows = optimal_group_size_table(2000, 0.06)
        probabilities = [row["all_robust_probability"] for row in rows]
        assert probabilities == sorted(probabilities)


@settings(max_examples=30, deadline=None)
@given(
    group_size=st.integers(min_value=1, max_value=40),
    probability=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_failure_probability_is_a_probability(group_size, probability):
    value = vgroup_failure_probability(group_size, probability)
    assert 0.0 <= value <= 1.0 + 1e-12


class TestCdf:
    def test_empirical_cdf_sorted_and_normalised(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0, 2.0])
        values = [v for v, _ in cdf]
        fractions = [f for _, f in cdf]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)

    def test_empty_cdf(self):
        assert empirical_cdf([]) == []

    def test_fraction_below(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert fraction_below(samples, 2.5) == 0.5
        assert fraction_below(samples, 0.0) == 0.0
        assert fraction_below([], 1.0) == 0.0

    def test_percentile(self):
        samples = list(range(1, 101))
        assert percentile(samples, 50) == 50
        assert math.isnan(percentile([], 50))
        with pytest.raises(ValueError):
            percentile(samples, -1)

    def test_latency_summary_keys(self):
        summary = latency_summary([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["max"] == 3.0
        empty = latency_summary([])
        assert empty["count"] == 0 and math.isnan(empty["mean"])

    def test_cdf_at_thresholds(self):
        rows = cdf_at_thresholds([1.0, 2.0, 3.0], [0.5, 2.0, 5.0])
        assert rows == [(0.5, 0.0), (2.0, pytest.approx(2 / 3)), (5.0, 1.0)]


class TestTables:
    def test_format_table_contains_headers_and_values(self):
        text = format_table([{"n": 200, "latency": 5.5}, {"n": 400, "latency": 6.25}], title="Fig")
        assert "Fig" in text
        assert "n" in text and "latency" in text
        assert "400" in text and "6.25" in text

    def test_format_empty_table(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_cdf_rows(self):
        rows = format_cdf_rows([(0.5, 0.25), (1.0, 1.0)])
        assert rows[0]["fraction_delivered"] == 0.25
        assert rows[1]["latency_s"] == 1.0
