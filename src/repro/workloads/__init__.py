"""Workload drivers used by the evaluation harness.

* :mod:`repro.workloads.growth` -- grows a system by joining nodes at a rate
  proportional to the current size (Figures 6 and 13).
* :mod:`repro.workloads.churn` -- continuous churn (leave + re-join) and the
  search for the maximal sustainable churn rate (Figure 7).
* :mod:`repro.workloads.broadcasts` -- broadcast workloads with small payloads
  (Figure 8).
* :mod:`repro.workloads.byzantine` -- helpers for selecting and configuring
  Byzantine nodes.
"""

from repro.workloads.growth import GrowthConfig, GrowthWorkload
from repro.workloads.churn import ChurnConfig, ChurnResult, ChurnWorkload, max_sustainable_churn
from repro.workloads.broadcasts import BroadcastWorkload, BroadcastWorkloadConfig
from repro.workloads.byzantine import select_byzantine, select_byzantine_per_group

__all__ = [
    "GrowthConfig",
    "GrowthWorkload",
    "ChurnConfig",
    "ChurnResult",
    "ChurnWorkload",
    "max_sustainable_churn",
    "BroadcastWorkload",
    "BroadcastWorkloadConfig",
    "select_byzantine",
    "select_byzantine_per_group",
]
