"""Atum core: configuration, the Atum node API, and the cluster driver.

* :class:`repro.core.config.AtumParameters` -- the system parameters of the
  paper's Table 1 (``hc``, ``rwl``, ``gmin``, ``gmax``, ``k``) plus the choice
  of SMR engine, with helpers that derive a configuration from a target system
  size using the Figure 4 guideline.
* :class:`repro.core.node.AtumNode` -- a node of the system, exposing the Atum
  API (``join``, ``leave``, ``broadcast``) and the application callbacks
  (``deliver``, ``forward``).
* :class:`repro.core.cluster.AtumCluster` -- the driver that hosts many Atum
  nodes on one simulator, wires them to the membership engine and the network,
  and provides the measurement hooks used by tests, examples and benchmarks.
"""

# Lazy re-exports (PEP 562).  Leaf modules across the tree import
# ``repro.core.middleware``; eager submodule imports here would drag the whole
# node/cluster stack into that package-init and create an import cycle
# (network -> core.middleware -> core.__init__ -> node -> network).
_EXPORTS = {
    "AtumParameters": "repro.core.config",
    "SmrKind": "repro.core.config",
    "parameter_table": "repro.core.config",
    "AtumNode": "repro.core.node",
    "BroadcastMessage": "repro.core.node",
    "AtumCluster": "repro.core.cluster",
    "Middleware": "repro.core.middleware",
    "MiddlewareChain": "repro.core.middleware",
    "MiddlewareContext": "repro.core.middleware",
    "MiddlewareError": "repro.core.middleware",
    "MetricsTap": "repro.core.middleware",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
