"""ATL009: direct hook wiring outside repro.core.middleware."""

from lint_utils import lint_fixture, rules_of


def test_flags_every_pre_pipeline_wiring_pattern():
    findings = lint_fixture("atl009_bad.py", rules=["ATL009"])
    assert rules_of(findings) == ["ATL009"] * 7
    messages = "\n".join(f.message for f in findings)
    assert "install_fault_injector" in messages
    assert "clear_fault_injector" in messages
    assert ".delivery_observer" in messages
    assert ".accept_audit" in messages
    assert ".on_view_change(...)" in messages
    assert ".on_eviction(...)" in messages
    assert "wrap-chaining" in messages
    # Every message points at the sanctioned home.
    assert all("middleware" in f.message.lower() for f in findings)


def test_pipeline_wiring_and_own_callbacks_pass():
    assert lint_fixture("atl009_ok.py") == []
