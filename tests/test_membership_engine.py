"""Tests for the membership engine (joins, leaves, shuffling, splits, merges)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.group.cost import GroupCostModel
from repro.overlay.membership import MembershipConfig, MembershipEngine, MembershipError
from repro.sim import Simulator


def make_engine(seed=0, shuffle=True, gmax=8, gmin=4, hc=3, rwl=6, synchronous=True):
    sim = Simulator(seed=seed)
    config = MembershipConfig(hc=hc, rwl=rwl, gmax=gmax, gmin=gmin, shuffle_enabled=shuffle)
    cost = GroupCostModel(synchronous=synchronous, round_duration=1.0)
    engine = MembershipEngine(sim, config, cost)
    return sim, engine


def run_joins(sim, engine, count, prefix="n", contact=None):
    for index in range(count):
        engine.join(f"{prefix}{index}", contact_node=contact)
        sim.run(until=sim.now + 60.0)
    # Drain any remaining shuffles/splits.
    sim.run_until_idle()


class TestBootstrapAndStatic:
    def test_bootstrap_creates_single_member_group(self):
        sim, engine = make_engine()
        view = engine.bootstrap("n0")
        assert engine.system_size == 1
        assert engine.group_count == 1
        assert view.members == ("n0",)
        engine.validate()

    def test_bootstrap_twice_rejected(self):
        sim, engine = make_engine()
        engine.bootstrap("n0")
        with pytest.raises(MembershipError):
            engine.bootstrap("n1")

    def test_build_static_partitions_all_nodes(self):
        sim, engine = make_engine()
        nodes = [f"n{i}" for i in range(50)]
        engine.build_static(nodes)
        assert engine.system_size == 50
        engine.validate()
        sizes = [view.size for view in engine.groups.values()]
        assert all(size <= engine.config.gmax for size in sizes)
        assert all(size >= engine.config.gmin for size in sizes)

    def test_build_static_single_node(self):
        sim, engine = make_engine()
        engine.build_static(["only"])
        assert engine.system_size == 1
        engine.validate()

    def test_build_static_empty_rejected(self):
        sim, engine = make_engine()
        with pytest.raises(MembershipError):
            engine.build_static([])

    def test_build_static_trailing_fold_respects_gmax(self):
        """Regression: folding an undersized trailing chunk into its
        neighbour used to exceed gmax (50 nodes at gmin=6/gmax=12 chunk
        into 9s with a trailing 5, and 9+5=14 > 12)."""
        sim, engine = make_engine(gmin=6, gmax=12)
        engine.build_static([f"n{i}" for i in range(50)])
        sizes = [view.size for view in engine.groups.values()]
        assert max(sizes) <= 12
        assert min(sizes) >= 6
        engine.validate()

    def test_build_static_bounds_hold_at_adversarial_sizes(self):
        for gmin, gmax in [(4, 8), (6, 12), (5, 10), (2, 4)]:
            for count in range(gmin, 61):
                sim, engine = make_engine(gmin=gmin, gmax=gmax)
                engine.build_static([f"n{i}" for i in range(count)])
                sizes = [view.size for view in engine.groups.values()]
                assert max(sizes) <= gmax, (gmin, gmax, count, sizes)
                assert min(sizes) >= gmin, (gmin, gmax, count, sizes)
                engine.validate()

    def test_build_static_unsplittable_fold_is_documented_minimal(self):
        """When gmax < 2*gmin the merged trailing chunk cannot be split
        into two in-bounds halves; the violation is kept minimal (at most
        gmax + gmin - 1) rather than hidden."""
        sim, engine = make_engine(gmin=7, gmax=8)
        engine.build_static([f"n{i}" for i in range(13)])
        sizes = [view.size for view in engine.groups.values()]
        assert max(sizes) <= 8 + 7 - 1
        assert engine.system_size == 13


class TestJoin:
    def test_first_join_bootstraps(self):
        sim, engine = make_engine()
        engine.join("n0")
        assert engine.system_size == 1

    def test_join_adds_node_after_protocol_runs(self):
        sim, engine = make_engine()
        engine.bootstrap("n0")
        engine.join("n1", contact_node="n0")
        sim.run_until_idle()
        assert engine.system_size == 2
        assert "n1" in engine.node_group
        engine.validate()

    def test_duplicate_join_rejected(self):
        sim, engine = make_engine()
        engine.bootstrap("n0")
        with pytest.raises(MembershipError):
            engine.join("n0")

    def test_join_latency_recorded(self):
        sim, engine = make_engine()
        engine.bootstrap("n0")
        engine.join("n1", contact_node="n0")
        sim.run_until_idle()
        histogram = sim.metrics.histogram("membership.join_latency")
        assert histogram.count == 1
        assert histogram.mean > 0.0

    def test_growth_triggers_splits_and_respects_gmax(self):
        sim, engine = make_engine(shuffle=False)
        engine.bootstrap("n0")
        run_joins(sim, engine, 30, prefix="j")
        assert engine.system_size == 31
        assert sim.metrics.counter("membership.splits") > 0
        for view in engine.groups.values():
            assert view.size <= engine.config.gmax
        engine.validate()

    def test_growth_with_shuffling_keeps_invariants(self):
        sim, engine = make_engine(shuffle=True)
        engine.bootstrap("n0")
        run_joins(sim, engine, 25, prefix="j")
        assert engine.system_size == 26
        engine.validate()

    def test_joins_complete_metric(self):
        sim, engine = make_engine(shuffle=False)
        engine.bootstrap("n0")
        run_joins(sim, engine, 10, prefix="j")
        assert sim.metrics.counter("membership.joins_completed") == 10


class TestLeave:
    def _grown_engine(self, size=30, shuffle=False):
        sim, engine = make_engine(shuffle=shuffle)
        engine.build_static([f"n{i}" for i in range(size)])
        return sim, engine

    def test_leave_removes_node(self):
        sim, engine = self._grown_engine()
        engine.leave("n5")
        sim.run_until_idle()
        assert "n5" not in engine.node_group
        assert engine.system_size == 29
        engine.validate()

    def test_leave_unknown_node_rejected(self):
        sim, engine = self._grown_engine()
        with pytest.raises(MembershipError):
            engine.leave("ghost")

    def test_shrinking_triggers_merges_and_respects_gmin(self):
        sim, engine = self._grown_engine(size=40)
        for index in range(25):
            engine.leave(f"n{index}")
            sim.run(until=sim.now + 30.0)
        sim.run_until_idle()
        assert engine.system_size == 15
        assert sim.metrics.counter("membership.merges") > 0
        engine.validate()
        for view in engine.groups.values():
            if engine.group_count > 1:
                assert view.size >= engine.config.gmin or view.size <= engine.config.gmax

    def test_system_can_empty_completely(self):
        sim, engine = make_engine(shuffle=False, gmin=1, gmax=4)
        engine.build_static(["a", "b", "c"], target_group_size=3)
        for node in ["a", "b", "c"]:
            engine.leave(node)
            sim.run_until_idle()
        assert engine.system_size == 0

    def test_eviction_counts_separately(self):
        sim, engine = self._grown_engine()
        engine.leave("n3", eviction=True)
        sim.run_until_idle()
        assert sim.metrics.counter("membership.evictions_started") == 1


class TestEnforceBounds:
    """Runtime bound changes (the ParameterBus appliers call this) must
    actively re-balance: splits and merges are otherwise only triggered
    by joins, leaves and shuffles."""

    def test_noop_when_groups_already_in_bounds(self):
        sim, engine = make_engine()
        engine.build_static([f"n{i}" for i in range(32)])
        assert engine.enforce_bounds() == 0

    def test_narrowed_gmax_splits_oversized_groups(self):
        sim, engine = make_engine(gmax=8, gmin=4)
        engine.build_static([f"n{i}" for i in range(32)])
        engine.config.gmin = 2
        engine.config.gmax = 4
        assert engine.enforce_bounds() > 0
        sim.run_until_idle()
        sizes = [view.size for view in engine.groups.values()]
        assert max(sizes) <= 4
        engine.validate()

    def test_raised_gmin_merges_undersized_groups(self):
        sim, engine = make_engine(gmax=8, gmin=2)
        engine.build_static([f"n{i}" for i in range(12)], target_group_size=3)
        engine.config.gmin = 4
        engine.enforce_bounds()
        sim.run_until_idle()
        sizes = [view.size for view in engine.groups.values()]
        if engine.group_count > 1:
            assert min(sizes) >= 4
        engine.validate()


class TestShufflingAndExchanges:
    def test_exchanges_recorded_on_join(self):
        sim, engine = make_engine(shuffle=True)
        engine.build_static([f"n{i}" for i in range(24)])
        engine.join("x0")
        sim.run_until_idle()
        assert sim.metrics.counter("membership.exchanges_attempted") > 0
        engine.validate()

    def test_concurrent_joins_cause_suppressions(self):
        sim, engine = make_engine(shuffle=True)
        engine.build_static([f"n{i}" for i in range(40)])
        for index in range(20):
            engine.join(f"x{index}")
        sim.run_until_idle()
        attempted = sim.metrics.counter("membership.exchanges_attempted")
        suppressed = sim.metrics.counter("membership.exchanges_suppressed")
        assert attempted > 0
        # With 20 concurrent joins over ~6 groups, some exchange partners must
        # have been busy.
        assert suppressed > 0
        engine.validate()

    def test_shuffle_preserves_system_size(self):
        sim, engine = make_engine(shuffle=True)
        engine.build_static([f"n{i}" for i in range(32)])
        before = engine.system_size
        engine.join("extra")
        sim.run_until_idle()
        assert engine.system_size == before + 1
        engine.validate()


class TestTimeseriesAndCosts:
    def test_system_size_timeseries_monotone_under_growth(self):
        sim, engine = make_engine(shuffle=False)
        engine.bootstrap("n0")
        run_joins(sim, engine, 12, prefix="j")
        series = sim.metrics.timeseries("membership.system_size")
        values = series.values()
        assert values == sorted(values)
        assert values[-1] == 13

    def test_async_cost_model_joins_faster(self):
        def total_join_time(synchronous):
            sim, engine = make_engine(shuffle=False, synchronous=synchronous)
            engine.build_static([f"n{i}" for i in range(16)])
            engine.join("new-node")
            sim.run_until_idle()
            return sim.metrics.histogram("membership.join_latency").mean

        assert total_join_time(False) < total_join_time(True)


@settings(max_examples=15, deadline=None)
@given(
    initial=st.integers(min_value=2, max_value=40),
    operations=st.lists(st.integers(min_value=0, max_value=2**30), min_size=1, max_size=25),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_membership_invariants_under_random_churn(initial, operations, seed):
    """Random join/leave interleavings keep node/group/graph structures consistent."""
    sim, engine = make_engine(seed=seed, shuffle=True, gmax=8, gmin=4)
    engine.build_static([f"n{i}" for i in range(initial)])
    joined = initial
    for op in operations:
        if op % 2 == 0:
            engine.join(f"extra{joined}")
            joined += 1
        else:
            members = sorted(engine.node_group)
            if members:
                victim = members[op % len(members)]
                engine.leave(victim)
        sim.run(until=sim.now + 20.0)
    sim.run_until_idle()
    engine.validate()
