"""Random walks over the H-graph.

Random walks are how Atum samples vgroups uniformly at random (for placing
joining nodes and for choosing shuffle exchange partners).  Three practical
concerns from the paper are modelled here:

* **Bulk RNG** (section 5.1): all ``rwl`` random numbers used by a walk are
  generated when the walk starts and piggybacked on the walk messages, so no
  vgroup can bias the walk by pre-generating numbers.
* **Reply scheme**: a walk either carries a *backward phase* (the reply is
  relayed back along the walk's path -- used by the Sync implementation) or a
  *certificate chain* (each hop appends a signed certificate and the selected
  vgroup replies directly -- used by the Async implementation).
* **Uniformity**: whether the end vertex of a walk is indistinguishable from a
  uniform sample depends on the walk length and the graph density; this is
  quantified in :mod:`repro.overlay.guideline`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.overlay.hgraph import HGraph


class WalkMode(enum.Enum):
    """How the selected vgroup's reply travels back to the originator."""

    BACKWARD_PHASE = "backward_phase"
    CERTIFICATES = "certificates"


@dataclass
class BulkRng:
    """The random numbers of a walk, generated in bulk at the first hop.

    Each entry is a float in ``[0, 1)``; hop ``i`` of the walk consumes entry
    ``i`` to pick among the current vgroup's incident links.  Generating the
    numbers before the walk starts (rather than drawing them at each hop from
    a pre-computed pool) prevents the bias attack described in section 5.1.
    """

    values: List[float] = field(default_factory=list)

    @classmethod
    def generate(cls, length: int, rng: random.Random) -> "BulkRng":
        return cls(values=[rng.random() for _ in range(length)])

    def pick(self, hop: int, option_count: int) -> int:
        """Deterministically map hop ``hop``'s random number to an option index."""
        if hop >= len(self.values):
            raise IndexError(f"walk is longer ({hop + 1}) than its bulk RNG ({len(self.values)})")
        if option_count <= 0:
            raise ValueError("no options to pick from")
        return int(self.values[hop] * option_count) % option_count

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class RandomWalkOutcome:
    """Result of a structural random walk.

    Attributes:
        start: Vertex where the walk started.
        path: Vertices visited after the start, one per hop (length ``rwl``).
        selected: The final vertex (the sampled vgroup).
        mode: Reply scheme used.
        hops: Number of hops taken.
        reply_hops: Number of additional hops for the reply to reach the
            originator (``rwl`` for the backward phase, 1 for certificates).
    """

    start: str
    path: List[str]
    mode: WalkMode
    hops: int
    reply_hops: int

    @property
    def selected(self) -> str:
        return self.path[-1] if self.path else self.start

    @property
    def total_hops(self) -> int:
        return self.hops + self.reply_hops


def structural_walk(
    graph: HGraph,
    start: str,
    length: int,
    rng: random.Random,
    mode: WalkMode = WalkMode.BACKWARD_PHASE,
    bulk: Optional[BulkRng] = None,
) -> RandomWalkOutcome:
    """Perform a random walk of ``length`` hops on the H-graph.

    At each hop the walk moves across a uniformly random incident link of the
    current vertex (i.e. a uniformly random (cycle, direction) pair), matching
    the protocol's behaviour of choosing "a random incident link of the
    overlay".
    """
    if length < 1:
        raise ValueError("random walks must have at least one hop")
    numbers = bulk or BulkRng.generate(length, rng)
    current = start
    path: List[str] = []
    for hop in range(length):
        links = graph.incident_links(current)
        index = numbers.pick(hop, len(links))
        _cycle, current = links[index]
        path.append(current)
    reply_hops = length if mode is WalkMode.BACKWARD_PHASE else 1
    return RandomWalkOutcome(
        start=start, path=path, mode=mode, hops=length, reply_hops=reply_hops
    )


def sample_many(
    graph: HGraph,
    start: str,
    length: int,
    count: int,
    rng: random.Random,
) -> List[str]:
    """Run ``count`` independent walks from ``start`` and return the end vertices."""
    return [
        structural_walk(graph, start, length, rng).selected for _ in range(count)
    ]


__all__ = [
    "WalkMode",
    "BulkRng",
    "RandomWalkOutcome",
    "structural_walk",
    "sample_many",
]
