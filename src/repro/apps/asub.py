"""ASub: a topic-based publish/subscribe service on top of Atum (section 4.1).

Topic-based pub/sub is essentially equivalent to group communication: a topic
is a group, subscribing is joining, publishing is broadcasting.  ASub is
therefore a thin layer that maps its operations directly onto the Atum API:

===================  =====================
ASub operation       Atum operation
===================  =====================
``create_topic``     ``bootstrap``
``subscribe``        ``join``
``unsubscribe``      ``leave``
``publish``          ``broadcast``
===================  =====================

Each topic is backed by its own Atum instance (its own cluster of vgroups), as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters
from repro.core.node import BroadcastMessage


@dataclass
class Event:
    """An event published on a topic."""

    topic: str
    publisher: str
    payload: Any
    published_at: float


class ASubTopic:
    """One pub/sub topic, backed by one Atum instance."""

    def __init__(
        self,
        name: str,
        creator: str,
        params: Optional[AtumParameters] = None,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.params = params or AtumParameters()
        self.cluster = AtumCluster(self.params, seed=seed)
        self._subscriber_callbacks: Dict[str, Callable[[Event], None]] = {}
        self.received: Dict[str, List[Event]] = {}
        self.cluster.bootstrap(creator, deliver_fn=self._make_deliver(creator))
        self.received[creator] = []

    # ----------------------------------------------------------------- topology

    def subscribe(
        self,
        subscriber: str,
        contact: Optional[str] = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> None:
        """Subscribe a node to the topic (joins the topic's Atum instance)."""
        if callback is not None:
            self._subscriber_callbacks[subscriber] = callback
        self.received.setdefault(subscriber, [])
        self.cluster.join(subscriber, contact=contact, deliver_fn=self._make_deliver(subscriber))

    def subscribe_many(self, subscribers: Sequence[str]) -> None:
        """Fast path used by tests/benchmarks: build the topic membership directly."""
        for subscriber in subscribers:
            self.received.setdefault(subscriber, [])
        # The creator already bootstrapped a one-node system; rebuilding the
        # static membership is only allowed on an empty cluster, so this path
        # is intended for topics created through ``ASubService.create_topic``
        # with ``prebuilt_subscribers``.
        raise NotImplementedError(
            "subscribe_many is only available through ASubService.create_topic"
        )

    def unsubscribe(self, subscriber: str) -> None:
        """Unsubscribe (leaves the topic's Atum instance)."""
        self.cluster.leave(subscriber)

    # --------------------------------------------------------------- publishing

    def publish(self, publisher: str, payload: Any, size_bytes: int = 100) -> str:
        """Publish an event on the topic; returns the broadcast id."""
        return self.cluster.broadcast(publisher, payload, size_bytes=size_bytes)

    def run(self, duration: float) -> None:
        """Advance the topic's simulation by ``duration`` seconds."""
        self.cluster.run_for(duration)

    def events_received_by(self, subscriber: str) -> List[Event]:
        return self.received.get(subscriber, [])

    def subscriber_count(self) -> int:
        return self.cluster.system_size

    # ------------------------------------------------------------------ helpers

    def _make_deliver(self, subscriber: str) -> Callable[[BroadcastMessage], None]:
        def deliver(message: BroadcastMessage) -> None:
            event = Event(
                topic=self.name,
                publisher=message.origin,
                payload=message.payload,
                published_at=message.created_at,
            )
            self.received.setdefault(subscriber, []).append(event)
            callback = self._subscriber_callbacks.get(subscriber)
            if callback is not None:
                callback(event)

        return deliver


class ASubService:
    """A registry of topics; the user-facing facade of ASub."""

    def __init__(self, params: Optional[AtumParameters] = None, seed: int = 0) -> None:
        self.params = params or AtumParameters()
        self.seed = seed
        self.topics: Dict[str, ASubTopic] = {}

    def create_topic(
        self,
        name: str,
        creator: str,
        prebuilt_subscribers: Optional[Sequence[str]] = None,
    ) -> ASubTopic:
        """Create a topic.

        ``prebuilt_subscribers`` builds the topic membership directly (without
        replaying joins); useful for experiments that start from a grown topic.
        """
        if name in self.topics:
            raise ValueError(f"topic {name!r} already exists")
        if prebuilt_subscribers is None:
            topic = ASubTopic(name, creator, params=self.params, seed=self.seed + len(self.topics))
        else:
            topic = ASubTopic.__new__(ASubTopic)
            topic.name = name
            topic.params = self.params
            topic.cluster = AtumCluster(self.params, seed=self.seed + len(self.topics))
            topic._subscriber_callbacks = {}
            topic.received = {address: [] for address in [creator, *prebuilt_subscribers]}
            addresses = [creator, *prebuilt_subscribers]
            topic.cluster.build_static(addresses)
            for address in addresses:
                topic.cluster.node(address).deliver_fn = topic._make_deliver(address)
        self.topics[name] = topic
        return topic

    def topic(self, name: str) -> ASubTopic:
        if name not in self.topics:
            raise KeyError(f"unknown topic {name!r}")
        return self.topics[name]

    def subscribe(self, topic: str, subscriber: str, contact: Optional[str] = None) -> None:
        self.topic(topic).subscribe(subscriber, contact=contact)

    def unsubscribe(self, topic: str, subscriber: str) -> None:
        self.topic(topic).unsubscribe(subscriber)

    def publish(self, topic: str, publisher: str, payload: Any) -> str:
        return self.topic(topic).publish(publisher, payload)


__all__ = ["Event", "ASubTopic", "ASubService"]
