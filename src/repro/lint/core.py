"""atumlint core: findings, pragmas, the rule registry and the project index.

The analyzer is deliberately self-contained (stdlib ``ast`` + ``re`` only)
and two-pass:

1. **Index pass** — parse every target file once into a :class:`ModuleInfo`
   (AST, source lines, pragma table, import-alias map) and fold all class
   definitions into a project-wide class table so rules can resolve
   inherited ``__slots__`` across modules.
2. **Rule pass** — every registered rule visits every module.  Rules are
   plain classes registered with :func:`register_rule`; adding a rule to
   the next PR is one new class in :mod:`repro.lint.rules`.

Suppression is per-line and must carry a reason::

    draw = random.random()  # atumlint: allow[ATL001] exploratory notebook path

A pragma with no reason does not suppress anything — it is reported as an
``ATL000`` finding, so silent blanket waivers cannot accrete.  A pragma on
its own line suppresses findings on the next code line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: ``# atumlint: allow[ATL001] reason`` or ``allow[ATL001,ATL003] reason``.
PRAGMA_RE = re.compile(
    r"#\s*atumlint:\s*allow\[(?P<rules>[A-Z0-9,\s]+)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    message: str
    snippet: str  # stripped source line, the baseline-matching key

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def key(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used by the baseline.

        Keyed on the *content* of the flagged line rather than its number,
        so unrelated edits above a baselined finding do not churn the
        baseline file.
        """
        return (self.rule, self.path, self.snippet)


@dataclass
class Pragma:
    """A parsed suppression pragma on one source line."""

    line: int
    rules: Tuple[str, ...]
    reason: str


@dataclass
class ClassInfo:
    """One class definition, enough for inherited-``__slots__`` resolution."""

    qualname: str  # "repro.sim.events.Event"
    module: str  # "repro.sim.events"
    name: str
    bases: Tuple[str, ...]  # dotted names as written, resolved via imports
    slots: Optional[Tuple[str, ...]]  # None = no __slots__ (has __dict__)
    slots_dynamic: bool  # __slots__ present but not a literal -> unknowable
    node: ast.ClassDef = field(repr=False, default=None)  # type: ignore[assignment]


@dataclass
class ModuleInfo:
    """One parsed target file."""

    path: Path
    relpath: str  # repo-relative, forward slashes
    module: str  # dotted module name ("" if outside a package root)
    source_lines: List[str]
    tree: ast.Module
    pragmas: Dict[int, Pragma]
    #: local name -> dotted target for ``import x as y`` / ``from m import n``.
    import_aliases: Dict[str, str]

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""


class ProjectIndex:
    """All parsed modules plus the cross-module class table."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: List[ModuleInfo] = list(modules)
        self.classes: Dict[str, ClassInfo] = {}
        for info in self.modules:
            for cls in _collect_classes(info):
                self.classes[cls.qualname] = cls

    def resolve_class(self, module: ModuleInfo, name: str) -> Optional[ClassInfo]:
        """Resolve a base-class reference written in ``module`` to its info."""
        dotted = module.import_aliases.get(name, name)
        if dotted in self.classes:
            return self.classes[dotted]
        if module.module:
            qualified = f"{module.module}.{dotted}"
            if qualified in self.classes:
                return self.classes[qualified]
        return None

    def resolved_slots(
        self, module: ModuleInfo, cls: ClassInfo, _seen: Optional[Set[str]] = None
    ) -> Optional[Set[str]]:
        """All slots of ``cls`` including inherited ones, or ``None`` if the
        class (or any base) gives instances a ``__dict__`` / is unknowable.

        ``None`` means "do not check attribute writes against slots": a
        dynamic ``__slots__``, a ``__slots__`` containing ``__dict__``, an
        unresolvable (external) base, or an unslotted base all make the
        instance layout open.
        """
        seen = _seen if _seen is not None else set()
        if cls.qualname in seen:  # inheritance cycle: malformed, skip
            return None
        seen.add(cls.qualname)
        if cls.slots_dynamic or cls.slots is None or "__dict__" in cls.slots:
            return None
        collected: Set[str] = set(cls.slots)
        for base in cls.bases:
            if base == "object":
                continue
            base_info = self.resolve_class(module, base)
            if base_info is None:
                return None
            base_module = next(
                (m for m in self.modules if m.module == base_info.module), module
            )
            base_slots = self.resolved_slots(base_module, base_info, seen)
            if base_slots is None:
                return None
            collected.update(base_slots)
        return collected


class Rule:
    """Base class for atumlint rules.

    Subclasses set ``rule_id``/``title`` and implement :meth:`check`,
    yielding :class:`Finding` objects.  Registration is explicit via
    :func:`register_rule` so a rule is one self-contained class.
    """

    rule_id: str = "ATL000"
    title: str = ""

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=line,
            message=message,
            snippet=module.snippet(line),
        )


_RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id or cls.rule_id == "ATL000":
        raise ValueError(f"{cls.__name__} must set a non-reserved rule_id")
    if cls.rule_id in _RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _RULE_REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """The registry (importing :mod:`repro.lint.rules` populates it)."""
    import repro.lint.rules  # noqa: F401  (side effect: registration)

    return dict(_RULE_REGISTRY)


# ------------------------------------------------------------------- parsing


def parse_pragmas(source_lines: Sequence[str]) -> Dict[int, Pragma]:
    """Extract ``# atumlint: allow[...]`` pragmas, keyed by 1-based line."""
    pragmas: Dict[int, Pragma] = {}
    for index, text in enumerate(source_lines, start=1):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        pragmas[index] = Pragma(
            line=index, rules=rules, reason=match.group("reason").strip()
        )
    return pragmas


def _collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _collect_classes(info: ModuleInfo) -> List[ClassInfo]:
    classes: List[ClassInfo] = []
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases: List[str] = []
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted is not None:
                bases.append(dotted)
        slots: Optional[Tuple[str, ...]] = None
        slots_dynamic = False
        for statement in node.body:
            target_names = []
            if isinstance(statement, ast.Assign):
                target_names = [
                    t.id for t in statement.targets if isinstance(t, ast.Name)
                ]
                value = statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                if isinstance(statement.target, ast.Name):
                    target_names = [statement.target.id]
                value = statement.value
            else:
                continue
            if "__slots__" not in target_names:
                continue
            literal = _literal_str_tuple(value)
            if literal is None:
                slots_dynamic = True
            else:
                slots = literal
        qualname = f"{info.module}.{node.name}" if info.module else node.name
        classes.append(
            ClassInfo(
                qualname=qualname,
                module=info.module,
                name=node.name,
                bases=tuple(bases),
                slots=slots,
                slots_dynamic=slots_dynamic,
                node=node,
            )
        )
    return classes


def _literal_str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``("a", "b")`` / ``["a"]`` / ``"a"`` -> tuple of strings, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value,)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        items: List[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                items.append(element.value)
            else:
                return None
        return tuple(items)
    return None


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` expression -> "a.b.c", else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def load_module(path: Path, root: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    relpath = rel.as_posix()
    module = ""
    parts = list(rel.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        module = ".".join(parts)
    return ModuleInfo(
        path=path,
        relpath=relpath,
        module=module,
        source_lines=lines,
        tree=tree,
        pragmas=parse_pragmas(lines),
        import_aliases=_collect_import_aliases(tree),
    )


def discover_files(targets: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            files.append(target)
    # The generated metrics registry is data, not protocol code.
    return [f for f in files if f.name != "metrics_registry.py"]


def build_index(targets: Sequence[Path], root: Path) -> ProjectIndex:
    return ProjectIndex([load_module(path, root) for path in discover_files(targets)])


# ----------------------------------------------------------------- execution


def run_lint(
    targets: Sequence[Path],
    root: Path,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run all (or the selected) rules over ``targets``.

    Returns findings *after* pragma suppression, sorted by location.
    Reason-less pragmas and pragmas naming unknown rules surface as
    ``ATL000`` findings so suppression stays auditable.
    """
    registry = registered_rules()
    selected = list(rule_ids) if rule_ids else sorted(registry)
    unknown = [rule_id for rule_id in selected if rule_id not in registry]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    project = build_index(targets, root)
    findings: List[Finding] = []
    for module in project.modules:
        raw: List[Finding] = []
        for rule_id in selected:
            raw.extend(registry[rule_id]().check(module, project))
        findings.extend(_apply_pragmas(module, raw))
        findings.extend(_pragma_hygiene(module, set(registry)))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _pragma_for(module: ModuleInfo, finding: Finding) -> Optional[Pragma]:
    """The pragma governing ``finding``: same line, or the line above if that
    line is a pure comment."""
    pragma = module.pragmas.get(finding.line)
    if pragma is not None:
        return pragma
    above = module.pragmas.get(finding.line - 1)
    if above is not None:
        text = module.source_lines[finding.line - 2].lstrip()
        if text.startswith("#"):
            return above
    return None


def _apply_pragmas(module: ModuleInfo, findings: Iterable[Finding]) -> List[Finding]:
    kept: List[Finding] = []
    for finding in findings:
        pragma = _pragma_for(module, finding)
        if pragma is not None and finding.rule in pragma.rules and pragma.reason:
            continue
        kept.append(finding)
    return kept


def _pragma_hygiene(module: ModuleInfo, known_rules: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    for pragma in module.pragmas.values():
        if not pragma.reason:
            findings.append(
                Finding(
                    rule="ATL000",
                    path=module.relpath,
                    line=pragma.line,
                    message=(
                        "suppression pragma without a reason string "
                        "(write: atumlint: allow[RULE] <why this is safe>)"
                    ),
                    snippet=module.snippet(pragma.line),
                )
            )
        for rule_id in pragma.rules:
            if rule_id not in known_rules:
                findings.append(
                    Finding(
                        rule="ATL000",
                        path=module.relpath,
                        line=pragma.line,
                        message=f"suppression pragma names unknown rule {rule_id}",
                        snippet=module.snippet(pragma.line),
                    )
                )
    return findings


__all__ = [
    "Finding",
    "Pragma",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "register_rule",
    "registered_rules",
    "parse_pragmas",
    "load_module",
    "discover_files",
    "build_index",
    "run_lint",
]
