"""Continuous churn workload and the maximal-sustainable-churn search.

The paper's Figure 7 reports, for systems of 50 to 800 nodes, the maximal
churn rate (re-joins per minute) that Atum sustains while nodes keep an
average session time of 5 to 6 minutes.  A churn rate is *sustained* when the
system keeps up with it: membership operations do not accumulate and join
latencies stay bounded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.overlay.membership import MembershipEngine, MembershipError


@dataclass
class ChurnConfig:
    """Configuration of the churn driver.

    Attributes:
        rate_per_minute: Requested re-joins per minute (each re-join is one
            leave of a random member plus one join of a fresh node).
        duration: How long to apply the churn, in seconds.
        warmup: Time to wait before measuring (lets the system settle).
        backlog_limit_factor: The rate counts as sustained if the number of
            pending membership operations at the end stays below this multiple
            of the per-minute rate.
    """

    rate_per_minute: float = 60.0
    duration: float = 300.0
    warmup: float = 30.0
    backlog_limit_factor: float = 1.0


@dataclass
class ChurnResult:
    """Outcome of one churn run."""

    requested_rejoins: int
    completed_joins: int
    completed_leaves: int
    pending_at_end: int
    mean_join_latency: float
    sustained: bool
    leave_failures: int = 0

    @property
    def completion_ratio(self) -> float:
        if self.requested_rejoins == 0:
            return 1.0
        return self.completed_joins / self.requested_rejoins


class ChurnWorkload:
    """Applies continuous churn to a grown membership engine.

    ``join_fn`` overrides how newcomers enter the system (default:
    ``engine.join``).  Cluster-level scenarios pass ``cluster.join`` so that
    re-joined nodes get real actors — with heartbeats enabled, an
    engine-only member that never heartbeats would be promptly evicted by
    its vgroup peers.
    """

    def __init__(
        self,
        engine: MembershipEngine,
        config: ChurnConfig,
        join_fn: Optional[Callable[[str], object]] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.sim = engine.sim
        self._join = join_fn or engine.join
        self._rng = self.sim.rng.stream("churn-workload")
        self._counter = itertools.count(0)
        self._requested = 0

    def run(self) -> ChurnResult:
        """Apply churn for the configured duration and report the outcome."""
        interval = 60.0 / self.config.rate_per_minute
        joins_before = self.sim.metrics.counter("membership.joins_completed")
        leaves_before = self.sim.metrics.counter("membership.leaves_completed")
        end_time = self.sim.now + self.config.warmup + self.config.duration
        start_time = self.sim.now + self.config.warmup

        def churn_tick() -> None:
            if self.sim.now >= end_time:
                return
            self._rejoin_one()
            self.sim.schedule(interval, churn_tick, tag="churn.tick")

        self.sim.schedule(self.config.warmup, churn_tick, tag="churn.start")
        self.sim.run(until=end_time)
        # Give in-flight operations a short grace period to finish.
        self.sim.run(until=end_time + 30.0)

        joins_after = self.sim.metrics.counter("membership.joins_completed")
        leaves_after = self.sim.metrics.counter("membership.leaves_completed")
        pending = self.engine.pending_operations()
        join_histogram = self.sim.metrics.histogram("membership.join_latency")
        mean_latency = join_histogram.mean if join_histogram.count else 0.0
        completed_joins = int(joins_after - joins_before)
        sustained = (
            completed_joins >= 0.9 * self._requested
            and pending <= max(5.0, self.config.backlog_limit_factor * self.config.rate_per_minute)
        )
        return ChurnResult(
            requested_rejoins=self._requested,
            completed_joins=completed_joins,
            completed_leaves=int(leaves_after - leaves_before),
            pending_at_end=pending,
            mean_join_latency=mean_latency,
            sustained=sustained,
            leave_failures=int(self.sim.metrics.counter("churn.leave_failed")),
        )

    def _rejoin_one(self) -> None:
        members = sorted(self.engine.node_group)
        if not members:
            return
        victim = members[self._rng.randrange(len(members))]
        try:
            self.engine.leave(victim)
        except MembershipError:
            # A concurrent operation can remove the victim between the
            # snapshot above and the call; such a tick drove no re-join, so
            # it must not count towards the requested rate (it would skew
            # completion_ratio and the sustained verdict).  Any other
            # exception is an engine bug and propagates.
            self.sim.metrics.increment("churn.leave_failed")
            return
        self._requested += 1
        newcomer = f"churn-{next(self._counter)}"
        self._join(newcomer)


def max_sustainable_churn(
    engine_factory: Callable[[], MembershipEngine],
    rates_per_minute: Sequence[float],
    duration: float = 240.0,
) -> float:
    """The highest of the candidate rates that the system sustains.

    A fresh engine is built (via ``engine_factory``) for every candidate rate,
    so runs do not contaminate each other.  Rates are tried in increasing
    order; the highest sustained rate is returned (0.0 if none is sustained).
    """
    best = 0.0
    for rate in sorted(rates_per_minute):
        engine = engine_factory()
        workload = ChurnWorkload(engine, ChurnConfig(rate_per_minute=rate, duration=duration))
        result = workload.run()
        if result.sustained:
            best = rate
        else:
            break
    return best


__all__ = ["ChurnConfig", "ChurnResult", "ChurnWorkload", "max_sustainable_churn"]
