"""Tests for the adaptive-parameter policy layer (repro.core.policies).

Covers the ParameterBus contract (adaptation-immutable parameters raise,
runtime conditions reject with counters: bounds, hysteresis, rate limit,
oscillation guard, gmin/gmax coupling), applier coherence (bound changes
re-balance vgroups immediately, heartbeat changes keep the suspicion
window and every monitor aligned, overrides reach late joiners), the
determinism contract (disabled policies keep a seeded run byte-identical)
and the headline property: adaptation under churn with the invariant
monitor attached produces transitions and zero violations.
"""

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind
from repro.core.middleware import MiddlewareChain
from repro.core.policies import (
    ADAPTATION_IMMUTABLE,
    AdaptiveAntiEntropy,
    AdaptiveGossip,
    AdaptiveGroupSize,
    AdaptiveHeartbeat,
    POLICY_BUILDERS,
    ParameterTransition,
    PolicyError,
)
from repro.faults.invariants import InvariantMonitor
from repro.group.antientropy import AntiEntropyConfig
from repro.overlay.membership import MembershipError


def small_params(**overrides):
    defaults = dict(
        hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5, heartbeat_period=2.0
    )
    defaults.update(overrides)
    return AtumParameters(**defaults)


def build_cluster(seed=9, nodes=16, **cluster_kwargs):
    cluster = AtumCluster(small_params(), seed=seed, **cluster_kwargs)
    cluster.build_static([f"n{i}" for i in range(nodes)])
    return cluster


# --------------------------------------------------------------- bus contract


class TestParameterBusRejections:
    def test_adaptation_immutable_raises(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        for name in ("round_duration", "repair_min_age", "misses_before_eviction"):
            assert name in ADAPTATION_IMMUTABLE
            with pytest.raises(PolicyError, match="adaptation-immutable"):
                bus.propose(name, 1.0)
        metrics = cluster.sim.metrics
        assert metrics.counter("policy.rejected_immutable") == 3
        # Wiring bugs are not counted as proposals (those are runtime traffic).
        assert metrics.counter("policy.proposals") == 0

    def test_unmanaged_parameter_raises(self):
        bus = build_cluster().parameter_bus()
        with pytest.raises(PolicyError, match="not managed"):
            bus.propose("no_such_knob", 1.0)

    def test_out_of_bounds_rejected(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gmax", 1000) is False
        assert bus.propose("gmax", 1) is False
        assert cluster.sim.metrics.counter("policy.rejected_bounds") == 2
        assert cluster.params.gmax == 6

    def test_hysteresis_band_swallows_tiny_steps(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        # min_step for heartbeat_period is 10% of the 2.0 s baseline.
        assert bus.propose("heartbeat_period", 2.05) is False
        assert bus.propose("gmax", 6) is False  # no-op proposal
        assert cluster.sim.metrics.counter("policy.rejected_step") == 2

    def test_rate_limit_rejects_back_to_back_transitions(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gmax", 8) is True
        assert bus.propose("gmax", 10) is False
        assert cluster.sim.metrics.counter("policy.rejected_rate") == 1
        cluster.run_for(6.0)  # past min_interval, same direction: accepted
        assert bus.propose("gmax", 10) is True

    def test_oscillation_guard_rejects_quick_reversals(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gmax", 8) is True
        cluster.run_for(6.0)  # clears the rate limit, not the window
        assert bus.propose("gmax", 6) is False
        assert cluster.sim.metrics.counter("policy.rejected_oscillation") == 1
        cluster.run_for(10.0)  # now outside the 15 s oscillation window
        assert bus.propose("gmax", 6) is True

    def test_gmin_coupling_rejects_merge_split_violations(self):
        # With gmax=6, gmin=4 would violate 2*gmin <= gmax+1: a merged
        # undersized group could not split back inside the bounds.
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gmin", 4) is False
        assert cluster.sim.metrics.counter("policy.rejected_coupling") == 1
        assert cluster.params.gmin == 3

    def test_gmax_coupling_rejects_narrowing_below_2gmin(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gmax", 4) is False  # 4 < 2*3 - 1
        assert cluster.sim.metrics.counter("policy.rejected_coupling") == 1

    def test_antientropy_period_unmanaged_without_the_layer(self):
        bus = build_cluster().parameter_bus()
        assert bus.manages("antientropy_period") is False
        with pytest.raises(PolicyError, match="not managed"):
            bus.propose("antientropy_period", 1.0)

    def test_accepted_transition_is_recorded(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gmax", 8, reason="test") is True
        assert bus.transitions() == 1
        transition = bus.history[0]
        assert transition == ParameterTransition(
            time=0.0, name="gmax", old=6.0, new=8.0, reason="test"
        )
        metrics = cluster.sim.metrics
        assert metrics.counter("policy.transitions") == 1
        assert metrics.histogram("policy.gmax").count == 1


# ----------------------------------------------------------- applier coherence


class TestApplierCoherence:
    def test_gmax_change_reaches_params_engine_and_bus(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gmax", 8) is True
        assert cluster.params.gmax == 8
        assert cluster.engine.config.gmax == 8
        assert bus.current("gmax") == 8

    def test_narrowing_bounds_rebalances_oversized_groups(self):
        cluster = build_cluster(nodes=18)
        bus = cluster.parameter_bus()
        # Narrow gmin before gmax (the coupling-safe order), then let the
        # enforce_bounds reconfigurations drain.
        assert bus.propose("gmin", 2) is True
        assert bus.propose("gmax", 4) is True
        cluster.run_for(60.0)
        sizes = [view.size for view in cluster.engine.groups.values()]
        assert max(sizes) <= 4
        cluster.engine.validate()

    def test_future_joiner_sees_adapted_bounds(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gmax", 8) is True
        node = cluster.join("late-1", contact="n0")
        cluster.run_for(30.0)
        assert node.params.gmax == 8  # AtumParameters is shared by reference

    def test_heartbeat_change_keeps_suspicion_window_and_monitors_aligned(self):
        cluster = build_cluster(enable_heartbeats=True)
        cluster.run_for(1.0)
        bus = cluster.parameter_bus()
        misses = cluster.params.heartbeat_config().misses_before_eviction
        assert bus.propose("heartbeat_period", 3.0) is True
        assert cluster._suspicion_window == 3.0 * misses
        monitors = [
            node.heartbeats for node in cluster.nodes.values() if node.heartbeats
        ]
        assert monitors
        # Adoption is next-tick: pending immediately, effective after a tick.
        assert all(monitor._pending_period == 3.0 for monitor in monitors)
        cluster.run_for(2.5)
        assert all(monitor._period == 3.0 for monitor in monitors)
        assert all(monitor.config.period == 3.0 for monitor in monitors)

    def test_gossip_fanout_cap_and_fast_path_restore(self):
        cluster = build_cluster()
        bus = cluster.parameter_bus()
        assert bus.propose("gossip_fanout", 2) is True
        assert cluster.params.gossip_fanout == 2
        cluster.run_for(16.0)
        # Restoring the full hc fanout stores None: the flood fast path.
        assert bus.propose("gossip_fanout", 3) is True
        assert cluster.params.gossip_fanout is None

    def test_antientropy_override_reaches_existing_and_late_nodes(self):
        cluster = build_cluster(antientropy=AntiEntropyConfig(period=5.0))
        bus = cluster.parameter_bus()
        assert bus.manages("antientropy_period") is True
        assert bus.propose("antientropy_period", 2.5) is True
        repairers = [
            node.antientropy for node in cluster.nodes.values() if node.antientropy
        ]
        assert repairers
        assert all(repairer._period == 2.5 for repairer in repairers)
        # The frozen shared config is untouched; the override is per repairer
        # and add_node re-applies it to joiners (apply_to_node).
        assert cluster.antientropy_config.period == 5.0
        node = cluster.join("late-1", contact="n0")
        cluster.run_for(30.0)
        assert node.antientropy._period == 2.5


# -------------------------------------------------------- disabled = identical


class TestDisabledPoliciesAreInert:
    def _seeded_run(self, with_disabled_policies):
        cluster = build_cluster(seed=11, enable_heartbeats=True)
        if with_disabled_policies:
            cluster.install_middleware(
                MiddlewareChain(
                    AdaptiveGroupSize(enabled=False),
                    AdaptiveHeartbeat(enabled=False),
                    AdaptiveGossip(enabled=False),
                    AdaptiveAntiEntropy(enabled=False),
                )
            )
        cluster.broadcast("n0", {"payload": 1})
        cluster.join("late-1", contact="n0")
        trace = []
        cluster.sim.run(until=40.0, trace=trace)
        return trace, cluster.sim.metrics.snapshot()

    def test_disabled_policies_keep_a_seeded_run_byte_identical(self):
        baseline_trace, baseline_metrics = self._seeded_run(False)
        padded_trace, padded_metrics = self._seeded_run(True)
        assert padded_trace == baseline_trace
        assert padded_metrics == baseline_metrics

    def test_disabled_policy_arms_no_timer_and_binds_no_bus(self):
        policy = AdaptiveGroupSize(enabled=False)
        assert policy.timer_period is None
        cluster = build_cluster()
        cluster.install_middleware(MiddlewareChain(policy))
        assert policy.bus is None
        # No bus means no ParameterBus was even constructed for the cluster.
        assert cluster._parameter_bus is None


# -------------------------------------------------------- adaptation under load


class TestAdaptationUnderLoad:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_churn_adaptation_transitions_with_zero_violations(self, seed):
        params = small_params(
            smr_kind=SmrKind.ASYNC, checkpoint_interval=2, request_timeout=2.0
        )
        cluster = AtumCluster(
            params,
            seed=seed,
            enable_heartbeats=True,
            antientropy=AntiEntropyConfig(period=4.0),
        )
        monitor = InvariantMonitor()
        cluster.attach_monitor(monitor)
        cluster.build_static([f"n{i}" for i in range(20)])
        chain = cluster.middleware_chain()
        for key in ("group_size", "heartbeat", "antientropy"):
            chain.add(POLICY_BUILDERS[key]())
        # Churn storm: a join (and a broadcast) every other second is well
        # above the policies' high-churn thresholds.
        for index in range(12):
            cluster.join(f"c{index}", contact="n0")
            cluster.run_for(1.0)
            cluster.broadcast(f"n{index % 8}", {"seq": index})
            cluster.run_for(1.0)
        for index in range(6):
            try:
                cluster.leave(f"c{index}")
            except MembershipError:
                pass  # join still in flight; the storm, not the leave, matters
            cluster.run_for(1.0)
        cluster.run_for(40.0)
        assert cluster.sim.metrics.counter("policy.transitions") >= 1
        assert monitor.finalize() == []
        cluster.engine.validate()
