"""Overlay layer: H-graph, gossip, random walks, shuffling, logarithmic grouping.

The overlay connects vgroups (paper section 3.2).  Its pieces:

* :class:`repro.overlay.hgraph.HGraph` -- a multigraph made of a constant
  number of random Hamiltonian cycles over the vgroups.
* :mod:`repro.overlay.random_walk` -- random walks over the H-graph, with bulk
  RNG and the two reply schemes (backward phase / certificate chains).
* :mod:`repro.overlay.guideline` -- the simulation that produces the paper's
  Figure 4 configuration guideline (optimal walk length per cycle count),
  based on a Pearson chi-square uniformity test.
* :mod:`repro.overlay.gossip` -- forwarding policies for gossip dissemination
  (random neighbours, flooding all cycles, a fixed number of cycles).
* :class:`repro.overlay.membership.MembershipEngine` -- the vgroup-granularity
  engine that executes joins, leaves, random-walk shuffling, and logarithmic
  grouping (splits and merges) on the simulator.
"""

from repro.overlay.hgraph import HGraph
from repro.overlay.random_walk import (
    WalkMode,
    BulkRng,
    structural_walk,
    RandomWalkOutcome,
)
from repro.overlay.gossip import ForwardPolicy, flood_policy, single_cycle_policy, random_policy
from repro.overlay.guideline import uniformity_pvalue, optimal_walk_length, guideline_table
from repro.overlay.membership import MembershipEngine, MembershipConfig

__all__ = [
    "HGraph",
    "WalkMode",
    "BulkRng",
    "structural_walk",
    "RandomWalkOutcome",
    "ForwardPolicy",
    "flood_policy",
    "single_cycle_policy",
    "random_policy",
    "uniformity_pvalue",
    "optimal_walk_length",
    "guideline_table",
    "MembershipEngine",
    "MembershipConfig",
]
