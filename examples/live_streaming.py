#!/usr/bin/env python3
"""AStream example: stream 1 MB/s of data to 30 nodes over a spanning forest.

Tier one (Atum) disseminates per-chunk digests with a single-cycle forward
policy; tier two pushes the data chunks down a forest in which every node has
f+1 parents, so Byzantine parents cannot prevent delivery.

Run with:  python examples/live_streaming.py
"""

from repro.apps.astream import AStreamSession
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind


def main() -> None:
    params = AtumParameters(
        hc=3, rwl=5, gmax=8, gmin=4, smr_kind=SmrKind.SYNC, round_duration=0.5,
        expected_system_size=30,
    )
    atum = AtumCluster(params, seed=3)
    addresses = [f"viewer-{i}" for i in range(30)]
    byzantine = ["viewer-11", "viewer-22"]
    atum.build_static(addresses, byzantine=byzantine)

    session = AStreamSession(
        atum,
        source="viewer-0",
        forward_policy="single",
        chunk_bytes=250_000,
        rate_bytes_per_s=1_000_000,
    )
    chunk_count = session.stream(duration_s=2.0)
    atum.run(until=120.0)

    fractions = [session.delivery_fraction(i) for i in range(chunk_count)]
    latencies = sorted(session.tier2_latencies())
    print(f"streamed {chunk_count} chunks of 250 KB (1 MB/s) to {len(addresses)} nodes "
          f"({len(byzantine)} Byzantine)")
    print(f"every chunk delivered to {min(fractions):.0%} of correct nodes")
    print(f"tier-2 latency: median {latencies[len(latencies) // 2] * 1000:.0f} ms, "
          f"p95 {latencies[int(len(latencies) * 0.95)] * 1000:.0f} ms")
    print(f"pull fallbacks used: {int(atum.sim.metrics.counter('astream.pulls'))}")


if __name__ == "__main__":
    main()
