"""Tests for the anti-entropy repair layer (repro.group.antientropy)."""

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters
from repro.faults import FaultPlan, Partition, apply_plan
from repro.faults.invariants import InvariantMonitor
from repro.group.antientropy import AntiEntropyConfig


def small_params(**overrides):
    defaults = dict(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5)
    defaults.update(overrides)
    return AtumParameters(**defaults)


def build_cluster(seed=9, nodes=16, antientropy=True, monitor=None, **kwargs):
    cluster = AtumCluster(
        small_params(),
        seed=seed,
        antientropy=AntiEntropyConfig() if antientropy else None,
        **kwargs,
    )
    if monitor is not None:
        cluster.attach_monitor(monitor)
    cluster.build_static([f"n{i}" for i in range(nodes)])
    return cluster


class TestWiring:
    def test_disabled_by_default(self):
        cluster = build_cluster(antientropy=False)
        assert all(node.antientropy is None for node in cluster.nodes.values())

    def test_enabled_component_runs_with_membership(self):
        cluster = build_cluster()
        node = cluster.nodes["n0"]
        assert node.antientropy is not None and node.antientropy.running
        cluster.leave("n0")
        cluster.run_until_membership_quiescent(max_time=60.0)
        assert not node.antientropy.running

    def test_delivered_broadcasts_are_stored(self):
        cluster = build_cluster()
        bcast_id = cluster.broadcast("n0", "payload")
        cluster.run(until=10.0)
        holders = [
            node
            for node in cluster.nodes.values()
            if bcast_id in node.antientropy.store
        ]
        assert len(holders) == len(cluster.nodes)
        assert holders[0].antientropy.store[bcast_id].payload == "payload"

    def test_store_is_bounded_by_the_summary_window(self):
        cluster = build_cluster(seed=15, nodes=8)
        # Shrink the window so the bound is cheap to exercise.
        for node in cluster.nodes.values():
            node.antientropy.config = AntiEntropyConfig(max_summary_ids=4)
        for index in range(12):
            cluster.sim.schedule(
                0.2 * index, lambda i=index: cluster.broadcast("n0", f"b{i}")
            )
        cluster.run(until=20.0)
        for node in cluster.nodes.values():
            store = node.antientropy.store
            assert len(store) <= 5  # cap + 25% slack
            # only the newest window survives
            assert set(store) <= set(node.delivered_order[-5:])
        assert cluster.sim.metrics.counter("ae.summary_window_truncated") > 0

    def test_quiet_system_exchanges_summaries_but_repairs_nothing(self):
        cluster = build_cluster(seed=13)
        cluster.broadcast("n0", "x")
        cluster.run(until=15.0)
        metrics = cluster.sim.metrics
        assert metrics.counter("ae.summaries_sent") > 0
        assert metrics.counter("ae.shares_resent") == 0
        assert metrics.counter("ae.reproposals") == 0


class TestRepair:
    def test_isolated_node_catches_up_after_heal(self):
        # n1 is fully cut off while a broadcast disseminates; without
        # anti-entropy it would stay divergent forever (no retransmission).
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=21, monitor=monitor)
        plan = FaultPlan(partitions=(Partition(members=("n1",), start=0.0, heal_at=6.0),))
        apply_plan(cluster, plan, monitor=monitor)
        ids = {}
        cluster.sim.schedule(1.0, lambda: ids.setdefault("id", cluster.broadcast("n0", "d")))
        cluster.run(until=5.0)
        assert not cluster.nodes["n1"].has_delivered(ids["id"])  # still cut
        cluster.run(until=30.0)
        assert cluster.nodes["n1"].has_delivered(ids["id"])  # repaired
        assert cluster.delivery_fraction(ids["id"]) == 1.0
        monitor.finalize()
        monitor.assert_clean()

    def test_two_sided_split_reconciles_both_directions(self):
        # Broadcasts originate on BOTH sides during the split; each side
        # diverges and anti-entropy must reconcile both after the heal.
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=23, nodes=20, monitor=monitor)
        addresses = sorted(cluster.nodes)
        side_a = tuple(addresses[0::2])
        side_b = tuple(addresses[1::2])
        plan = FaultPlan(
            partitions=(Partition(sides=(side_a, side_b), start=0.5, heal_at=6.0),)
        )
        apply_plan(cluster, plan, monitor=monitor)
        ids = {}
        cluster.sim.schedule(
            1.0, lambda: ids.setdefault("a", cluster.broadcast(side_a[0], "from-a"))
        )
        cluster.sim.schedule(
            1.0, lambda: ids.setdefault("b", cluster.broadcast(side_b[0], "from-b"))
        )
        cluster.run(until=5.5)
        # Divergence while split: neither broadcast crossed the cut.
        assert cluster.delivery_fraction(ids["a"]) < 1.0
        assert cluster.delivery_fraction(ids["b"]) < 1.0
        cluster.run(until=45.0)
        assert cluster.delivery_fraction(ids["a"]) == 1.0
        assert cluster.delivery_fraction(ids["b"]) == 1.0
        metrics = cluster.sim.metrics
        assert metrics.counter("ae.shares_resent") > 0
        monitor.finalize()
        monitor.assert_clean()

    def test_repair_respects_group_message_majority(self):
        # The repair path re-sends ordinary shares under the ordinary gm-id:
        # a single re-sender can never push a message past the majority rule
        # by itself, so acceptance counters only move once enough distinct
        # co-members re-sent.  Indirect check: repaired deliveries at the
        # healed node arrive through group-message accepts, not some side
        # channel -- the accept count grows between heal and repair.
        cluster = build_cluster(seed=27)
        plan = FaultPlan(partitions=(Partition(members=("n1",), start=0.0, heal_at=6.0),))
        apply_plan(cluster, plan)
        ids = {}
        cluster.sim.schedule(1.0, lambda: ids.setdefault("id", cluster.broadcast("n0", "d")))
        cluster.run(until=6.0)
        accepted_at_heal = cluster.sim.metrics.counter("group.messages_accepted")
        cluster.run(until=30.0)
        assert cluster.nodes["n1"].has_delivered(ids["id"])
        assert cluster.sim.metrics.counter("group.messages_accepted") > accepted_at_heal

    def test_byzantine_nodes_do_not_run_anti_entropy(self):
        cluster = build_cluster(seed=31)
        cluster.make_byzantine(["n2"], mode="silent")
        cluster.broadcast("n0", "x")
        before = cluster.sim.metrics.counter("ae.summaries_sent")
        cluster.run(until=10.0)
        total_after = cluster.sim.metrics.counter("ae.summaries_sent")
        assert total_after > before  # correct nodes gossip summaries
        # A deterministic upper bound: with one silent node, at most
        # (n - 1) * fanout summaries per completed tick round.
        config = cluster.nodes["n0"].antientropy.config
        ticks = int((10.0 - config.start_delay) / config.period) + 1
        assert total_after <= (len(cluster.nodes) - 1) * config.fanout * ticks


class TestCheckpointHints:
    def test_summaries_advertise_no_checkpoint_on_the_sync_engine(self):
        cluster = build_cluster(seed=41, nodes=8)
        node = cluster.nodes["n0"]
        assert node.smr_stable_checkpoint() is None
        captured = {}
        original = node.send_direct

        def spy(peer, kind, payload, size_bytes=256):
            if kind == "ae.summary":
                captured.setdefault("payload", payload)
            return original(peer, kind, payload, size_bytes=size_bytes)

        node.send_direct = spy
        cluster.run(until=5.0)
        ids, checkpoint = captured["payload"]
        assert isinstance(ids, tuple)
        assert checkpoint is None

    def test_summaries_advertise_the_stable_checkpoint_under_pbft(self):
        from repro.core.config import SmrKind

        cluster = AtumCluster(
            small_params().with_overrides(
                smr_kind=SmrKind.ASYNC, checkpoint_interval=2
            ),
            seed=43,
            antientropy=AntiEntropyConfig(),
        )
        cluster.build_static([f"n{i}" for i in range(8)])
        # Gossip-delivered broadcasts only grow the *origin vgroup's* log,
        # so drive two broadcasts through ONE vgroup to cross the interval.
        node = cluster.nodes["n0"]
        co_member = next(m for m in sorted(node.vgroup_view.members) if m != "n0")
        cluster.broadcast("n0", "a")
        cluster.broadcast(co_member, "b")
        cluster.run(until=20.0)
        assert node.smr_stable_checkpoint() == 2
        for member in node.vgroup_view.members:
            assert cluster.nodes[member].smr_stable_checkpoint() == 2

    def test_checkpoint_hint_from_non_co_member_is_ignored(self):
        from repro.core.config import SmrKind

        cluster = AtumCluster(
            small_params().with_overrides(
                smr_kind=SmrKind.ASYNC, checkpoint_interval=2
            ),
            seed=45,
            antientropy=AntiEntropyConfig(),
        )
        cluster.build_static([f"n{i}" for i in range(12)])
        cluster.run(until=1.0)
        node = cluster.nodes["n0"]
        outsider = next(
            address
            for address in sorted(cluster.nodes)
            if address not in node.vgroup_view.member_set
        )
        before = cluster.sim.metrics.counter("smr.checkpoint.gap_hints")
        node.on_checkpoint_hint(outsider, 99)
        assert cluster.sim.metrics.counter("smr.checkpoint.gap_hints") == before


class TestDeterminism:
    def test_antientropy_runs_are_replayable(self):
        def run():
            cluster = build_cluster(seed=37, nodes=20)
            addresses = sorted(cluster.nodes)
            plan = FaultPlan(
                partitions=(
                    Partition(
                        sides=(tuple(addresses[0::2]), tuple(addresses[1::2])),
                        start=0.5,
                        heal_at=5.0,
                    ),
                )
            )
            apply_plan(cluster, plan)
            cluster.sim.schedule(1.0, lambda: cluster.broadcast("n0", "d"))
            trace = []
            cluster.sim.run(until=25.0, trace=trace)
            return trace, dict(cluster.sim.metrics.counters)

        first_trace, first_counters = run()
        second_trace, second_counters = run()
        assert first_trace == second_trace
        assert first_counters == second_counters


class TestAntiLockstep:
    """Regression for the synchronized-retry pathology the backoff removed."""

    def drive(self, config, seed=33):
        # Hammer one repair key at a fixed poller cadence; the backoff gate
        # decides when a repair actually fires.  The storm watchdog counts
        # consecutive identical gaps between fired repairs.
        cluster = AtumCluster(small_params(), seed=seed, antientropy=config)
        cluster.build_static([f"n{i}" for i in range(8)])
        repair = cluster.nodes["n0"].antientropy

        def poll():
            repair._gate(repair._resend_backoff, ("bcast", "vg-1"))
            cluster.sim.schedule(0.25, poll)

        cluster.sim.schedule(0.25, poll)
        cluster.run(until=60.0)
        return cluster.sim.metrics.counter("ae.retry_storm")

    def test_fixed_cooldown_config_degenerates_into_a_retry_storm(self):
        # factor=1.0 + zero jitter reproduces the legacy fixed-cooldown
        # behaviour: every retry lands on the same metronome and the
        # watchdog flags it.
        degenerate = AntiEntropyConfig(backoff_factor=1.0, backoff_jitter=0.0)
        assert self.drive(degenerate) > 0

    def test_default_jittered_backoff_never_storms(self):
        assert self.drive(AntiEntropyConfig()) == 0
