"""Figure 4: configuration guideline -- optimal random-walk length vs H-graph cycles.

For each (number of vgroups, hc) pair, find the smallest random-walk length
whose end-point distribution passes a Pearson chi-square uniformity test at
confidence 0.99.  The paper's guideline shows rwl growing with the number of
vgroups and shrinking as the overlay gets denser (more cycles).
"""

import random

from repro.analysis import format_table
from repro.overlay.guideline import guideline_table


def _run(scale):
    group_counts = (8, 32, 128, 512) if scale == 1 else (8, 32, 128, 512, 2048)
    cycle_counts = (2, 4, 6, 8) if scale == 1 else (2, 4, 6, 8, 10, 12)
    table = guideline_table(
        group_counts=group_counts,
        cycle_counts=cycle_counts,
        rng=random.Random(0),
        samples_per_group=10 * scale,
        trials=1,
        max_rwl=25,
    )
    return table, group_counts, cycle_counts


def test_fig4_rwl_guideline(benchmark, scale):
    table, group_counts, cycle_counts = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    rows = []
    for num_groups in group_counts:
        row = {"vgroups": num_groups}
        for hc in cycle_counts:
            row[f"rwl@hc={hc}"] = table[num_groups][hc]
        rows.append(row)
    print()
    print(format_table(rows, title="Figure 4: optimal random walk length (rwl) per (vgroups, hc)"))

    # Shape checks from the paper's guideline:
    # (1) more vgroups require longer walks (at fixed density);
    for hc in cycle_counts:
        assert table[group_counts[0]][hc] <= table[group_counts[-1]][hc]
    # (2) denser overlays (more cycles) never require longer walks for the
    #     largest system in the sweep (allowing one step of test noise).
    largest = group_counts[-1]
    assert table[largest][cycle_counts[-1]] <= table[largest][cycle_counts[0]] + 1
    # (3) for the densities the paper recommends (hc >= 4), the magnitudes
    #     match Table 1's typical range for rwl (4..15, with slack for noise).
    for num_groups in group_counts[1:]:
        for hc in cycle_counts:
            if hc >= 4:
                assert 2 <= table[num_groups][hc] <= 16
