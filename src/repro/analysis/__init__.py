"""Analysis helpers used by the benchmark harness and tests.

* :mod:`repro.analysis.robustness` -- the binomial vgroup-robustness analysis
  of paper section 3.1 (probability that a vgroup, and all vgroups, stay
  robust given a node-failure probability), plus a Monte-Carlo cross-check.
* :mod:`repro.analysis.cdf` -- empirical CDFs and latency summaries used for
  Figure 8.
* :mod:`repro.analysis.tables` -- plain-text table formatting for benchmark
  output (the "rows the paper reports").
"""

from repro.analysis.robustness import (
    vgroup_failure_probability,
    all_vgroups_robust_probability,
    monte_carlo_vgroup_failure,
    optimal_group_size_table,
)
from repro.analysis.cdf import empirical_cdf, latency_summary, fraction_below
from repro.analysis.tables import format_table, format_cdf_rows

__all__ = [
    "vgroup_failure_probability",
    "all_vgroups_robust_probability",
    "monte_carlo_vgroup_failure",
    "optimal_group_size_table",
    "empirical_cdf",
    "latency_summary",
    "fraction_below",
    "format_table",
    "format_cdf_rows",
]
