"""ATL009 fixture: pre-pipeline hook wiring patterns that must not return."""


def wire_injector(cluster, injector):
    cluster.network.install_fault_injector(injector)


def unwire_injector(cluster):
    cluster.network.clear_fault_injector()


def wire_observer(node, monitor):
    node.delivery_observer = monitor.observe


def wire_audit(messenger, monitor):
    messenger.accept_audit = monitor.audit


def notify_directly(cluster, view, address):
    cluster.monitor.on_view_change(view)
    cluster.monitor.on_eviction(address)


def wrap_delivery(node, observer):
    previous = node.deliver_fn

    def deliver(message):
        observer(message)
        if previous is not None:
            previous(message)

    node.deliver_fn = deliver if previous else node.deliver_fn
