"""ATL006 fixture: registered names pass; a probe name carries a waiver."""


def report(metrics):
    metrics.increment("invariants.check_errors")
    metrics.counters["invariants.check_errors"] += 1
    # atumlint: allow[ATL006] fixture: probe metric only ever read inside this fixture
    metrics.increment("fixture.probe")
