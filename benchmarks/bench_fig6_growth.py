"""Figure 6: system growth speed.

Grows Sync and Async systems to 800 (and, at higher scale, 1400) nodes by
joining nodes at 8% of the current system size per minute, and reports the
size-over-time curve.  The paper observes exponential growth: because joins
land in randomly selected vgroups, many of them proceed concurrently, so the
absolute growth rate increases with system size.
"""

from repro.analysis import format_table
from repro.core.config import AtumParameters, SmrKind
from repro.group.cost import GroupCostModel
from repro.overlay.membership import MembershipEngine
from repro.sim import Simulator
from repro.workloads import GrowthConfig, GrowthWorkload


def _grow(kind: SmrKind, target: int, seed: int) -> GrowthWorkload:
    params = AtumParameters.for_system_size(target, kind)
    sim = Simulator(seed=seed)
    latency = 0.001 if kind is SmrKind.SYNC else 0.05
    engine = MembershipEngine(
        sim,
        params.membership_config(),
        params.cost_model(network_latency=latency),
    )
    workload = GrowthWorkload(
        engine,
        GrowthConfig(
            target_size=target,
            join_fraction_per_minute=0.08,
            provisioning_delay=30.0,
            max_duration=40_000.0,
        ),
    )
    workload.run()
    return workload


def _run(scale):
    targets = [800] if scale == 1 else [800, 1400]
    results = {}
    for kind in (SmrKind.SYNC, SmrKind.ASYNC):
        for target in targets:
            results[(kind, target)] = _grow(kind, target, seed=target)
    return results, targets


def test_fig6_growth(benchmark, scale):
    results, targets = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    rows = []
    for (kind, target), workload in results.items():
        checkpoints = {
            f"t_to_{fraction_label}": workload.time_to_reach(int(target * fraction))
            for fraction_label, fraction in (("25%", 0.25), ("50%", 0.5), ("100%", 1.0))
        }
        rows.append(
            {
                "engine": kind.value,
                "target_size": target,
                "reached": int(workload.engine.system_size),
                **{k: (round(v, 1) if v is not None else None) for k, v in checkpoints.items()},
                "exchange_completion": round(workload.exchange_completion_rate(), 3),
            }
        )
    print()
    print(format_table(rows, title="Figure 6: growth to target size at 8%/minute join rate"))

    for (kind, target), workload in results.items():
        assert workload.engine.system_size == target
        quarter = workload.time_to_reach(int(target * 0.25))
        half = workload.time_to_reach(int(target * 0.5))
        full = workload.time_to_reach(target)
        # Exponential growth: the second half of the growth is faster than the
        # first half (paper Figure 6's upward-curving lines).
        assert (full - half) < (half - quarter) * 1.2
        workload.engine.validate()
