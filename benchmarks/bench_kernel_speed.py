"""Kernel speed: events/sec of the simulation hot paths vs the pre-PR kernel.

Unlike the figure benchmarks, this one measures the *harness itself*: how many
simulation events per second the kernel sustains on a pure scheduler workload
and on a message-dense mixed workload (events + per-event metrics + payload
digests + percentile queries).  It writes ``BENCH_kernel.json`` at the repo
root with both the recorded pre-optimisation baseline and the current numbers,
starting the repo's perf trajectory: future PRs are held to these numbers.

The assertion uses the ``mixed`` scenario — the shape of the paper-figure
benchmarks — and a floor well below the measured speedup (~7x at the time of
writing) so only gross regressions fail while machine-to-machine variance
does not.
"""

import json
import os

from repro.sim.perf import BASELINE_EVENTS_PER_SEC, TARGET_SPEEDUP, write_report

REPORT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_kernel.json")


def test_kernel_speed(benchmark, scale):
    repeats = max(3, scale)
    report = benchmark.pedantic(
        write_report, args=(REPORT_PATH,), kwargs={"repeats": repeats}, rounds=1, iterations=1
    )
    print()
    print(json.dumps(report, indent=2, sort_keys=True))

    scenarios = report["scenarios"]
    for name in ("events", "mixed"):
        entry = scenarios[name]
        assert entry["baseline_events_per_sec"] == BASELINE_EVENTS_PER_SEC[name]
        assert entry["current_events_per_sec"] > 0

    # The optimised kernel must beat the pre-PR kernel by the target factor on
    # the message-dense scenario, and must not have regressed on the pure
    # scheduler scenario.
    assert scenarios["mixed"]["speedup"] >= TARGET_SPEEDUP
    assert scenarios["events"]["speedup"] >= 1.5
