"""Asynchronous (eventually synchronous) SMR in the style of PBFT.

This is the engine of the paper's *Async* implementation.  The protocol is the
classic three-phase commit of Castro & Liskov: the primary of the current view
assigns sequence numbers with PRE-PREPARE, replicas exchange PREPARE and
COMMIT, and an operation executes once ``2f + 1`` replicas have committed it
locally.  Safety holds under asynchrony; liveness needs eventual synchrony and
is restored through view changes when the primary is unresponsive.

Reconfiguration follows the SMART idea adapted by the paper: membership
changes are ordinary decided operations, and installing one starts a new
configuration epoch with a fresh view/sequence space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.digest import digest_object
from repro.crypto.keys import KeyRegistry
from repro.sim.simulator import Simulator
from repro.smr.base import Operation, SmrConfig, SmrReplica, async_fault_threshold
from repro.smr.checkpoint import CheckpointCertificate, CheckpointManager


# --------------------------------------------------------------------------- messages


@dataclass
class PbftRequest:
    """A client-style request forwarded to the primary.

    ``repropose`` marks an anti-entropy re-proposal of an operation the
    sender knows was decided before: receivers must not drop it on their
    executed-operation dedup, or members that missed the original decision
    could never be re-served through the agreement engine.
    """

    operation: Operation
    epoch: int
    repropose: bool = False


@dataclass
class PbftPrePrepare:
    epoch: int
    view: int
    seq: int
    digest: str
    operation: Operation


@dataclass
class PbftPrepare:
    epoch: int
    view: int
    seq: int
    digest: str
    replica: str


@dataclass
class PbftCommit:
    epoch: int
    view: int
    seq: int
    digest: str
    replica: str


@dataclass
class PbftViewChange:
    epoch: int
    new_view: int
    replica: str
    # (view, seq, digest, operation) tuples this replica prepared.  Carrying
    # the operations (not just digests) lets the new primary re-propose
    # them, which is what preserves decided prefixes across a view change:
    # quorum intersection guarantees every committed operation is prepared
    # at one of the 2f+1 voters.  The view matters because sequence numbers
    # are per-view: the new primary must prefer the highest-view prepared
    # entry for a sequence slot, or a straggler's stale prepared operation
    # could displace one committed later under the same bare seq.
    prepared: Tuple[Tuple[int, int, str, Operation], ...]
    # The voter's stable checkpoint certificate (None when checkpointing is
    # disabled or no checkpoint is stable yet).  Carrying it lets the new
    # view reference operations that were garbage-collected below the
    # checkpoint: laggards state-transfer to the certificate instead of
    # relying on re-proposals that no longer exist.
    checkpoint: Optional[CheckpointCertificate] = None


@dataclass
class PbftNewView:
    epoch: int
    new_view: int
    operations: Tuple[Tuple[int, Operation], ...]  # (seq, operation) to re-propose
    # Highest valid stable-checkpoint certificate among the view-change
    # votes; replicas whose decided log is shorter must install it through
    # state transfer before executing this view's re-proposals.
    checkpoint: Optional[CheckpointCertificate] = None


# --------------------------------------------------------------------------- state


@dataclass
class _SlotState:
    """Per-(view, seq) agreement state."""

    digest: Optional[str] = None
    operation: Optional[Operation] = None
    pre_prepared: bool = False
    prepares: Set[str] = field(default_factory=set)
    commits: Set[str] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False
    executed: bool = False


class PbftReplica(SmrReplica):
    """A PBFT replica embedded inside an Atum node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        members: Sequence[str],
        registry: KeyRegistry,
        send_fn: Callable[[str, Any, int], None],
        decide_fn: Callable[[Operation], None],
        config: Optional[SmrConfig] = None,
    ) -> None:
        super().__init__(sim, node_id, members, registry, send_fn, decide_fn, config)
        self.epoch = 0
        self.view = 0
        self.next_seq = 0            # next sequence number assigned by the primary
        self.last_executed = -1      # highest contiguously executed sequence number
        self._slots: Dict[Tuple[int, int], _SlotState] = {}
        self._executed_ops: Set[str] = set()
        self._pending_requests: Dict[str, Operation] = {}
        self._view_change_votes: Dict[int, Dict[str, PbftViewChange]] = {}
        self._view_change_timer_armed = False
        # Checkpointing/state transfer (repro.smr.checkpoint) is created
        # only when configured: a disabled manager would still be one
        # attribute but MUST schedule nothing, keeping legacy runs
        # byte-identical.
        self.checkpoints: Optional[CheckpointManager] = None
        if self.config.checkpoint_interval > 0:
            self.checkpoints = CheckpointManager(self)

    # ------------------------------------------------------------------ queries

    @property
    def fault_threshold(self) -> int:
        return async_fault_threshold(len(self.members))

    @property
    def primary(self) -> str:
        if not self.members:
            return self.node_id
        ordered = sorted(self.members)
        return ordered[self.view % len(ordered)]

    def is_primary(self) -> bool:
        return self.primary == self.node_id

    def _quorum_2f1(self) -> int:
        return 2 * self.fault_threshold + 1

    def _quorum_2f(self) -> int:
        return 2 * self.fault_threshold

    # -------------------------------------------------------------------- API

    def propose(self, operation: Operation) -> None:
        """Submit an operation; it is forwarded to the primary of this view."""
        if not self.running:
            return
        if operation.op_id in self._executed_ops:
            return
        self._pending_requests[operation.op_id] = operation
        self._arm_view_change_timer()
        if self.is_primary():
            self._assign_and_preprepare(operation)
        else:
            # Send the request to every replica (not just the primary): backups
            # record it as pending so their view-change timers can guarantee
            # liveness if the primary is faulty, and a future primary can
            # re-propose it without needing the original proposer.
            request = PbftRequest(operation=operation, epoch=self.epoch)
            self._broadcast(request)

    def repropose(self, operation: Operation) -> None:
        """Re-submit a previously decided operation for a fresh agreement.

        Bypasses the executed-operation dedup of :meth:`propose` on both the
        send and receive side (``PbftRequest.repropose``): re-deciding at a
        new sequence number is how anti-entropy re-serves an operation to
        members that missed the original decision — members that already
        executed it skip the duplicate on its op id at execution time, and
        repeated identical re-proposals collapse onto one current-view slot
        through the duplicate-digest check.  (A member stalled at an
        execution gap in the current view still catches up through the next
        view change, whose votes carry every prepared operation.)
        """
        if not self.running:
            return
        self._pending_requests[operation.op_id] = operation
        self._arm_view_change_timer()
        if self.is_primary():
            self._assign_and_preprepare(operation)
        else:
            self._broadcast(
                PbftRequest(operation=operation, epoch=self.epoch, repropose=True)
            )

    def on_message(self, payload: Any, sender: str) -> None:
        if not self.running:
            return
        if isinstance(payload, PbftRequest):
            self._on_request(payload, sender)
        elif isinstance(payload, PbftPrePrepare):
            self._on_pre_prepare(payload, sender)
        elif isinstance(payload, PbftPrepare):
            self._on_prepare(payload, sender)
        elif isinstance(payload, PbftCommit):
            self._on_commit(payload, sender)
        elif isinstance(payload, PbftViewChange):
            self._on_view_change(payload, sender)
        elif isinstance(payload, PbftNewView):
            self._on_new_view(payload, sender)
        elif self.checkpoints is not None:
            self.checkpoints.handle(payload, sender)

    def reconfigure(
        self,
        new_members: Sequence[str],
        epoch: Optional[int] = None,
        carry_certificates: bool = True,
    ) -> None:
        """Install a new configuration epoch with a fresh agreement state.

        ``epoch`` is the group-synchronized epoch to adopt (the vgroup
        view's own counter); omitting it keeps the legacy per-replica
        ``+1``, which only works when every co-member's replica has seen
        the same number of reconfigurations.  Transition statements embed
        the epoch, so divergent epochs make co-members reject each
        other's votes and no transition record ever forms.
        """
        previous_members = tuple(sorted(self.members))
        super().reconfigure(new_members)
        self.epoch = self.epoch + 1 if epoch is None else epoch
        self.view = 0
        self.next_seq = 0
        self.last_executed = -1
        self._slots.clear()
        self._view_change_votes.clear()
        if carry_certificates:
            if self.checkpoints is not None:
                # Epoch-scoped state resets, but the outgoing epoch's best
                # certificate is carried forward and re-anchored into this
                # epoch by a 2f+1-of-new-members transition record.
                self.checkpoints.on_epoch_change(previous_members)
        else:
            # Re-homed into a different group: the certificates AND the
            # decided log describe agreements this group never ran.  The
            # log's chained digest diverges from the new group's lineage
            # at position zero, so keeping it would make every certified
            # transfer here fail digest verification forever — the
            # replica starts over as a fresh member and catches up
            # through ordinary state transfer.  Nothing is delivered
            # twice: re-executed operations dedup upstream on their
            # broadcast id.
            self.decided_log.clear()
            self._executed_ops.clear()
            if self.checkpoints is not None:
                self.checkpoints.reset_for_epoch()
                self.checkpoints.forget_log()
        # Pending requests survive the epoch change and are re-proposed.
        pending = list(self._pending_requests.values())
        self._pending_requests.clear()
        for operation in pending:
            if operation.op_id not in self._executed_ops:
                self.propose(operation)

    # ---------------------------------------------------------------- protocol

    def _on_request(self, request: PbftRequest, sender: str) -> None:
        if request.epoch != self.epoch:
            return
        operation = request.operation
        if operation.op_id in self._executed_ops and not request.repropose:
            return
        self._pending_requests.setdefault(operation.op_id, operation)
        self._arm_view_change_timer()
        if self.is_primary():
            self._assign_and_preprepare(operation)

    def _assign_and_preprepare(self, operation: Operation) -> None:
        digest = digest_object(operation)
        # Duplicate suppression must only consider *current-view* slots:
        # prepared slots of earlier views are retained for view-change votes
        # (see _on_new_view), and matching against them would make the new
        # primary silently skip re-proposing exactly the operations the
        # view change carried over.
        for (view, _seq), slot in self._slots.items():
            if view == self.view and slot.digest == digest:
                return  # already assigned a sequence number in this view
        seq = self.next_seq
        self.next_seq += 1
        pre_prepare = PbftPrePrepare(
            epoch=self.epoch, view=self.view, seq=seq, digest=digest, operation=operation
        )
        self.sim.metrics.increment("smr.pbft.pre_prepares")
        self._broadcast(pre_prepare)
        self._on_pre_prepare(pre_prepare, self.node_id)

    def _slot(self, view: int, seq: int) -> _SlotState:
        return self._slots.setdefault((view, seq), _SlotState())

    def _on_pre_prepare(self, message: PbftPrePrepare, sender: str) -> None:
        if message.epoch != self.epoch or message.view != self.view:
            return
        expected_primary = sorted(self.members)[message.view % len(self.members)]
        if sender != expected_primary and sender != self.node_id:
            return
        if digest_object(message.operation) != message.digest:
            return
        slot = self._slot(message.view, message.seq)
        if slot.pre_prepared and slot.digest != message.digest:
            # Equivocating primary; trigger a view change.
            self._start_view_change()
            return
        slot.pre_prepared = True
        slot.digest = message.digest
        slot.operation = message.operation
        self._pending_requests.setdefault(message.operation.op_id, message.operation)
        self._arm_view_change_timer()
        prepare = PbftPrepare(
            epoch=self.epoch,
            view=message.view,
            seq=message.seq,
            digest=message.digest,
            replica=self.node_id,
        )
        self._broadcast(prepare)
        self._record_prepare(slot, self.node_id, message.view, message.seq, message.digest)

    def _on_prepare(self, message: PbftPrepare, sender: str) -> None:
        if message.epoch != self.epoch or message.view != self.view:
            return
        slot = self._slot(message.view, message.seq)
        if slot.digest is not None and slot.digest != message.digest:
            return
        self._record_prepare(slot, message.replica, message.view, message.seq, message.digest)

    def _record_prepare(
        self, slot: _SlotState, replica: str, view: int, seq: int, digest: str
    ) -> None:
        slot.prepares.add(replica)
        if slot.prepared or not slot.pre_prepared:
            return
        # prepared == pre-prepare plus 2f matching prepares from distinct replicas
        if len(slot.prepares) >= self._quorum_2f() + 1 or len(self.members) == 1:
            slot.prepared = True
            commit = PbftCommit(
                epoch=self.epoch, view=view, seq=seq, digest=digest, replica=self.node_id
            )
            self._broadcast(commit)
            self._record_commit(slot, self.node_id)

    def _on_commit(self, message: PbftCommit, sender: str) -> None:
        if message.epoch != self.epoch or message.view != self.view:
            return
        slot = self._slot(message.view, message.seq)
        if slot.digest is not None and slot.digest != message.digest:
            return
        self._record_commit(slot, message.replica)

    def _record_commit(self, slot: _SlotState, replica: str) -> None:
        slot.commits.add(replica)
        if slot.committed or not slot.prepared:
            return
        if len(slot.commits) >= self._quorum_2f1() or len(self.members) == 1:
            slot.committed = True
            self._execute_ready()

    def _execute_ready(self) -> None:
        """Execute committed slots in sequence order, without gaps."""
        if self.checkpoints is not None and self.checkpoints.transfer_blocking:
            # A certified checkpoint ahead of our decided log is known but
            # not installed yet.  Executing newer slots first (a new view's
            # re-proposals, say) would append operations past the missing
            # prefix and diverge; execution resumes when the state transfer
            # installs (see CheckpointManager / _after_state_install).
            return
        progressed = True
        while progressed:
            progressed = False
            seq = self.last_executed + 1
            slot = self._slots.get((self.view, seq))
            if slot is None or not slot.committed or slot.executed:
                break
            slot.executed = True
            self.last_executed = seq
            progressed = True
            operation = slot.operation
            if operation is not None:
                # Clear pending state even for duplicate executions (re-
                # proposed operations), or the view-change timer would keep
                # firing for an entry that can never execute "again".
                self._pending_requests.pop(operation.op_id, None)
                if operation.op_id not in self._executed_ops:
                    self._executed_ops.add(operation.op_id)
                    self._commit(operation)
        if not self._pending_requests:
            self._view_change_timer_armed = False

    def _commit(self, operation: Operation) -> None:
        super()._commit(operation)
        if self.checkpoints is not None:
            self.checkpoints.on_committed(operation)

    # ------------------------------------------------------ checkpointing hooks

    def _gc_below_checkpoint(self, stable_seq: int, positions: Dict[str, int]) -> None:
        """Garbage-collect executed slots covered by a stable checkpoint.

        Executed implies prepared, so dropped slots stop feeding future
        view-change votes — that is safe precisely *because* the checkpoint
        is certified: a replica that needs the dropped operations recovers
        them through state transfer (the certificate travels with every
        view-change vote), not through re-proposals.  Slots whose operation
        position is unknown are conservatively retained.
        """
        dead = [
            key
            for key, slot in self._slots.items()
            if slot.executed
            and slot.operation is not None
            and positions.get(slot.operation.op_id, stable_seq) < stable_seq
        ]
        for key in dead:
            del self._slots[key]
        if dead:
            self.sim.metrics.increment("smr.checkpoint.slots_gc", len(dead))

    def _after_state_install(self, realign: bool) -> None:
        """Resume after a state transfer installed the certified prefix.

        First drain whatever the transfer unblocked (new-view re-proposals
        commit while execution pauses).  When the transfer was triggered
        outside a view change (announce or anti-entropy hint), additionally
        start one: the current view's slot numbering predates the gap, so
        committed-but-stuck slots — and any decided tail beyond the last
        checkpoint — are only reachable through the view change's carried
        re-proposals, which every vote still retains for unGC'd slots.
        """
        self._execute_ready()
        if realign and self.running and len(self.members) > 1:
            target = (
                self.checkpoints.peer_view_seen + 1
                if self.checkpoints is not None
                else None
            )
            self._start_view_change(target=target)

    # -------------------------------------------------------------- view change

    def _arm_view_change_timer(self) -> None:
        if self._view_change_timer_armed or not self.running:
            return
        self._view_change_timer_armed = True
        timeout = self.config.request_timeout
        armed_for_view = self.view
        armed_epoch = self.epoch

        def check() -> None:
            self._view_change_timer_armed = False
            if not self.running or self.epoch != armed_epoch:
                return
            if not self._pending_requests:
                return
            if self.view == armed_for_view:
                self._start_view_change()
            # Keep the timer running until the pending requests execute, so
            # repeated faulty primaries trigger successive view changes.
            self._arm_view_change_timer()

        self.sim.schedule(timeout, check, tag=f"{self.node_id}:pbft-vc")

    def _prepared_slots(self) -> Tuple[Tuple[int, int, str, "Operation"], ...]:
        """(view, seq, digest, operation) of every retained prepared slot.

        Includes prepared slots from *earlier* views of this epoch (they are
        deliberately retained across view changes): an operation committed
        in view v must keep appearing in view-change votes for v+2, v+3, …
        or a chain of view changes would forget it and break the decided
        prefix.
        """
        return tuple(
            (view, seq, slot.digest or "", slot.operation)
            for (view, seq), slot in sorted(self._slots.items())
            if slot.prepared and slot.operation is not None
        )

    def _stable_certificate(self) -> Optional[CheckpointCertificate]:
        return self.checkpoints.stable if self.checkpoints is not None else None

    def _start_view_change(self, target: Optional[int] = None) -> None:
        """Vote for a view change to ``max(view + 1, target)``.

        ``target`` lets recovery paths (checkpoint tail catch-up, post-
        transfer realign) propose past views they only know from peer
        announces: co-replicas ignore view-change votes at or below their
        own view, so a straggler several views behind must aim above the
        highest view it has seen announced or its vote gathers no quorum.
        """
        new_view = max(self.view + 1, target if target is not None else 0)
        message = PbftViewChange(
            epoch=self.epoch,
            new_view=new_view,
            replica=self.node_id,
            prepared=self._prepared_slots(),
            checkpoint=self._stable_certificate(),
        )
        self.sim.metrics.increment("smr.pbft.view_changes")
        self._broadcast(message)
        self._on_view_change(message, self.node_id)

    def _on_view_change(self, message: PbftViewChange, sender: str) -> None:
        if message.epoch != self.epoch or message.new_view <= self.view:
            return
        votes = self._view_change_votes.setdefault(message.new_view, {})
        fresh_voter = message.replica not in votes
        votes[message.replica] = message
        # Join the view change when another replica started it; this avoids
        # waiting for our own timeout and gets the new primary its quorum.
        if self.node_id not in votes:
            own = PbftViewChange(
                epoch=self.epoch,
                new_view=message.new_view,
                replica=self.node_id,
                prepared=self._prepared_slots(),
                checkpoint=self._stable_certificate(),
            )
            votes[self.node_id] = own
            self._broadcast(own)
        elif fresh_voter and message.replica != self.node_id:
            # We already voted for this view, but that broadcast may predate
            # a partition the fresh voter sat behind — notably a healed
            # straggler that is itself the view's new primary, which then
            # waits forever on votes it never received.  Re-send our vote
            # straight to the newcomer, rebuilt with the *current* prepared
            # slots: operations committed since the original vote must ride
            # along or the new view would forget them.  Only a first-time
            # voter triggers the resend, so two replicas exchanging stored
            # votes cannot ping-pong.
            own = PbftViewChange(
                epoch=self.epoch,
                new_view=message.new_view,
                replica=self.node_id,
                prepared=self._prepared_slots(),
                checkpoint=self._stable_certificate(),
            )
            votes[self.node_id] = own
            self.sim.metrics.increment("smr.pbft.view_change_revotes")
            self.send_fn(message.replica, own, self.config.message_bytes)
        ordered = sorted(self.members)
        new_primary = ordered[message.new_view % len(ordered)]
        if new_primary != self.node_id:
            return
        if len(votes) >= self._quorum_2f1() or len(self.members) <= 2:
            self._emit_new_view(message.new_view)

    def _emit_new_view(self, new_view: int) -> None:
        # Carry over every operation some view-change voter prepared in the
        # old view, in original sequence order, *before* queued requests:
        # quorum intersection puts every committed operation among the 2f+1
        # votes, so replicas that missed its commit (partitioned, lagging)
        # re-execute it at the same relative position — decided prefixes
        # survive the view change.  Replicas that already executed an op
        # skip the duplicate on its op id.
        votes = self._view_change_votes.get(new_view, {})
        # Sequence numbers are per-view, so carried slots are keyed by the
        # full (view, seq) pair — a straggler's stale view-(v-1) prepared
        # operation never displaces one committed under the same bare seq
        # in view v.  Lexicographic (view, seq) order IS the execution
        # order within an epoch (each new view re-executes carried ops
        # before new ones), and deduping by op id on first appearance
        # keeps every operation at its original rank, so the carry is
        # prefix-preserving across *chains* of view changes.  Conflicting
        # claims for one slot resolve deterministically by replica order.
        carried: Dict[Tuple[int, int], Operation] = {}
        best_certificate: Optional[CheckpointCertificate] = None
        for replica in sorted(votes):
            for old_view, old_seq, _digest, operation in votes[replica].prepared:
                if operation is not None and (old_view, old_seq) not in carried:
                    carried[(old_view, old_seq)] = operation
            vote_certificate = votes[replica].checkpoint
            if (
                self.checkpoints is not None
                and vote_certificate is not None
                and (
                    best_certificate is None
                    or vote_certificate.seq > best_certificate.seq
                )
                and self.checkpoints.valid_certificate(vote_certificate)
            ):
                best_certificate = vote_certificate
        operations: List[Tuple[int, Operation]] = []
        seq = 0
        seen: Set[str] = set()
        for slot_key in sorted(carried):
            operation = carried[slot_key]
            if operation.op_id in seen:
                continue
            seen.add(operation.op_id)
            operations.append((seq, operation))
            seq += 1
        # Then everything still pending (prepared-but-uncarried and queued).
        for operation in self._pending_requests.values():
            if operation.op_id in self._executed_ops or operation.op_id in seen:
                continue
            seen.add(operation.op_id)
            operations.append((seq, operation))
            seq += 1
        new_view_message = PbftNewView(
            epoch=self.epoch,
            new_view=new_view,
            operations=tuple(operations),
            checkpoint=best_certificate,
        )
        self._broadcast(new_view_message)
        self._on_new_view(new_view_message, self.node_id)

    def _on_new_view(self, message: PbftNewView, sender: str) -> None:
        if message.epoch != self.epoch or message.new_view <= self.view:
            return
        ordered = sorted(self.members)
        expected_primary = ordered[message.new_view % len(ordered)]
        if sender not in (expected_primary, self.node_id):
            return
        self.view = message.new_view
        self.next_seq = 0
        self.last_executed = -1
        # Keep prepared slots of earlier views: they feed future view-change
        # votes (see _prepared_slots), which is what lets committed
        # operations survive a chain of view changes.  Unprepared old slots
        # are dead state and are dropped.
        self._slots = {
            key: slot
            for key, slot in self._slots.items()
            if key[0] >= self.view or slot.prepared
        }
        self.sim.metrics.increment("smr.pbft.new_views")
        if self.checkpoints is not None and message.checkpoint is not None:
            # A certified checkpoint ahead of our log means operations were
            # garbage-collected out of the carried re-proposals; install it
            # through state transfer before executing anything in this view
            # (execution blocks until the transfer completes).
            self.checkpoints.on_new_view_certificate(message.checkpoint)
        if self.is_primary():
            for _, operation in message.operations:
                self._assign_and_preprepare(operation)
        if self._pending_requests:
            self._arm_view_change_timer()


__all__ = [
    "PbftReplica",
    "PbftRequest",
    "PbftPrePrepare",
    "PbftPrepare",
    "PbftCommit",
    "PbftViewChange",
    "PbftNewView",
]
