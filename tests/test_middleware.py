"""Tests for the message-path middleware pipeline (repro.core.middleware).

Covers the chain semantics (ordering, short-circuit, loud double install),
per-hook exception propagation, exactly-once eviction notification across
the three eviction paths, and the determinism contract: installing an empty
chain (or adding a pure-observer middleware) leaves the stored golden
traces byte-identical.
"""

import json
import os

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind
from repro.core.middleware import (
    HOOK_NAMES,
    MetricsTap,
    Middleware,
    MiddlewareChain,
    MiddlewareContext,
    MiddlewareError,
    run_hooks,
)
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.overlay.membership import MembershipError
from repro.sim.simulator import Simulator


def small_params(**overrides):
    defaults = dict(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5)
    defaults.update(overrides)
    return AtumParameters(**defaults)


def build_cluster(seed=9, nodes=16, **cluster_kwargs):
    cluster = AtumCluster(small_params(), seed=seed, **cluster_kwargs)
    cluster.build_static([f"n{i}" for i in range(nodes)])
    return cluster


class Recorder(Middleware):
    """Records every hook invocation as (hook, detail) tuples."""

    def __init__(self, name="recorder"):
        self.name = name
        self.events = []

    def on_send(self, ctx):
        self.events.append(("on_send", self.name, ctx.receiver))

    def on_deliver(self, ctx):
        self.events.append(("on_deliver", self.name, ctx.channel, ctx.address))

    def on_view_change(self, ctx):
        self.events.append(("on_view_change", self.name, ctx.view.group_id))

    def on_eviction(self, ctx):
        self.events.append(("on_eviction", self.name, ctx.address))

    def on_node_added(self, ctx):
        self.events.append(("on_node_added", self.name, ctx.address))

    def on_node_left(self, ctx):
        self.events.append(("on_node_left", self.name, ctx.address))


# ------------------------------------------------------------ chain semantics


class TestChainSemantics:
    def test_empty_chain_compiles_every_hook_to_none(self):
        chain = MiddlewareChain()
        for name in HOOK_NAMES:
            assert chain.hooks(name) is None

    def test_only_overridden_hooks_enter_the_pipeline(self):
        class DeliverOnly(Middleware):
            def on_deliver(self, ctx):
                pass

        chain = MiddlewareChain(DeliverOnly())
        assert chain.hooks("on_deliver") is not None
        assert chain.hooks("on_send") is None
        assert chain.hooks("on_eviction") is None

    def test_middleware_run_in_insertion_order(self):
        order = []

        class Tagged(Middleware):
            def __init__(self, tag):
                self.tag = tag

            def on_deliver(self, ctx):
                order.append(self.tag)

        chain = MiddlewareChain(Tagged("first"), Tagged("second"), Tagged("third"))
        run_hooks(chain.hooks("on_deliver"), MiddlewareContext("on_deliver"))
        assert order == ["first", "second", "third"]

    def test_stop_short_circuits_the_remaining_middleware(self):
        order = []

        class Stopper(Middleware):
            def on_deliver(self, ctx):
                order.append("stopper")
                ctx.stop = True

        class Never(Middleware):
            def on_deliver(self, ctx):
                order.append("never")

        chain = MiddlewareChain(Stopper(), Never())
        run_hooks(chain.hooks("on_deliver"), MiddlewareContext("on_deliver"))
        assert order == ["stopper"]

    def test_duplicate_add_raises(self):
        middleware = Recorder()
        chain = MiddlewareChain(middleware)
        with pytest.raises(MiddlewareError, match="already in the chain"):
            chain.add(middleware)

    def test_late_add_recompiles_subscribed_installers(self):
        chain = MiddlewareChain()
        recompiles = []
        chain.subscribe(lambda: recompiles.append(len(chain)))
        chain.add(Recorder())
        chain.add(Recorder())
        assert recompiles == [1, 2]

    def test_metrics_tap_send_counting_is_an_instance_level_opt_in(self):
        plain, counting = MetricsTap(), MetricsTap(count_sends=True)
        assert MiddlewareChain(plain).hooks("on_send") is None
        assert MiddlewareChain(counting).hooks("on_send") is not None


# ------------------------------------------------------------- double install


class TestDoubleInstallIsLoud:
    def test_second_cluster_chain_raises(self):
        cluster = build_cluster()
        cluster.install_middleware(MiddlewareChain())
        with pytest.raises(MiddlewareError, match="already installed"):
            cluster.install_middleware(MiddlewareChain())

    def test_second_network_chain_raises(self):
        network = Network(Simulator(seed=3), latency_model=FixedLatency(0.01))
        network.install_middleware(MiddlewareChain())
        with pytest.raises(MiddlewareError, match="already installed"):
            network.install_middleware(MiddlewareChain())

    def test_second_monitor_raises(self):
        from repro.faults.invariants import InvariantMonitor

        cluster = build_cluster()
        cluster.attach_monitor(InvariantMonitor())
        with pytest.raises(MiddlewareError, match="already attached"):
            cluster.attach_monitor(InvariantMonitor())


# ------------------------------------------------------ dispatch integration


class TestDispatchIntegration:
    def test_broadcast_feeds_deliver_and_send_hooks(self):
        cluster = build_cluster()
        recorder = Recorder()
        cluster.install_middleware(MiddlewareChain(recorder))
        cluster.broadcast("n0", {"payload": 1})
        cluster.run_for(20.0)
        hooks_seen = {event[0] for event in recorder.events}
        assert "on_send" in hooks_seen
        assert "on_deliver" in hooks_seen
        channels = {event[2] for event in recorder.events if event[0] == "on_deliver"}
        assert "broadcast" in channels

    def test_membership_events_feed_view_and_node_hooks(self):
        cluster = build_cluster()
        recorder = Recorder()
        cluster.install_middleware(MiddlewareChain(recorder))
        cluster.join("late-1", contact="n0")
        cluster.run_for(30.0)
        cluster.leave("late-1")
        cluster.run_for(30.0)
        hooks_seen = {event[0] for event in recorder.events}
        assert "on_node_added" in hooks_seen
        assert "on_view_change" in hooks_seen
        assert "on_node_left" in hooks_seen

    def test_on_send_drop_verdict_loses_the_message(self):
        class DropBroadcasts(Middleware):
            def on_send(self, ctx):
                ctx.drop = True

        cluster = build_cluster()
        cluster.install_middleware(MiddlewareChain(DropBroadcasts()))
        before = cluster.sim.metrics.counter("net.messages_lost")
        cluster.broadcast("n0", {"payload": 1})
        cluster.run_for(10.0)
        assert cluster.sim.metrics.counter("net.messages_lost") > before
        assert cluster.sim.metrics.counter("net.messages_delivered") == 0

    def test_metrics_tap_counts_pipeline_events(self):
        cluster = build_cluster()
        cluster.install_middleware(MiddlewareChain(MetricsTap(count_sends=True)))
        cluster.broadcast("n0", {"payload": 1})
        cluster.run_for(20.0)
        metrics = cluster.sim.metrics
        assert metrics.counter("mw.sends") > 0
        assert metrics.counter("mw.delivers") > 0

    def test_timer_ticks_until_stop_disarms(self):
        class ThreeTicks(Middleware):
            timer_period = 1.0

            def __init__(self):
                self.ticks = 0

            def on_timer(self, ctx):
                self.ticks += 1
                if self.ticks >= 3:
                    ctx.stop = True

        cluster = build_cluster()
        ticker = ThreeTicks()
        cluster.install_middleware(MiddlewareChain(ticker))
        cluster.run_for(10.0)
        assert ticker.ticks == 3


# ------------------------------------------------------ exception propagation


class Boom(Exception):
    pass


class TestHookExceptionsPropagate:
    """The pipeline never swallows a hook's exception."""

    def _exploding(self, hook_name):
        middleware = Middleware()
        setattr(
            middleware,
            hook_name,
            lambda ctx: (_ for _ in ()).throw(Boom(hook_name)),
        )
        return middleware

    def test_on_send_exception_propagates(self):
        cluster = build_cluster()
        cluster.install_middleware(MiddlewareChain(self._exploding("on_send")))
        cluster.broadcast("n0", {"payload": 1})
        with pytest.raises(Boom):
            cluster.run_for(10.0)

    def test_on_deliver_exception_propagates(self):
        cluster = build_cluster()
        chain = MiddlewareChain()
        cluster.install_middleware(chain)
        chain.add(self._exploding("on_deliver"))
        cluster.broadcast("n0", {"payload": 1})
        with pytest.raises(Boom):
            cluster.run_for(10.0)

    def test_on_view_change_exception_propagates(self):
        cluster = build_cluster()
        cluster.install_middleware(MiddlewareChain(self._exploding("on_view_change")))
        cluster.join("late-1", contact="n0")
        with pytest.raises(Boom):
            cluster.run_for(30.0)

    def test_on_eviction_exception_propagates(self):
        cluster = build_cluster()
        cluster.install_middleware(MiddlewareChain(self._exploding("on_eviction")))
        with pytest.raises(Boom):
            cluster._notify_eviction("n1")

    def test_on_timer_exception_propagates(self):
        exploding = self._exploding("on_timer")
        exploding.timer_period = 1.0
        cluster = build_cluster()
        cluster.install_middleware(MiddlewareChain(exploding))
        with pytest.raises(Boom):
            cluster.run_for(5.0)


# ------------------------------------------------- exactly-once eviction hook


class TestExactlyOnceEviction:
    def _evict_by_majority(self, cluster, victim):
        view = cluster.engine.group_of(victim)
        for member in view.members:
            if member != victim:
                cluster.request_eviction(victim, suspected_by=member)

    def test_majority_eviction_notifies_once(self):
        cluster = build_cluster()
        recorder = Recorder()
        cluster.install_middleware(MiddlewareChain(recorder))
        victim = sorted(cluster.engine.node_group)[3]
        self._evict_by_majority(cluster, victim)
        evictions = [e for e in recorder.events if e[0] == "on_eviction"]
        assert evictions == [("on_eviction", "recorder", victim)]

    def test_merge_enforcement_duplicate_is_suppressed(self):
        """The split-merge regression: an identity evicted same-side during a
        split used to be re-announced by merge enforcement at heal."""
        cluster = build_cluster()
        recorder = Recorder()
        cluster.install_middleware(MiddlewareChain(recorder))
        victim = sorted(cluster.engine.node_group)[3]
        self._evict_by_majority(cluster, victim)
        # Merge enforcement announcing the same identity again (the leave
        # may still be in flight at heal) must be suppressed, not re-fired.
        assert cluster._notify_eviction(victim) is False
        evictions = [e for e in recorder.events if e[0] == "on_eviction"]
        assert evictions == [("on_eviction", "recorder", victim)]
        assert cluster.sim.metrics.counter("cluster.eviction_duplicate_suppressed") == 1

    def test_failed_engine_leave_is_counted_and_notifies_once(self):
        cluster = build_cluster()
        recorder = Recorder()
        cluster.install_middleware(MiddlewareChain(recorder))
        victim = sorted(cluster.engine.node_group)[3]

        original_leave = cluster.engine.leave

        def failing_leave(node, eviction=False):
            raise MembershipError(f"injected leave failure for {node}")

        cluster.engine.leave = failing_leave
        try:
            self._evict_by_majority(cluster, victim)
        finally:
            cluster.engine.leave = original_leave
        assert cluster.sim.metrics.counter("cluster.eviction_leave_failed") == 1
        # The failed request is retryable (not wedged in _eviction_requests)...
        assert victim not in cluster._eviction_requests
        # ...but observers were notified exactly once for the identity.
        evictions = [e for e in recorder.events if e[0] == "on_eviction"]
        assert evictions == [("on_eviction", "recorder", victim)]


# --------------------------------------------------- golden-trace neutrality


class NoOp(Middleware):
    """Observes nothing, perturbs nothing — the empty-cost control."""


class TestGoldenTraceNeutrality:
    """Empty chains (and pure no-op middleware) keep goldens byte-identical."""

    def test_empty_chain_keeps_kernel_golden_trace(self):
        from test_golden_trace import GOLDEN_PATH, HORIZON, build_scenario

        with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        cluster, _state = build_scenario()
        cluster.install_middleware(MiddlewareChain(NoOp()))
        trace = []
        cluster.sim.run(until=HORIZON, trace=trace)
        assert [[t, tag] for t, tag in trace] == golden["trace"]

    def test_empty_chain_keeps_protocol_stack_golden_trace(self, monkeypatch):
        import repro.sim.protocol_perf as protocol_perf

        class ChainedNetwork(Network):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.install_middleware(MiddlewareChain(NoOp()))

        monkeypatch.setattr(protocol_perf, "Network", ChainedNetwork)
        golden_path = os.path.join(
            os.path.dirname(__file__), "golden", "golden_protocol_stack.json"
        )
        with open(golden_path, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        trace = []
        protocol_perf.run_broadcast_scenario(
            seed=golden["seed"],
            groups=golden["groups"],
            group_size=golden["group_size"],
            hc=golden["hc"],
            broadcasts=golden["broadcasts"],
            policy="flood",
            horizon=golden["horizon"],
            trace=trace,
        )
        assert [[t, tag] for t, tag in trace] == golden["trace"]

    def test_noop_middleware_keeps_checkpointed_reconciliation_trace(self, monkeypatch):
        from test_partition_reconcile import run_reconcile

        _, _, _, baseline_trace = run_reconcile(SmrKind.ASYNC, checkpoint_interval=2)

        original = AtumCluster.attach_monitor

        def attach_and_pad(self, monitor):
            original(self, monitor)
            self.middleware_chain().add(NoOp())

        monkeypatch.setattr(AtumCluster, "attach_monitor", attach_and_pad)
        _, _, _, padded_trace = run_reconcile(SmrKind.ASYNC, checkpoint_interval=2)
        assert padded_trace == baseline_trace
