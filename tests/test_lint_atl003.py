"""ATL003: unordered set iteration on protocol paths."""

from lint_utils import lint_fixture, rules_of


def test_flags_set_loop_into_send_rng_sample_and_set_pop():
    findings = lint_fixture("atl003_bad.py", rules=["ATL003"])
    assert rules_of(findings) == ["ATL003", "ATL003", "ATL003"]
    messages = [f.message for f in findings]
    assert any("feeds send(...)" in m for m in messages)
    assert any(".sample(...)" in m for m in messages)
    assert any("set.pop()" in m for m in messages)


def test_sorted_wrap_and_reasoned_pragma_pass():
    assert lint_fixture("atl003_ok.py") == []
