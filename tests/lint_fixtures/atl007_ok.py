"""ATL007 fixture: safe post-send patterns and a reasoned waiver."""


def copy_then_mutate(transport, payload, trailer):
    transport.send(list(payload))
    payload.append(trailer)  # the sent copy is independent: no aliasing


def rebind_clears_tracking(transport, payload):
    transport.send(payload)
    payload = []
    payload.append(1)


def branch_local_send_does_not_leak(transport, queue, items):
    for item in items:
        transport.send(item)
    queue.append(items)


def waived(transport, buffer):
    transport.send(buffer)
    buffer.clear()  # atumlint: allow[ATL007] fixture: this transport deep-copies on ingest
