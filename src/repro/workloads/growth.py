"""Growth workload: join nodes at a rate proportional to system size.

The paper's growth experiments (Figure 6) join nodes at 8% of the current
system size per minute, observing exponential growth; Figure 13 raises the
rate to 20% and 24% and observes the fraction of suppressed shuffle exchanges
increase.  The provisioning delay models the time to create and boot new
EC2 instances (the cause of the plateau the paper observes around t=3000 s).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.overlay.membership import MembershipEngine
from repro.sim.metrics import TimeSeries


@dataclass
class GrowthConfig:
    """Configuration of the growth driver.

    Attributes:
        target_size: Stop issuing joins once this many nodes have been started.
        join_fraction_per_minute: Fraction of the current system size joined
            per minute (0.08, 0.20 or 0.24 in the paper).
        batch_interval: How often the driver computes and issues a join batch.
        provisioning_delay: Delay between deciding to add a node and the node
            actually contacting the system (instance creation + boot).
        max_duration: Safety horizon for the driver.
    """

    target_size: int = 800
    join_fraction_per_minute: float = 0.08
    batch_interval: float = 10.0
    provisioning_delay: float = 30.0
    max_duration: float = 20_000.0


class GrowthWorkload:
    """Drives joins into a membership engine until the target size is reached."""

    def __init__(self, engine: MembershipEngine, config: GrowthConfig) -> None:
        self.engine = engine
        self.config = config
        self.sim = engine.sim
        self._node_counter = itertools.count(0)
        self._started = 0
        self._finished = False

    # -------------------------------------------------------------------- runs

    def start(self, seed_node: str = "seed-0") -> None:
        """Bootstrap the system (if needed) and start the periodic join driver."""
        if self.engine.system_size == 0:
            self.engine.bootstrap(seed_node)
            self._started = 1
        else:
            self._started = self.engine.system_size
        self._tick()

    def run(self, seed_node: str = "seed-0") -> TimeSeries:
        """Run the workload to completion and return the size-over-time series."""
        self.start(seed_node)
        # Advance in slices so the clock stops shortly after the growth (and
        # its trailing shuffles/splits) actually finishes, rather than always
        # running out to the safety horizon.
        while self.sim.now < self.config.max_duration:
            horizon = min(self.config.max_duration, self.sim.now + 60.0)
            self.sim.run(until=horizon)
            if self._finished and self.engine.pending_operations() == 0:
                break
        return self.sim.metrics.timeseries("membership.system_size")

    @property
    def finished(self) -> bool:
        return self._finished

    def time_to_reach(self, size: int) -> Optional[float]:
        """First simulated time at which the system reached ``size`` nodes."""
        for time, value in self.sim.metrics.timeseries("membership.system_size").points:
            if value >= size:
                return time
        return None

    def growth_curve(self) -> List[Tuple[float, float]]:
        return list(self.sim.metrics.timeseries("membership.system_size").points)

    def exchange_completion_rate(self) -> float:
        """Fraction of attempted shuffle exchanges that completed (Figure 13)."""
        attempted = self.sim.metrics.counter("membership.exchanges_attempted")
        completed = self.sim.metrics.counter("membership.exchanges_completed")
        if attempted == 0:
            return 1.0
        return completed / attempted

    # ----------------------------------------------------------------- internals

    def _tick(self) -> None:
        if self._started >= self.config.target_size or self.sim.now >= self.config.max_duration:
            self._finished = True
            return
        per_minute = self.config.join_fraction_per_minute * max(1, self.engine.system_size)
        joins_this_batch = per_minute * self.config.batch_interval / 60.0
        whole = max(1, int(round(joins_this_batch)))
        whole = min(whole, self.config.target_size - self._started)
        for _ in range(whole):
            node = f"grow-{next(self._node_counter)}"
            self._started += 1
            self.sim.schedule(
                self.config.provisioning_delay,
                lambda n=node: self._join(n),
                tag="growth.provision",
            )
        self.sim.schedule(self.config.batch_interval, self._tick, tag="growth.tick")

    def _join(self, node: str) -> None:
        if node in self.engine.node_group:
            return
        self.engine.join(node)


__all__ = ["GrowthConfig", "GrowthWorkload"]
