"""Actor base class: a protocol participant living on the simulator."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.events import Event
from repro.sim.simulator import Simulator


class Actor:
    """A named participant in the simulation.

    Actors receive messages through :meth:`on_message` (delivered by a
    :class:`repro.net.network.Network`) and can set named timers.  Concrete
    protocols subclass ``Actor`` and dispatch on the message payload type.

    The base attributes are slotted because ``alive`` is read on every
    message delivery; subclasses may still add arbitrary attributes (they
    get a ``__dict__`` of their own unless they declare ``__slots__`` too).
    """

    __slots__ = ("sim", "address", "_timers", "alive", "__dict__")

    def __init__(self, sim: Simulator, address: str) -> None:
        self.sim = sim
        self.address = address
        self._timers: Dict[str, Event] = {}
        self.alive = True

    # ---------------------------------------------------------------- messages

    def on_message(self, payload: Any, sender: str) -> None:  # pragma: no cover
        """Handle a delivered message.  Subclasses override this."""
        raise NotImplementedError

    # ------------------------------------------------------------------ timers

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        """Arm (or re-arm) a named timer ``delay`` seconds from now."""
        self.cancel_timer(name)
        def fire() -> None:
            self._timers.pop(name, None)
            if self.alive:
                callback()
        self._timers[name] = self.sim.schedule(delay, fire, tag=f"{self.address}:{name}")

    def cancel_timer(self, name: str) -> None:
        """Cancel a named timer if it is armed."""
        event = self._timers.pop(name, None)
        if event is not None:
            self.sim.cancel(event)

    def has_timer(self, name: str) -> bool:
        return name in self._timers

    def cancel_all_timers(self) -> None:
        for name in list(self._timers):
            self.cancel_timer(name)

    # ---------------------------------------------------------------- lifecycle

    def shutdown(self) -> None:
        """Stop the actor: cancel timers and ignore future callbacks."""
        self.alive = False
        self.cancel_all_timers()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.address}>"


__all__ = ["Actor"]
