"""Figure 8: group communication latency -- Atum vs gossip vs whole-system SMR.

Disseminates a batch of small (10-100 byte) messages in systems of 200, 400
and 800 nodes (plus an 850-node system with 50 Byzantine nodes) for both the
Sync and Async variants, and compares against the two baselines: a classic
crash-tolerant gossip with global membership, and the synchronous Byzantine
agreement scaled to the whole system.

Shape expectations from the paper:
* Sync latency is bounded by ~8 rounds and is essentially independent of
  system size and of the 5.8% Byzantine nodes;
* Async latency is much lower than Sync (no conservative rounds);
* classic gossip is faster than Atum (the gap is the price of BFT, roughly
  the first-phase SMR latency);
* whole-system SMR is slower by an order of magnitude (f + 1 rounds).
"""

from repro.analysis import format_table, latency_summary
from repro.baselines import ClassicGossipSimulation, GossipConfig, global_smr_latency
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind
from repro.workloads import BroadcastWorkload, BroadcastWorkloadConfig, select_byzantine

ROUND_DURATION = 1.5


def _atum_latencies(kind: SmrKind, correct_nodes: int, byzantine_count: int, broadcasts: int, seed: int):
    total = correct_nodes + byzantine_count
    params = AtumParameters.for_system_size(total, kind, round_duration=ROUND_DURATION)
    cluster = AtumCluster(params, seed=seed)
    addresses = [f"n{i}" for i in range(total)]
    byzantine = select_byzantine(addresses, count=byzantine_count) if byzantine_count else []
    cluster.build_static(addresses, byzantine=byzantine)
    workload = BroadcastWorkload(
        cluster,
        BroadcastWorkloadConfig(count=broadcasts, interval=0.4, settle_time=90.0),
    )
    latencies = workload.run()
    fractions = workload.delivery_fractions()
    return latencies, min(fractions.values()) if fractions else 0.0


def _run(scale):
    broadcasts = 8 * scale
    configs = [
        ("Atum SYNC", SmrKind.SYNC, 200, 0),
        ("Atum SYNC", SmrKind.SYNC, 400, 0),
        ("Atum SYNC", SmrKind.SYNC, 800, 0),
        ("Atum SYNC", SmrKind.SYNC, 800, 50),
        ("Atum ASYNC", SmrKind.ASYNC, 200, 0),
        ("Atum ASYNC", SmrKind.ASYNC, 400, 0),
        ("Atum ASYNC", SmrKind.ASYNC, 800, 50),
    ]
    results = []
    for label, kind, correct, byz in configs:
        latencies, min_fraction = _atum_latencies(kind, correct, byz, broadcasts, seed=correct + byz)
        results.append(
            {
                "system": f"{label} N={correct + byz}" + ("*" if byz else ""),
                "samples": latencies,
                "min_delivery_fraction": min_fraction,
            }
        )
    gossip = ClassicGossipSimulation(
        GossipConfig(num_nodes=850, fanout=15, round_duration=ROUND_DURATION), seed=1
    )
    results.append(
        {
            "system": "S.Gossip N=850",
            "samples": gossip.delivery_latencies(),
            "min_delivery_fraction": 1.0,
        }
    )
    smr_latency = global_smr_latency(850, tolerated_faults=50, round_duration=ROUND_DURATION)
    results.append(
        {
            "system": "S.SMR N=850*",
            "samples": [smr_latency] * 850,
            "min_delivery_fraction": 1.0,
        }
    )
    return results


def test_fig8_latency_cdf(benchmark, scale):
    results = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    rows = []
    for entry in results:
        summary = latency_summary(entry["samples"])
        rows.append(
            {
                "system": entry["system"],
                "median_s": round(summary["median"], 2),
                "p90_s": round(summary["p90"], 2),
                "max_s": round(summary["max"], 2),
                "delivery": round(entry["min_delivery_fraction"], 3),
            }
        )
    print()
    print(format_table(rows, title="Figure 8: broadcast latency (per-node delivery), 10-100 B messages"))

    by_system = {row["system"]: row for row in rows}

    # Every Atum configuration delivers to every correct node.
    for entry in results:
        if entry["system"].startswith("Atum"):
            assert entry["min_delivery_fraction"] == 1.0

    # Sync latency bounded by ~8 rounds (12 s at 1.5 s rounds), at every size
    # and with Byzantine nodes present.
    for name, row in by_system.items():
        if name.startswith("Atum SYNC"):
            assert row["max_s"] <= 8 * ROUND_DURATION + ROUND_DURATION

    # No performance decay from 5.8% Byzantine nodes (within one round).
    assert abs(by_system["Atum SYNC N=850*"]["max_s"] - by_system["Atum SYNC N=800"]["max_s"]) <= ROUND_DURATION

    # Async is faster than Sync; gossip is faster than Atum Sync; whole-system
    # SMR is the slowest by a wide margin.
    assert by_system["Atum ASYNC N=400"]["median_s"] < by_system["Atum SYNC N=400"]["median_s"]
    assert by_system["S.Gossip N=850"]["median_s"] <= by_system["Atum SYNC N=800"]["median_s"]
    assert by_system["S.SMR N=850*"]["median_s"] > 5 * by_system["Atum SYNC N=800"]["max_s"]
