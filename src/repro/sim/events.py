"""Event and event-queue primitives for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
guarantees a deterministic total order even when many events share the same
timestamp, which is essential for reproducible simulations.

The queue is the hottest data structure in the repository: every message
delivery, timer and protocol round passes through it.  Two choices keep it
fast while preserving the exact ordering semantics of the original
implementation:

* heap entries are plain ``(time, priority, seq, event)`` tuples, so all
  sift comparisons run as C tuple comparisons instead of Python-level
  ``__lt__`` calls (``seq`` is unique, so the trailing event is never
  compared);
* :class:`Event` is a ``__slots__`` handle carrying the callback and the
  cancellation flag; cancellation is O(1) and lazy — cancelled entries are
  skipped when they surface at the heap root.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    """A scheduled callback in simulated time.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-breaker among events at the same time (lower first).
        seq: Monotonic sequence number assigned by the queue; makes ordering
            total and deterministic.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
        tag: Optional human-readable label used in traces and debugging.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "tag")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
        tag: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.tag = tag

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority} seq={self.seq} tag={self.tag!r}{state}>"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    The backing heap holds ``(time, priority, seq, event)`` tuples; see the
    module docstring for why.  ``_heap`` is private but the simulator's run
    loop reads it directly to avoid per-event method-call overhead.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, False, tag)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next non-cancelled event without popping it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def notify_cancelled(self) -> None:
        """Account for an externally cancelled event (keeps ``len`` accurate)."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0


__all__ = ["Event", "EventQueue"]
