"""Tests for random walks, the Figure 4 guideline machinery and gossip policies."""

import random
from collections import Counter

import pytest

from repro.overlay.gossip import (
    cycles_policy,
    dissemination_rounds,
    flood_policy,
    random_policy,
    single_cycle_policy,
)
from repro.overlay.guideline import (
    is_uniform,
    optimal_walk_length,
    recommended_config,
    uniformity_pvalue,
)
from repro.overlay.hgraph import HGraph
from repro.overlay.random_walk import BulkRng, WalkMode, sample_many, structural_walk


def build_graph(n=32, hc=4, seed=0):
    rng = random.Random(seed)
    return HGraph.random([f"g{i}" for i in range(n)], hc, rng), rng


class TestBulkRng:
    def test_generate_length(self):
        bulk = BulkRng.generate(7, random.Random(0))
        assert len(bulk) == 7
        assert all(0.0 <= value < 1.0 for value in bulk.values)

    def test_pick_in_range(self):
        bulk = BulkRng.generate(5, random.Random(0))
        for hop in range(5):
            assert 0 <= bulk.pick(hop, 8) < 8

    def test_pick_beyond_length_raises(self):
        bulk = BulkRng.generate(2, random.Random(0))
        with pytest.raises(IndexError):
            bulk.pick(2, 4)

    def test_pick_without_options_raises(self):
        bulk = BulkRng.generate(2, random.Random(0))
        with pytest.raises(ValueError):
            bulk.pick(0, 0)

    def test_same_bulk_same_walk(self):
        graph, rng = build_graph()
        bulk = BulkRng.generate(6, random.Random(42))
        walk_a = structural_walk(graph, "g0", 6, random.Random(1), bulk=bulk)
        walk_b = structural_walk(graph, "g0", 6, random.Random(2), bulk=bulk)
        assert walk_a.path == walk_b.path


class TestStructuralWalk:
    def test_walk_length(self):
        graph, rng = build_graph()
        outcome = structural_walk(graph, "g0", 9, rng)
        assert outcome.hops == 9
        assert len(outcome.path) == 9
        assert outcome.selected in graph.vertices

    def test_walk_visits_neighbors_only(self):
        graph, rng = build_graph(n=16, hc=2)
        outcome = structural_walk(graph, "g0", 12, rng)
        current = "g0"
        for step in outcome.path:
            assert step in graph.neighbors(current) or step == current
            current = step

    def test_zero_length_rejected(self):
        graph, rng = build_graph()
        with pytest.raises(ValueError):
            structural_walk(graph, "g0", 0, rng)

    def test_backward_phase_doubles_reply_hops(self):
        graph, rng = build_graph()
        backward = structural_walk(graph, "g0", 8, rng, mode=WalkMode.BACKWARD_PHASE)
        certificates = structural_walk(graph, "g0", 8, rng, mode=WalkMode.CERTIFICATES)
        assert backward.reply_hops == 8
        assert certificates.reply_hops == 1
        assert backward.total_hops > certificates.total_hops

    def test_long_walks_spread_over_the_graph(self):
        graph, rng = build_graph(n=16, hc=4, seed=3)
        endpoints = Counter(sample_many(graph, "g0", 10, 400, rng))
        # Every vertex should be reachable and no vertex should dominate.
        assert len(endpoints) >= 14
        assert max(endpoints.values()) < 400 * 0.25


class TestGuideline:
    def test_uniformity_pvalue_high_for_long_walks(self):
        rng = random.Random(0)
        pvalue = uniformity_pvalue(num_groups=16, hc=4, rwl=12, rng=rng, samples_per_group=40)
        assert pvalue > 0.01

    def test_uniformity_fails_for_one_hop_walks(self):
        rng = random.Random(0)
        # A single hop can only reach direct neighbours: wildly non-uniform.
        pvalue = uniformity_pvalue(num_groups=32, hc=3, rwl=1, rng=rng, samples_per_group=30)
        assert pvalue < 0.01

    def test_is_uniform_consistent_with_pvalue(self):
        rng = random.Random(1)
        assert is_uniform(16, 4, 12, rng, samples_per_group=40, trials=3)
        assert not is_uniform(32, 3, 1, rng, samples_per_group=30, trials=3)

    def test_optimal_walk_length_monotone_in_system_size(self):
        rng = random.Random(2)
        small = optimal_walk_length(8, 4, rng, samples_per_group=40, trials=1)
        large = optimal_walk_length(64, 4, rng, samples_per_group=20, trials=1)
        assert small <= large

    def test_recommended_config_matches_paper_examples(self):
        # Section 3.2: roughly 128 vgroups -> rwl 9 with hc 6.
        config = recommended_config(128)
        assert config.hc == 6 and config.rwl == 9
        # Larger systems need longer walks.
        assert recommended_config(8192).rwl > recommended_config(8).rwl


class TestGossipPolicies:
    def test_flood_reaches_everyone_in_few_rounds(self):
        graph, rng = build_graph(n=64, hc=4)
        rounds, reached = dissemination_rounds(graph, "g0", flood_policy, rng)
        assert reached == graph.vertices
        assert rounds <= 8

    def test_single_cycle_reaches_everyone_slower(self):
        graph, rng = build_graph(n=32, hc=4)
        flood_rounds, _ = dissemination_rounds(graph, "g0", flood_policy, rng)
        single_rounds, reached = dissemination_rounds(graph, "g0", single_cycle_policy, rng)
        assert reached == graph.vertices
        assert single_rounds >= flood_rounds

    def test_double_cycle_between_single_and_flood(self):
        graph, rng = build_graph(n=64, hc=6, seed=9)
        single_rounds, _ = dissemination_rounds(graph, "g0", cycles_policy(1), rng, message_id="m1")
        double_rounds, reached = dissemination_rounds(graph, "g0", cycles_policy(2), rng, message_id="m1")
        assert reached == graph.vertices
        assert double_rounds <= single_rounds

    def test_random_policy_reaches_everyone(self):
        graph, rng = build_graph(n=64, hc=4, seed=11)
        _, reached = dissemination_rounds(graph, "g0", random_policy(fanout=2), rng)
        assert reached == graph.vertices

    def test_policies_never_return_self(self):
        graph, rng = build_graph(n=16, hc=3)
        for policy in (flood_policy, single_cycle_policy, random_policy()):
            targets = policy(graph, "g5", "msg", rng)
            assert "g5" not in targets


class TestPolicyDeterminism:
    """PR-2 regression tests: seeded policies are byte-stable and well spread."""

    def test_random_policy_two_seeded_runs_pick_identical_forward_sets(self):
        graph, _ = build_graph(n=48, hc=4, seed=21)
        policy = random_policy(fanout=2)
        picks_a = [policy(graph, f"g{i}", f"m{i}", random.Random(99)) for i in range(48)]
        picks_b = [policy(graph, f"g{i}", f"m{i}", random.Random(99)) for i in range(48)]
        assert picks_a == picks_b

    def test_random_policy_guaranteed_cycle_always_included(self):
        graph, _ = build_graph(n=32, hc=3, seed=5)
        policy = random_policy(fanout=1, guaranteed_cycle=2)
        for i in range(32):
            vertex = f"g{i}"
            targets = policy(graph, vertex, "m", random.Random(i))
            pred, succ = graph.cycle_pairs(vertex)[2]
            for neighbor in {pred, succ} - {vertex}:
                assert neighbor in targets

    def test_random_policy_legacy_shuffle_flag_replays_old_draw_scheme(self):
        graph, _ = build_graph(n=32, hc=4, seed=9)
        legacy = random_policy(fanout=2, legacy_shuffle=True)
        modern = random_policy(fanout=2)
        # Both are deterministic under a fixed seed...
        assert legacy(graph, "g1", "m", random.Random(4)) == legacy(
            graph, "g1", "m", random.Random(4)
        )
        # ...but consume randomness differently (shuffle-and-slice vs sample):
        # the guaranteed-cycle prefix agrees, the random picks do not.
        l = legacy(graph, "g1", "m", random.Random(4))
        m = modern(graph, "g1", "m", random.Random(4))
        assert l[:2] == m[:2]
        assert l != m
        assert set(l) <= set(graph.neighbors("g1"))
        assert set(m) <= set(graph.neighbors("g1"))

    def test_cycles_policy_stable_hash_spreads_similar_ids(self):
        from repro.overlay.gossip import stable_message_hash

        graph, _ = build_graph(n=24, hc=6, seed=3)
        # The old sum(ord) derivation mapped permuted ids ("gm-12"/"gm-21")
        # to the same cycle; the stable hash spreads them.
        ids = [f"gm-{a}{b}" for a in "0123456789" for b in "0123456789"]
        stable_cycles = {stable_message_hash(mid) % 6 for mid in ids}
        legacy_cycles = {sum(ord(ch) for ch in mid) % 6 for mid in ids}
        assert len(stable_cycles) == 6
        # Permutations collide under the legacy hash by construction.
        assert (sum(ord(c) for c in "gm-12") == sum(ord(c) for c in "gm-21"))
        assert stable_message_hash("gm-12") != stable_message_hash("gm-21")

    def test_cycles_policy_legacy_hash_flag_matches_old_derivation(self):
        graph, rng = build_graph(n=24, hc=5, seed=13)
        policy = cycles_policy(2, legacy_hash=True)
        message_id = "stream-42"
        start = sum(ord(ch) for ch in message_id) % graph.hc
        expected_cycles = [start % graph.hc, (start + 1) % graph.hc]
        expected = []
        for cycle in expected_cycles:
            for neighbor in graph.cycle_neighbors("g7", cycle):
                if neighbor != "g7" and neighbor not in expected:
                    expected.append(neighbor)
        assert policy(graph, "g7", message_id, rng) == expected

    def test_policy_results_refresh_after_topology_change(self):
        graph, rng = build_graph(n=16, hc=3, seed=11)
        policy = cycles_policy(1)
        before = policy(graph, "g2", "m", rng)
        victim = next(iter(set(before)))
        graph.remove(victim)
        after = policy(graph, "g2", "m", rng)
        assert victim not in after

    def test_stable_hash_is_cached_and_consistent(self):
        from repro.overlay.gossip import stable_message_hash

        assert stable_message_hash("abc") == stable_message_hash("abc")
        import hashlib
        expected = int.from_bytes(hashlib.sha256(b"abc").digest()[:8], "big")
        assert stable_message_hash("abc") == expected
