"""Tests for the group layer: vgroup views, group messages, heartbeats, cost model."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.group import (
    GroupCostModel,
    GroupMessenger,
    HeartbeatConfig,
    HeartbeatMonitor,
    NodeBinding,
    VGroupView,
    majority_threshold,
)
from repro.group.heartbeat import Heartbeat
from repro.group.messages import GroupMessageEnvelope
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim import Simulator
from repro.sim.actor import Actor


class TestVGroupView:
    def test_create_sorts_members(self):
        view = VGroupView.create("g1", ["c", "a", "b"])
        assert view.members == ("a", "b", "c")
        assert view.size == 3

    def test_majority(self):
        assert VGroupView.create("g", ["a"]).majority() == 1
        assert VGroupView.create("g", ["a", "b"]).majority() == 2
        assert VGroupView.create("g", ["a", "b", "c"]).majority() == 2
        assert VGroupView.create("g", list("abcdefg")).majority() == 4

    @pytest.mark.parametrize("size,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (7, 4), (14, 8)])
    def test_majority_threshold(self, size, expected):
        assert majority_threshold(size) == expected

    def test_add_and_remove_bump_epoch(self):
        view = VGroupView.create("g", ["a", "b"])
        grown = view.add("c")
        assert grown.epoch == view.epoch + 1
        assert grown.contains("c")
        shrunk = grown.remove("a")
        assert shrunk.epoch == grown.epoch + 1
        assert not shrunk.contains("a")

    def test_add_existing_is_noop(self):
        view = VGroupView.create("g", ["a"])
        assert view.add("a") is view

    def test_remove_absent_is_noop(self):
        view = VGroupView.create("g", ["a"])
        assert view.remove("z") is view

    def test_iteration_and_len(self):
        view = VGroupView.create("g", ["b", "a"])
        assert list(view) == ["a", "b"]
        assert len(view) == 2


class _MessengerHost(Actor):
    """Node actor exposing only a GroupMessenger, for isolated testing."""

    def __init__(self, sim, address, network, own_view_fn):
        super().__init__(sim, address)
        self.accepted = []
        self.messenger = GroupMessenger(
            binding=NodeBinding(address=address, network=network, sim=sim),
            own_view_fn=own_view_fn,
            on_accept=lambda kind, payload, src, gm: self.accepted.append(
                (kind, payload, src, gm)
            ),
        )

    def on_message(self, payload, sender):
        self.messenger.handle(payload, sender)


def _make_two_groups(sim, network, size_a=4, size_b=4, use_digest=True):
    group_a = VGroupView.create("A", [f"a{i}" for i in range(size_a)])
    group_b = VGroupView.create("B", [f"b{i}" for i in range(size_b)])
    hosts = {}
    for address in list(group_a.members) + list(group_b.members):
        own = group_a if address.startswith("a") else group_b
        host = _MessengerHost(sim, address, network, lambda v=own: v)
        host.messenger.use_digest_optimization = use_digest
        hosts[address] = host
        network.register(host)
    return group_a, group_b, hosts


class TestGroupMessages:
    def test_accepted_after_majority_of_senders(self):
        sim = Simulator()
        network = Network(sim, latency_model=FixedLatency(0.001))
        group_a, group_b, hosts = _make_two_groups(sim, network)
        # All members of A send their share of the same group message.
        for sender in group_a.members:
            hosts[sender].messenger.send(group_b, "gossip", {"x": 1}, gm_id="gm-1")
        sim.run()
        for receiver in group_b.members:
            assert len(hosts[receiver].accepted) == 1
            kind, payload, source, gm_id = hosts[receiver].accepted[0]
            assert kind == "gossip" and payload == {"x": 1} and source == "A"

    def test_not_accepted_below_majority(self):
        sim = Simulator()
        network = Network(sim, latency_model=FixedLatency(0.001))
        group_a, group_b, hosts = _make_two_groups(sim, network, size_a=5)
        # Only 2 of 5 members send: below the majority of 3.
        for sender in list(group_a.members)[:2]:
            hosts[sender].messenger.send(group_b, "gossip", "payload", gm_id="gm-2")
        sim.run()
        for receiver in group_b.members:
            assert hosts[receiver].accepted == []

    def test_byzantine_minority_cannot_forge_group_message(self):
        sim = Simulator()
        network = Network(sim, latency_model=FixedLatency(0.001))
        group_a, group_b, hosts = _make_two_groups(sim, network, size_a=5)
        # A Byzantine minority (2 of 5) tries to push a forged payload.
        for sender in list(group_a.members)[:2]:
            hosts[sender].messenger.send(group_b, "gossip", "forged", gm_id="gm-forged")
        # The correct majority sends the real payload under a different gm id.
        for sender in list(group_a.members)[2:]:
            hosts[sender].messenger.send(group_b, "gossip", "real", gm_id="gm-real")
        sim.run()
        for receiver in group_b.members:
            payloads = [p for _, p, _, _ in hosts[receiver].accepted]
            assert "forged" not in payloads
            assert "real" in payloads

    def test_digest_optimization_reduces_bytes(self):
        def run(with_digest):
            sim = Simulator()
            network = Network(sim, latency_model=FixedLatency(0.001))
            group_a, group_b, hosts = _make_two_groups(
                sim, network, size_a=6, size_b=6, use_digest=with_digest
            )
            for sender in group_a.members:
                hosts[sender].messenger.send(
                    group_b, "gossip", {"blob": "x" * 100}, gm_id="gm", payload_bytes=5000
                )
            sim.run()
            delivered = all(len(hosts[r].accepted) == 1 for r in group_b.members)
            return sim.metrics.counter("net.bytes_sent"), delivered

        bytes_with, ok_with = run(True)
        bytes_without, ok_without = run(False)
        assert ok_with and ok_without
        assert bytes_with < bytes_without

    def test_duplicate_shares_do_not_redeliver(self):
        sim = Simulator()
        network = Network(sim, latency_model=FixedLatency(0.001))
        group_a, group_b, hosts = _make_two_groups(sim, network)
        for _ in range(2):
            for sender in group_a.members:
                hosts[sender].messenger.send(group_b, "gossip", "x", gm_id="gm-dup")
        sim.run()
        for receiver in group_b.members:
            assert len(hosts[receiver].accepted) == 1


class _HeartbeatHost(Actor):
    def __init__(self, sim, address, network, peers):
        super().__init__(sim, address)
        self.suspected = []
        self.monitor = HeartbeatMonitor(
            sim=sim,
            address=address,
            group_id_fn=lambda: "G",
            peers_fn=lambda: peers,
            send_fn=lambda peer, hb: network.send(address, peer, hb, 64),
            suspect_fn=self.suspected.append,
            config=HeartbeatConfig(period=1.0, misses_before_eviction=3),
        )

    def on_message(self, payload, sender):
        if isinstance(payload, Heartbeat):
            self.monitor.observe(payload)


class TestHeartbeats:
    def test_responsive_peers_not_suspected(self):
        sim = Simulator()
        network = Network(sim, latency_model=FixedLatency(0.001))
        peers = ["n0", "n1", "n2"]
        hosts = {p: _HeartbeatHost(sim, p, network, peers) for p in peers}
        for host in hosts.values():
            network.register(host)
            host.monitor.start()
        sim.run(until=10.0)
        assert all(host.suspected == [] for host in hosts.values())

    def test_unresponsive_peer_is_suspected(self):
        sim = Simulator()
        network = Network(sim, latency_model=FixedLatency(0.001))
        peers = ["n0", "n1", "n2"]
        hosts = {p: _HeartbeatHost(sim, p, network, peers) for p in peers}
        for host in hosts.values():
            network.register(host)
        # n2 never starts its monitor and never answers: it must be suspected.
        hosts["n0"].monitor.start()
        hosts["n1"].monitor.start()
        sim.run(until=10.0)
        assert "n2" in hosts["n0"].suspected
        assert "n2" in hosts["n1"].suspected
        assert "n1" not in hosts["n0"].suspected

    def test_forget_clears_state(self):
        sim = Simulator()
        network = Network(sim, latency_model=FixedLatency(0.001))
        host = _HeartbeatHost(sim, "n0", network, ["n0", "n1"])
        network.register(host)
        host.monitor.start()
        sim.run(until=5.0)
        host.monitor.forget("n1")
        assert "n1" not in host.monitor.last_seen


class TestHeartbeatPeriodAdoption:
    """Regression tests for the stale-period aliasing bug: a runtime period
    change must reach the send cadence and the suspicion deadline together,
    at the next tick — and a shrinking deadline must not instantly
    mass-suspect peers whose heartbeats were timed against the old period."""

    def _wired_hosts(self, sim, peers):
        network = Network(sim, latency_model=FixedLatency(0.001))
        hosts = {p: _HeartbeatHost(sim, p, network, peers) for p in peers}
        for host in hosts.values():
            network.register(host)
            host.monitor.start()
        return hosts

    def test_set_period_adopts_at_the_next_tick_not_mid_cycle(self):
        sim = Simulator()
        hosts = self._wired_hosts(sim, ["n0", "n1"])
        monitor = hosts["n0"].monitor
        sim.run(until=2.5)  # mid-cycle: ticks at 0, 1, 2
        monitor.set_period(0.5)
        assert monitor._period == 1.0  # unchanged until the tick boundary
        assert monitor.config.period == 1.0
        sim.run(until=3.1)  # the tick at t=3 adopts
        assert monitor._period == 0.5
        assert monitor.config.period == 0.5  # legacy knob kept in sync
        # The send cadence follows immediately: next ticks at 3.5, 4.0, ...
        sequence_at_adoption = monitor.sequence
        sim.run(until=4.1)
        assert monitor.sequence == sequence_at_adoption + 2

    def test_set_period_rejects_nonpositive(self):
        sim = Simulator()
        hosts = self._wired_hosts(sim, ["n0", "n1"])
        with pytest.raises(ValueError, match="must be positive"):
            hosts["n0"].monitor.set_period(0.0)

    def test_direct_config_mutation_gets_next_tick_semantics(self):
        sim = Simulator()
        hosts = self._wired_hosts(sim, ["n0", "n1"])
        monitor = hosts["n0"].monitor
        sim.run(until=2.5)
        monitor.config.period = 0.5  # the legacy knob, mutated raw
        assert monitor._period == 1.0
        sim.run(until=3.1)
        assert monitor._period == 0.5

    def test_shrinking_period_does_not_mass_suspect_healthy_peers(self):
        sim = Simulator()
        peers = ["n0", "n1", "n2"]
        hosts = self._wired_hosts(sim, peers)
        sim.run(until=9.5)  # steady state on the 1.0 s period
        # Shrink every monitor's deadline from 3.0 s to 0.75 s — smaller
        # than the age peers can have accumulated under the old cadence.
        # Pre-fix, reading config.period live would suspect them instantly.
        for host in hosts.values():
            host.monitor.set_period(0.25)
        sim.run(until=20.0)
        assert all(host.suspected == [] for host in hosts.values())
        assert all(host.monitor._period == 0.25 for host in hosts.values())

    def test_shrunk_deadline_still_suspects_a_peer_that_dies_later(self):
        sim = Simulator()
        peers = ["n0", "n1", "n2"]
        hosts = self._wired_hosts(sim, peers)
        sim.run(until=9.5)
        for host in hosts.values():
            host.monitor.set_period(0.25)
        sim.run(until=15.0)
        hosts["n2"].monitor.stop()  # n2 goes silent after the shrink settles
        sim.run(until=20.0)
        assert "n2" in hosts["n0"].suspected
        assert "n2" in hosts["n1"].suspected
        assert "n1" not in hosts["n0"].suspected


class TestGroupCostModel:
    def test_sync_agreement_latency_scales_with_group_size(self):
        model = GroupCostModel(synchronous=True, round_duration=1.0)
        assert model.agreement_latency(4) < model.agreement_latency(20)
        # f+1 rounds plus half a round of waiting: g=7 -> f=3 -> 4.5 rounds.
        assert model.agreement_latency(7) == pytest.approx(4.5)

    def test_async_agreement_much_faster_than_sync(self):
        sync = GroupCostModel(synchronous=True, round_duration=1.0)
        asyn = GroupCostModel(synchronous=False, network_latency=0.05)
        assert asyn.agreement_latency(7) < sync.agreement_latency(7) / 5

    def test_backward_phase_walk_costs_twice_the_forward(self):
        model = GroupCostModel()
        backward = model.random_walk_latency(10, 8, backward_phase=True)
        forward_only = 10 * model.walk_step_latency(8, 8)
        assert backward == pytest.approx(2 * forward_only)

    def test_certificate_walk_cheaper_than_backward_for_long_walks(self):
        model = GroupCostModel(synchronous=False, network_latency=0.05)
        certificates = model.random_walk_latency(12, 8, backward_phase=False)
        backward = model.random_walk_latency(12, 8, backward_phase=True)
        assert certificates < backward

    def test_state_transfer_grows_with_cycles(self):
        model = GroupCostModel()
        assert model.state_transfer_latency(8, 10) > model.state_transfer_latency(2, 10)


class TestGroupMessengerFastPath:
    """PR-2 regression tests: pending-state retirement and O(1) gm-id dedup."""

    def _wire(self, size_a=4, size_b=4):
        sim = Simulator()
        network = Network(sim, latency_model=FixedLatency(0.001))
        group_a, group_b, hosts = _make_two_groups(sim, network, size_a, size_b)
        return sim, group_a, group_b, hosts

    def test_pending_state_retired_after_delivery(self):
        sim, group_a, group_b, hosts = self._wire()
        for sender in group_a.members:
            hosts[sender].messenger.send(group_b, "gossip", "x", gm_id="gm-retire")
        sim.run()
        for receiver in group_b.members:
            messenger = hosts[receiver].messenger
            assert len(hosts[receiver].accepted) == 1
            assert messenger.pending_count() == 0
            assert "gm-retire" in messenger._delivered_gm_ids

    def test_pending_count_reflects_undelivered_messages(self):
        sim, group_a, group_b, hosts = self._wire(size_a=5)
        # Below-majority share count: state stays pending.
        for sender in list(group_a.members)[:2]:
            hosts[sender].messenger.send(group_b, "gossip", "x", gm_id="gm-low")
        sim.run()
        for receiver in group_b.members:
            assert hosts[receiver].accepted == []
            assert hosts[receiver].messenger.pending_count() == 1

    def test_late_shares_short_circuit_after_delivery(self):
        sim, group_a, group_b, hosts = self._wire()
        for sender in group_a.members:
            hosts[sender].messenger.send(group_b, "gossip", "x", gm_id="gm-late")
        sim.run()
        receiver = group_b.members[0]
        messenger = hosts[receiver].messenger
        late = GroupMessageEnvelope(
            gm_id="gm-late",
            source_group="A",
            source_epoch=0,
            target_group="B",
            kind="gossip",
            payload="x",
            digest="whatever",
            sender_group_size=4,
        )
        before = len(hosts[receiver].accepted)
        messenger.handle(late, "a0")
        assert len(hosts[receiver].accepted) == before
        assert messenger.pending_count() == 0

    def test_equivocating_digests_accumulate_separately(self):
        sim, group_a, group_b, hosts = self._wire(size_a=5)
        receiver = group_b.members[0]
        messenger = hosts[receiver].messenger

        def share(payload, digest, sender):
            return messenger.handle(
                GroupMessageEnvelope(
                    gm_id="gm-equiv",
                    source_group="A",
                    source_epoch=0,
                    target_group="B",
                    kind="gossip",
                    payload=payload,
                    digest=digest,
                    sender_group_size=5,
                ),
                sender,
            )

        # Two Byzantine members push a forged digest; three correct members
        # send the real one.  Only the real message reaches a majority.
        share("forged", "bad-digest", "a0")
        share("forged", "bad-digest", "a1")
        share("real", "good-digest", "a2")
        share("real", "good-digest", "a3")
        assert hosts[receiver].accepted == []
        share("real", "good-digest", "a4")
        payloads = [p for _, p, _, _ in hosts[receiver].accepted]
        assert payloads == ["real"]
        # The forged bucket can never deliver now: the gm id is retired and
        # its conflicting buckets were purged with it.
        assert messenger.pending_count() == 0
        share("forged", "bad-digest", "a4")
        assert [p for _, p, _, _ in hosts[receiver].accepted] == ["real"]
        assert messenger.pending_count() == 0
