"""Ablation (section 5.1): the message-digest optimisation for group messages.

Only a majority of a vgroup's members send the full payload of a group
message; the rest send a digest.  This ablation measures the bytes put on the
wire by one Atum broadcast with the optimisation on and off, for the same
system and workload; delivery must be complete in both cases.
"""

from repro.analysis import format_table
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters


def _broadcast_bytes(use_digest: bool, payload_bytes: int, seed: int = 0):
    params = AtumParameters(hc=4, rwl=6, gmax=8, gmin=4, round_duration=0.5, expected_system_size=64)
    cluster = AtumCluster(params, seed=seed)
    addresses = [f"n{i}" for i in range(64)]
    cluster.build_static(addresses)
    for node in cluster.nodes.values():
        node.messenger.use_digest_optimization = use_digest
    bcast = cluster.broadcast("n0", "x" * 10, size_bytes=payload_bytes)
    cluster.run(until=60.0)
    assert cluster.delivery_fraction(bcast) == 1.0
    return cluster.sim.metrics.counter("net.bytes_sent")


def _run(scale):
    rows = []
    for payload_bytes in (512, 4096, 16384):
        with_digest = _broadcast_bytes(True, payload_bytes)
        without_digest = _broadcast_bytes(False, payload_bytes)
        rows.append(
            {
                "payload_bytes": payload_bytes,
                "bytes_with_digest_opt": int(with_digest),
                "bytes_without_digest_opt": int(without_digest),
                "savings_percent": round(100.0 * (1 - with_digest / without_digest), 1),
            }
        )
    return rows


def test_ablation_digest_optimization(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: message-digest optimisation (bytes per broadcast)"))

    for row in rows:
        assert row["bytes_with_digest_opt"] < row["bytes_without_digest_opt"]
    # The savings grow with the payload size (digests have a fixed size).
    savings = [row["savings_percent"] for row in rows]
    assert savings == sorted(savings)
