"""The simulation event loop and clock."""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the simulated clock, the event queue, the registry of
    random streams and the metrics registry.  All protocol components hold a
    reference to a single ``Simulator`` and interact with simulated time only
    through it.

    Typical usage::

        sim = Simulator(seed=7)
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
    """

    def __init__(self, seed: int = 0) -> None:
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.metrics = MetricsRegistry()
        self._now = 0.0
        self._processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events processed so far."""
        return self._processed

    # -------------------------------------------------------------- scheduling

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.queue.push(self._now + delay, callback, priority, tag)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` to run at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is before now={self._now}"
            )
        return self.queue.push(time, callback, priority=priority, tag=tag)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self.queue.notify_cancelled()

    # ------------------------------------------------------------------- runs

    def stop(self) -> None:
        """Request the current :meth:`run` call to stop after the current event."""
        self._stop_requested = True

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        event.callback()
        self._processed += 1
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        trace: Optional[List[Tuple[float, Optional[str]]]] = None,
    ) -> float:
        """Run the event loop.

        Args:
            until: Stop once simulated time would exceed this value.  Events at
                exactly ``until`` are processed.
            max_events: Stop after this many events (safety valve in tests).
            trace: When given, ``(time, tag)`` is appended for every processed
                event — the hook used by the golden-trace determinism tests.

        Returns:
            The simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stop_requested = False
        processed_this_run = 0
        # Hot loop: operate directly on the queue's tuple heap so that each
        # iteration costs one heappop plus the callback, with no per-event
        # method calls.  Ordering is identical to pop()/step(): entries are
        # (time, priority, seq, event) tuples and cancelled events are
        # skipped lazily.  ``self._now`` is re-read each iteration because
        # callbacks never mutate it, only this loop does.
        heap = self.queue._heap
        heappop = heapq.heappop
        queue = self.queue
        try:
            if max_events is None and trace is None:
                # Specialized hot loop for plain ``run(until=...)`` /
                # ``run()`` calls: no per-event budget or trace checks, one
                # heap-root peek per event, and the processed-event counter
                # accumulates locally (flushed below).  Ordering and
                # semantics are identical to the general loop.
                has_until = until is not None
                processed_local = 0
                try:
                    while not self._stop_requested:
                        if not heap:
                            queue._live = 0
                            break
                        entry = heap[0]
                        event = entry[3]
                        if event.cancelled:
                            heappop(heap)
                            continue
                        next_time = entry[0]
                        if has_until and next_time > until:
                            self._now = until
                            break
                        heappop(heap)
                        queue._live -= 1
                        self._now = next_time
                        event.callback()
                        processed_local += 1
                finally:
                    self._processed += processed_local
            else:
                while True:
                    if self._stop_requested:
                        break
                    if max_events is not None and processed_this_run >= max_events:
                        break
                    while heap and heap[0][3].cancelled:
                        heappop(heap)
                    if not heap:
                        queue._live = 0
                        break
                    next_time = heap[0][0]
                    if until is not None and next_time > until:
                        self._now = until
                        break
                    event = heappop(heap)[3]
                    queue._live -= 1
                    self._now = next_time
                    if trace is not None:
                        trace.append((next_time, event.tag))
                    event.callback()
                    self._processed += 1
                    processed_this_run += 1
        finally:
            self._running = False
        if until is not None and self._now < until and self.queue.peek_time() is None:
            # Nothing left to do before the horizon; advance the clock so that
            # callers observing ``now`` see the requested horizon.
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until the event queue drains completely."""
        return self.run(max_events=max_events)


__all__ = ["Simulator", "SimulationError"]
