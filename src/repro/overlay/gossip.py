"""Gossip forwarding policies over the H-graph.

Atum disseminates broadcast messages by gossiping group messages along the
H-graph edges.  Which neighbours a vgroup forwards to is decided by the
application-provided ``forward`` callback (paper section 3.3.4); this module
provides the standard policies discussed in the paper:

* :func:`flood_policy` -- forward on every cycle (lowest latency, most load);
* :func:`single_cycle_policy` / :func:`cycles_policy` -- forward only along a
  fixed number of cycles (used by AStream to trade latency for throughput);
* :func:`random_policy` -- classic gossip: forward to a random subset of
  neighbours, while always including one deterministic cycle so that the
  probabilistic delivery of gossip becomes deterministic (section 3.2).

Policies run once per (vgroup, message) hop, so they lean on the H-graph's
cached per-vertex neighbour tables instead of rebuilding neighbour lists per
message, and they derive cycle subsets from a **cached stable hash** of the
message id (Python's builtin ``hash`` is salted per process; the previous
``sum(ord(ch))`` derivation clustered similar gm-ids onto the same cycle).
The pre-PR derivations remain available behind ``legacy_hash`` /
``legacy_shuffle`` flags for golden-trace replay and A/B experiments.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, List, Sequence, Set, Tuple

from repro.overlay.hgraph import HGraph

#: A forward policy maps (graph, current vgroup, message id, rng) to the list
#: of neighbour vgroups to forward to.
ForwardPolicy = Callable[[HGraph, str, str, random.Random], List[str]]

#: Bound on the message-id hash memos (message ids repeat for every hop of a
#: dissemination, then die; a full reset simply re-hashes the live ids).
_HASH_CACHE_LIMIT = 8192

_stable_hash_cache: dict = {}
_legacy_hash_cache: dict = {}


def stable_message_hash(message_id: str) -> int:
    """A process-independent, well-spread hash of a message id (cached).

    SHA-256 based, so ids that differ by one character land on unrelated
    cycles (``sum(ord(ch))`` mapped e.g. ``"gm-12"`` and ``"gm-21"`` to the
    same cycle); sessions and processes always agree on the value.
    """
    value = _stable_hash_cache.get(message_id)
    if value is None:
        if len(_stable_hash_cache) >= _HASH_CACHE_LIMIT:
            _stable_hash_cache.clear()
        value = int.from_bytes(
            hashlib.sha256(message_id.encode("utf-8")).digest()[:8], "big"
        )
        _stable_hash_cache[message_id] = value
    return value


def _legacy_message_hash(message_id: str) -> int:
    """The pre-PR ``sum(ord(ch))`` derivation (kept for golden-trace replay)."""
    value = _legacy_hash_cache.get(message_id)
    if value is None:
        if len(_legacy_hash_cache) >= _HASH_CACHE_LIMIT:
            _legacy_hash_cache.clear()
        value = sum(ord(ch) for ch in message_id)
        _legacy_hash_cache[message_id] = value
    return value


def _cycle_neighbors(graph: HGraph, vertex: str, cycles: Sequence[int]) -> List[str]:
    neighbors: List[str] = []
    seen: Set[str] = set()
    pairs = graph.cycle_pairs(vertex)
    for cycle in cycles:
        for neighbor in pairs[cycle]:
            if neighbor != vertex and neighbor not in seen:
                seen.add(neighbor)
                neighbors.append(neighbor)
    return neighbors


def flood_policy(graph: HGraph, vertex: str, message_id: str, rng: random.Random) -> List[str]:
    """Forward to every neighbour on every cycle (latency-optimal)."""
    return list(graph.gossip_neighbors(vertex))


def cycles_policy(count: int, legacy_hash: bool = False) -> ForwardPolicy:
    """Forward along ``count`` consecutive cycles only (throughput-friendly).

    The cycle subset is deterministic (derived from a stable hash of the
    message id) so that every vgroup uses the same cycles for a given stream,
    which is what keeps delivery deterministic.  ``legacy_hash=True`` selects
    the pre-PR ``sum(ord(ch))`` derivation for golden-trace replay.

    Forward lists are memoised per (vertex, starting cycle) in the graph's
    per-vertex derived cache, which topology mutations invalidate.
    """
    hash_fn = _legacy_message_hash if legacy_hash else stable_message_hash

    def policy(graph: HGraph, vertex: str, message_id: str, rng: random.Random) -> List[str]:
        hc = graph.hc
        usable = min(count, hc)
        start = hash_fn(message_id) % hc
        derived = graph.derived_cache(vertex)
        key = ("cycles", usable, start)
        cached = derived.get(key)
        if cached is None:
            cycles = [(start + offset) % hc for offset in range(usable)]
            cached = derived[key] = tuple(_cycle_neighbors(graph, vertex, cycles))
        return list(cached)

    return policy


#: Shared single-cycle policy instance so its per-vertex memos are reused.
_single_cycle = cycles_policy(1)


def single_cycle_policy(graph: HGraph, vertex: str, message_id: str, rng: random.Random) -> List[str]:
    """Forward along a single cycle (the ``Single`` configuration of AStream)."""
    return _single_cycle(graph, vertex, message_id, rng)


def random_policy(
    fanout: int = 2, guaranteed_cycle: int = 0, legacy_shuffle: bool = False
) -> ForwardPolicy:
    """Classic gossip: ``fanout`` random neighbours plus one guaranteed cycle.

    Forwarding always includes both neighbours on ``guaranteed_cycle``; this is
    the mechanism by which Atum turns gossip's probabilistic delivery guarantee
    into a deterministic one: every vgroup gossips at least with its
    neighbours on a specific cycle, so the message deterministically traverses
    that whole cycle regardless of the random draws — even a "maximally
    unlucky" RNG cannot prevent delivery (section 3.2).

    The random subset is drawn with a single ``rng.sample`` over the vertex's
    cached, deterministically ordered neighbour list, so two runs with the
    same seed pick identical forward sets on every interpreter (the pre-PR
    implementation shuffled a ``set``-ordered list, which made the picks
    depend on Python's per-process hash salt).  ``legacy_shuffle=True``
    reproduces the old shuffle-and-slice draw behaviour — note that even then
    the candidate order is the cached deterministic one, not the historical
    hash-salted set order.
    """

    def policy(graph: HGraph, vertex: str, message_id: str, rng: random.Random) -> List[str]:
        derived = graph.derived_cache(vertex)
        key = ("random", guaranteed_cycle)
        cached = derived.get(key)
        if cached is None:
            gc = guaranteed_cycle % graph.hc
            guaranteed = _cycle_neighbors(graph, vertex, [gc])
            others = [n for n in graph.gossip_neighbors(vertex) if n not in guaranteed]
            cached = derived[key] = (guaranteed, others)
        guaranteed, others = cached
        if legacy_shuffle:
            pool = list(others)
            rng.shuffle(pool)
            return guaranteed + pool[:fanout]
        if fanout >= len(others):
            return guaranteed + list(others)
        return guaranteed + rng.sample(others, fanout)

    return policy


def dissemination_trace(
    graph: HGraph,
    origin: str,
    policy: ForwardPolicy,
    rng: random.Random,
    message_id: str = "m",
    max_rounds: int = 1000,
) -> List[List[Tuple[str, List[str]]]]:
    """Round-by-round forwarding trace: one ``(vertex, targets)`` row per hop.

    Frontier vertices are visited in sorted order, so both the trace and any
    randomness the policy consumes are reproducible across processes — this is
    what the golden dissemination-trace tests serialize and replay.
    """
    reached: Set[str] = {origin}
    frontier: List[str] = [origin]
    rounds: List[List[Tuple[str, List[str]]]] = []
    while frontier and len(reached) < len(graph) and len(rounds) < max_rounds:
        row: List[Tuple[str, List[str]]] = []
        fresh: Set[str] = set()
        for vertex in frontier:
            targets = policy(graph, vertex, message_id, rng)
            row.append((vertex, list(targets)))
            for neighbor in targets:
                if neighbor not in reached:
                    reached.add(neighbor)
                    fresh.add(neighbor)
        frontier = sorted(fresh)
        rounds.append(row)
    return rounds


def dissemination_rounds(
    graph: HGraph,
    origin: str,
    policy: ForwardPolicy,
    rng: random.Random,
    message_id: str = "m",
    max_rounds: int = 1000,
) -> Tuple[int, Set[str]]:
    """Simulate round-by-round dissemination; return (rounds, reached vertices).

    This structural helper is used in tests and in the latency model: it tells
    how many gossip hops are needed for a message forwarded under ``policy`` to
    reach every vgroup.
    """
    reached: Set[str] = {origin}
    frontier: Set[str] = {origin}
    rounds = 0
    while frontier and len(reached) < len(graph) and rounds < max_rounds:
        next_frontier: Set[str] = set()
        for vertex in frontier:
            for neighbor in policy(graph, vertex, message_id, rng):
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
        rounds += 1
    return rounds, reached


__all__ = [
    "ForwardPolicy",
    "stable_message_hash",
    "flood_policy",
    "cycles_policy",
    "single_cycle_policy",
    "random_policy",
    "dissemination_rounds",
    "dissemination_trace",
]
