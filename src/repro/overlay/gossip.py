"""Gossip forwarding policies over the H-graph.

Atum disseminates broadcast messages by gossiping group messages along the
H-graph edges.  Which neighbours a vgroup forwards to is decided by the
application-provided ``forward`` callback (paper section 3.3.4); this module
provides the standard policies discussed in the paper:

* :func:`flood_policy` -- forward on every cycle (lowest latency, most load);
* :func:`single_cycle_policy` / :func:`cycles_policy` -- forward only along a
  fixed number of cycles (used by AStream to trade latency for throughput);
* :func:`random_policy` -- classic gossip: forward to a random subset of
  neighbours, while always including one deterministic cycle so that the
  probabilistic delivery of gossip becomes deterministic (section 3.2).
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Set, Tuple

from repro.overlay.hgraph import HGraph

#: A forward policy maps (graph, current vgroup, message id, rng) to the list
#: of neighbour vgroups to forward to.
ForwardPolicy = Callable[[HGraph, str, str, random.Random], List[str]]


def _cycle_neighbors(graph: HGraph, vertex: str, cycles: Sequence[int]) -> List[str]:
    neighbors: List[str] = []
    seen: Set[str] = set()
    for cycle in cycles:
        for neighbor in graph.cycle_neighbors(vertex, cycle):
            if neighbor != vertex and neighbor not in seen:
                seen.add(neighbor)
                neighbors.append(neighbor)
    return neighbors


def flood_policy(graph: HGraph, vertex: str, message_id: str, rng: random.Random) -> List[str]:
    """Forward to every neighbour on every cycle (latency-optimal)."""
    return _cycle_neighbors(graph, vertex, range(graph.hc))


def cycles_policy(count: int) -> ForwardPolicy:
    """Forward along the first ``count`` cycles only (throughput-friendly).

    The cycle subset is deterministic (derived from the message id) so that
    every vgroup uses the same cycles for a given stream, which is what keeps
    delivery deterministic.
    """

    def policy(graph: HGraph, vertex: str, message_id: str, rng: random.Random) -> List[str]:
        usable = min(count, graph.hc)
        # Derive a stable starting cycle from the message id so different
        # streams spread over different cycles.
        start = sum(ord(ch) for ch in message_id) % graph.hc
        cycles = [(start + offset) % graph.hc for offset in range(usable)]
        return _cycle_neighbors(graph, vertex, cycles)

    return policy


def single_cycle_policy(graph: HGraph, vertex: str, message_id: str, rng: random.Random) -> List[str]:
    """Forward along a single cycle (the ``Single`` configuration of AStream)."""
    return cycles_policy(1)(graph, vertex, message_id, rng)


def random_policy(fanout: int = 2, guaranteed_cycle: int = 0) -> ForwardPolicy:
    """Classic gossip: ``fanout`` random neighbours plus one guaranteed cycle.

    Forwarding always includes both neighbours on ``guaranteed_cycle``; this is
    the mechanism by which Atum turns gossip's probabilistic delivery guarantee
    into a deterministic one (every vgroup gossips at least with its neighbours
    on a specific cycle, so the message traverses that whole cycle).
    """

    def policy(graph: HGraph, vertex: str, message_id: str, rng: random.Random) -> List[str]:
        guaranteed = _cycle_neighbors(graph, vertex, [guaranteed_cycle % graph.hc])
        others = [n for n in graph.neighbors(vertex) if n not in guaranteed]
        rng.shuffle(others)
        return guaranteed + others[:fanout]

    return policy


def dissemination_rounds(
    graph: HGraph,
    origin: str,
    policy: ForwardPolicy,
    rng: random.Random,
    message_id: str = "m",
    max_rounds: int = 1000,
) -> Tuple[int, Set[str]]:
    """Simulate round-by-round dissemination; return (rounds, reached vertices).

    This structural helper is used in tests and in the latency model: it tells
    how many gossip hops are needed for a message forwarded under ``policy`` to
    reach every vgroup.
    """
    reached: Set[str] = {origin}
    frontier: Set[str] = {origin}
    rounds = 0
    while frontier and len(reached) < len(graph) and rounds < max_rounds:
        next_frontier: Set[str] = set()
        for vertex in frontier:
            for neighbor in policy(graph, vertex, message_id, rng):
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
        rounds += 1
    return rounds, reached


__all__ = [
    "ForwardPolicy",
    "flood_policy",
    "cycles_policy",
    "single_cycle_policy",
    "random_policy",
    "dissemination_rounds",
]
