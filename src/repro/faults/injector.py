"""Network-level fault injection: per-link loss, duplication and delay spikes.

The injector is an ``on_send`` middleware (see :mod:`repro.core.middleware`)
consulted once per routed message.  It owns a dedicated RNG stream
(``faults.network``) derived from the simulation seed, so fault draws are
deterministic and never perturb the network's own randomness (send-order
shuffles, baseline loss, latency samples keep their exact draw sequence).

Rules that do not match a message's link or time window draw nothing, which
keeps runs with inactive windows deterministic regardless of how much
traffic flows outside them.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.middleware import Middleware, MiddlewareChain, MiddlewareContext
from repro.faults.plan import LinkFault
from repro.net.network import Network
from repro.sim.simulator import Simulator


class LinkFaultInjector(Middleware):
    """Evaluates :class:`~repro.faults.plan.LinkFault` rules per message.

    The network's ``on_send`` pipeline invokes :meth:`on_send` for every
    message it routes while the hosting chain is installed; the verdict says
    whether to drop the message, how much extra propagation delay to add,
    and how many copies to deliver.  :meth:`perturb` holds the rule logic in
    injector terms and stays directly callable by unit tests.
    """

    def __init__(self, sim: Simulator, links: Sequence[LinkFault]) -> None:
        self.links: Tuple[LinkFault, ...] = tuple(links)
        self._rng = sim.rng.stream("faults.network")
        self._counters = sim.metrics.counters

    def on_send(self, ctx: MiddlewareContext) -> None:
        """Apply the rule verdict to one routed message's send context."""
        verdict = self.perturb(ctx.sender, ctx.receiver, ctx.now)
        if verdict is None:
            return
        dropped, extra_delay, copies, corrupted = verdict
        if dropped:
            ctx.drop = True
            ctx.stop = True
            return
        ctx.extra_delay += extra_delay
        ctx.copies += copies - 1
        if corrupted:
            ctx.corrupted = True

    def perturb(
        self, sender: str, receiver: str, now: float
    ) -> Optional[Tuple[bool, float, int, bool]]:
        """Fault verdict for one message: ``(drop, extra_delay, copies, corrupted)``.

        Returns ``None`` when no rule matches, so the caller can stay on the
        unperturbed arithmetic.  All matching rules compose: loss draws are
        independent per rule, delays add up, duplication contributes one
        extra copy per matching rule that fires, and any firing corruption
        draw marks the message (the network delivers it bit-flipped for the
        receiver to detect and discard).
        """
        matched = False
        extra_delay = 0.0
        copies = 1
        corrupted = False
        rng = self._rng
        counters = self._counters
        for rule in self.links:
            if not rule.matches(sender, receiver, now):
                continue
            matched = True
            if rule.loss > 0.0 and rng.random() < rule.loss:
                counters["faults.messages_dropped"] += 1.0
                return (True, 0.0, 0, False)
            if rule.extra_delay > 0.0 or rule.jitter > 0.0:
                delay = rule.extra_delay
                if rule.jitter > 0.0:
                    delay += rng.random() * rule.jitter
                extra_delay += delay
            if rule.duplicate > 0.0 and rng.random() < rule.duplicate:
                counters["faults.messages_duplicated"] += 1.0
                copies += 1
            if rule.corrupt > 0.0 and rng.random() < rule.corrupt and not corrupted:
                counters["faults.messages_corrupted"] += 1.0
                corrupted = True
        if not matched:
            return None
        if extra_delay > 0.0:
            # Once per delayed message, however many rules contributed.
            counters["faults.messages_delayed"] += 1.0
        return (False, extra_delay, copies, corrupted)


def install_link_faults(
    network: Network, sim: Simulator, links: Sequence[LinkFault]
) -> Optional[LinkFaultInjector]:
    """Install a :class:`LinkFaultInjector` for ``links`` on ``network``.

    Bare-network convenience: wraps the injector in a fresh middleware
    chain and installs it directly on the network (clusters route through
    ``AtumCluster.middleware_chain()`` instead).  Returns the injector, or
    ``None`` when ``links`` is empty (in which case the network keeps its
    untouched fast paths).
    """
    if not links:
        return None
    injector = LinkFaultInjector(sim, links)
    network.install_middleware(MiddlewareChain(injector, scenario="link-faults"))
    return injector


__all__ = ["LinkFaultInjector", "install_link_faults"]
