"""The cluster driver: hosts many Atum nodes on one simulator.

``AtumCluster`` plays the role of the deployment scripts of the paper's
evaluation: it creates nodes, bootstraps the first one, drives joins, leaves
and broadcasts, injects Byzantine behaviour, and exposes measurement helpers
(delivery latencies, growth curves, churn statistics) used by the tests,
examples and benchmarks.

The cluster also implements the *overlay directory* consulted by nodes when
they gossip: in a real deployment every node learns the composition of its
neighbouring vgroups through the replicated state of its own vgroup (updated
by group messages whenever a neighbour reconfigures); here that replicated
knowledge is centralised in the membership engine and served to nodes through
the directory interface, which keeps the node-level code identical while
avoiding a per-node copy of the neighbourhood state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import AtumParameters, SmrKind
from repro.core.middleware import (
    MiddlewareChain,
    MiddlewareContext,
    MiddlewareError,
    overrides_hook,
)
from repro.core.node import AtumNode, BroadcastMessage
from repro.crypto.keys import KeyRegistry
from repro.group.antientropy import AntiEntropyConfig, AntiEntropyTap
from repro.group.vgroup import VGroupView
from repro.net.latency import LanProfile, LatencyModel, WanProfile
from repro.net.network import Network, NetworkConfig
from repro.overlay.directory import MergeDecision, SplitBrainCoordinator
from repro.overlay.membership import MembershipEngine, MembershipError
from repro.sim.simulator import Simulator


class AtumCluster:
    """A collection of Atum nodes plus the substrate they run on."""

    def __init__(
        self,
        params: Optional[AtumParameters] = None,
        seed: int = 0,
        latency_model: Optional[LatencyModel] = None,
        network_config: Optional[NetworkConfig] = None,
        enable_heartbeats: bool = False,
        shuffle_enabled: bool = True,
        antientropy: Optional["AntiEntropyConfig"] = None,
    ) -> None:
        self.params = params or AtumParameters()
        self.sim = Simulator(seed=seed)
        if latency_model is None:
            latency_model = (
                LanProfile() if self.params.smr_kind is SmrKind.SYNC else WanProfile()
            )
        self.latency_model = latency_model
        self.network = Network(self.sim, latency_model=latency_model, config=network_config)
        self.registry = KeyRegistry()
        self.enable_heartbeats = enable_heartbeats
        # Optional anti-entropy repair layer (repro.group.antientropy): a
        # config here equips every node with the digest-exchange repair
        # actor; None keeps runs byte-identical to pre-anti-entropy builds.
        self.antientropy_config = antientropy
        typical_latency = 0.001 if self.params.smr_kind is SmrKind.SYNC else 0.05
        self.engine = MembershipEngine(
            sim=self.sim,
            config=self.params.membership_config(shuffle_enabled=shuffle_enabled),
            cost=self.params.cost_model(network_latency=typical_latency),
            on_view_changed=self._on_view_changed,
            on_group_removed=self._on_group_removed,
            on_node_left=self._on_node_left,
            on_join_completed=self._on_join_completed,
        )
        self.nodes: Dict[str, AtumNode] = {}
        # Suspicion reports age out after the same deadline the nodes'
        # heartbeat monitors use to form a suspicion (period * misses);
        # both derive from params.heartbeat_config() so they cannot drift.
        # Runtime period changes recompute this window in the same event
        # (ParameterBus._apply_heartbeat_period) — this snapshot must never
        # be read as the live period.
        heartbeat_config = self.params.heartbeat_config()
        self._suspicion_window = (
            heartbeat_config.period * heartbeat_config.misses_before_eviction
        )
        self._eviction_requests: Set[str] = set()
        # Per suspect: reporter -> time of the latest suspicion report.
        # Reports age out (see request_eviction), so a Byzantine minority
        # cannot accumulate stale accusations until they look like a majority.
        self._suspicions: Dict[str, Dict[str, float]] = {}
        # Smallest size each vgroup was ever seen at, for the messengers'
        # forged-size cross-check (see GroupMessenger.handle): an honest
        # share's claimed sender-group size is the size at send time, which
        # is never below this minimum, so the check can reject size lies
        # without ever blocking honest traffic during reconfigurations.
        self._min_group_sizes: Dict[str, int] = {}
        # Middleware pipeline (repro.core.middleware): one chain per cluster,
        # installed lazily via middleware_chain()/install_middleware().  The
        # per-hook pipelines below are compiled from the chain; ``None`` means
        # "no pipeline" and costs one truthiness check per membership event.
        self._middleware: Optional[MiddlewareChain] = None
        # Identity-scanned lists, not id()-keyed sets: chains hold a handful
        # of middleware, and stable-identity bookkeeping must not depend on
        # address reuse (atumlint ATL008).
        self._mw_setup_done: List[Any] = []
        self._mw_timers: List[Any] = []
        self._view_hooks = None
        self._eviction_hooks = None
        self._node_added_hooks = None
        self._node_left_hooks = None
        self._deliver_hooks = None
        # Evicted identities already announced through on_eviction: the
        # durable exactly-once guard (``_eviction_requests`` is transient —
        # _on_node_left clears it, which is what let the split-merge race
        # re-announce an eviction).
        self._evictions_notified: Set[str] = set()
        # The attached invariant monitor, if any (see attach_monitor).  Kept
        # as a plain reference for tests and reporting; all event dispatch
        # goes through the middleware pipelines above.
        self.monitor = None
        # The lazily-created ParameterBus (repro.core.policies): the single
        # validated path for runtime parameter changes.  ``None`` until a
        # policy asks for it, so static deployments carry no bus state.
        self._parameter_bus = None
        # Split-brain bookkeeping (repro.overlay.directory): one coordinator
        # per *active* split, keyed by the network split id, so overlapping
        # concurrent splits each keep their own per-side books.  Populated
        # only between cluster.split() and the matching cluster.merge();
        # clusters that never split carry no coordinator and stay
        # byte-identical.
        self._split_brains: Dict[int, SplitBrainCoordinator] = {}
        # One record per completed reconciliation, for the invariant
        # monitor's post-run directory-convergence check.
        self._directory_reconciliations: List[Dict[str, Any]] = []
        if antientropy is not None:
            # The repair layer taps every broadcast delivery; route it
            # through the pipeline like any other interceptor.  The tap has
            # no on_send hook, so network fast paths stay untouched.
            self.install_middleware(MiddlewareChain(AntiEntropyTap()))

    # ---------------------------------------------------------------- middleware

    def install_middleware(self, chain: MiddlewareChain) -> MiddlewareChain:
        """Install ``chain`` as this cluster's middleware pipeline.

        One chain per cluster: installing a second one raises
        :class:`MiddlewareError` — compose scenarios by adding middleware
        to the existing chain (:meth:`middleware_chain`) instead.  The
        chain is simultaneously installed on the network (``on_send``) and
        its compiled ``on_deliver`` pipeline distributed to every node.
        """
        if self._middleware is not None:
            raise MiddlewareError(
                "a middleware chain is already installed on this cluster; "
                "add to cluster.middleware_chain() instead of installing a "
                "second one"
            )
        self._middleware = chain
        self.network.install_middleware(chain)
        chain.subscribe(self._refresh_middleware)
        self._refresh_middleware()
        return chain

    def middleware_chain(self) -> MiddlewareChain:
        """The cluster's chain, installing an empty one on first use."""
        if self._middleware is None:
            self.install_middleware(MiddlewareChain())
        return self._middleware

    def _refresh_middleware(self) -> None:
        """(Re)compile the per-hook pipelines after a chain mutation."""
        chain = self._middleware
        if chain is None:
            return
        for middleware in chain:
            if not any(done is middleware for done in self._mw_setup_done):
                self._mw_setup_done.append(middleware)
                middleware.setup(self)
            if (
                middleware.timer_period is not None
                and not any(armed is middleware for armed in self._mw_timers)
                and overrides_hook(middleware, "on_timer")
            ):
                self._mw_timers.append(middleware)
                self.sim.schedule(
                    middleware.timer_period,
                    lambda mw=middleware: self._middleware_timer_tick(mw),
                    tag="mw.timer",
                )
        self._view_hooks = chain.hooks("on_view_change")
        self._eviction_hooks = chain.hooks("on_eviction")
        self._node_added_hooks = chain.hooks("on_node_added")
        self._node_left_hooks = chain.hooks("on_node_left")
        self._deliver_hooks = chain.hooks("on_deliver")
        for node in self.nodes.values():
            node.set_middleware_hooks(self._deliver_hooks, chain.scenario)

    def _disarm_timer(self, middleware) -> None:
        self._mw_timers = [armed for armed in self._mw_timers if armed is not middleware]

    def _middleware_timer_tick(self, middleware) -> None:
        chain = self._middleware
        if chain is None or middleware not in chain:
            self._disarm_timer(middleware)
            return
        ctx = MiddlewareContext(
            "on_timer", now=self.sim.now, scenario=chain.scenario
        )
        middleware.on_timer(ctx)  # atumlint: allow[ATL009] the sanctioned per-middleware timer dispatch site
        if ctx.stop:
            self._disarm_timer(middleware)
            return
        self.sim.schedule(
            middleware.timer_period,
            lambda: self._middleware_timer_tick(middleware),
            tag="mw.timer",
        )

    def parameter_bus(self):
        """The cluster's :class:`repro.core.policies.ParameterBus` (lazy).

        Adaptive policies adjust runtime parameters exclusively through
        this bus — mutating ``cluster.params`` (or the engine's
        ``MembershipConfig``) directly bypasses validation, rate limiting
        and the coherence appliers, and is exactly the class of stale-read
        bug the bus exists to prevent.
        """
        if self._parameter_bus is None:
            from repro.core.policies import ParameterBus

            self._parameter_bus = ParameterBus(self)
        return self._parameter_bus

    def attach_monitor(self, monitor) -> None:
        """Attach a runtime invariant monitor (``repro.faults.invariants``).

        The monitor joins the middleware chain, which feeds it node
        creation, view changes, departures, evictions and both delivery
        channels.  Attaching a second monitor raises
        :class:`MiddlewareError` — silently replacing one mid-run would
        split its observation history.
        """
        if self.monitor is not None:
            raise MiddlewareError(
                "an invariant monitor is already attached to this cluster"
            )
        self.monitor = monitor
        self.middleware_chain().add(monitor)

    # ------------------------------------------------------------- node creation

    def add_node(
        self,
        address: str,
        deliver_fn: Optional[Callable[[BroadcastMessage], None]] = None,
        forward_fn: Optional[Callable[[BroadcastMessage, str], bool]] = None,
        forward_policy: str = "flood",
        byzantine: Optional[str] = None,
    ) -> AtumNode:
        """Create (but do not yet join) a node actor attached to the network."""
        if address in self.nodes:
            return self.nodes[address]
        if isinstance(self.latency_model, WanProfile):
            self.latency_model.assign(address)
        node = AtumNode(
            sim=self.sim,
            address=address,
            params=self.params,
            network=self.network,
            registry=self.registry,
            directory=self,
            deliver_fn=deliver_fn,
            forward_fn=forward_fn,
            forward_policy=forward_policy,
            byzantine=byzantine,
            enable_heartbeats=self.enable_heartbeats,
            antientropy=self.antientropy_config,
        )
        self.nodes[address] = node
        self.network.register(node)
        if self._parameter_bus is not None:
            # Parameters already adapted at runtime must reach late joiners:
            # most flow through the shared AtumParameters, but per-node
            # overrides (the anti-entropy cadence) need re-application.
            self._parameter_bus.apply_to_node(node)
        chain = self._middleware
        if chain is not None:
            node.set_middleware_hooks(self._deliver_hooks, chain.scenario)
            hooks = self._node_added_hooks
            if hooks is not None:
                ctx = MiddlewareContext(
                    "on_node_added",
                    now=self.sim.now,
                    scenario=chain.scenario,
                    address=address,
                    node=node,
                )
                for hook in hooks:
                    hook(ctx)
                    if ctx.stop:
                        break
        return node

    def node(self, address: str) -> AtumNode:
        return self.nodes[address]

    # --------------------------------------------------------------- membership

    def bootstrap(self, address: str, **node_kwargs: Any) -> AtumNode:
        """Create the system: the first node forms a single-member vgroup."""
        node = self.add_node(address, **node_kwargs)
        self.engine.bootstrap(address)
        return node

    def build_static(
        self,
        addresses: Sequence[str],
        byzantine: Iterable[str] = (),
        target_group_size: Optional[int] = None,
        **node_kwargs: Any,
    ) -> None:
        """Construct a fully grown system directly (no join replay).

        ``byzantine`` addresses are created as silent Byzantine nodes; they are
        counted in vgroup memberships (as in the paper's fault-injection
        experiments) but do not participate in any protocol.
        """
        byzantine_set = set(byzantine)
        for address in addresses:
            mode = "silent" if address in byzantine_set else None
            self.add_node(address, byzantine=mode, **node_kwargs)
        self.engine.build_static(list(addresses), target_group_size=target_group_size)

    def join(self, address: str, contact: Optional[str] = None, **node_kwargs: Any) -> AtumNode:
        """Join a new node through a contact node (section 3.3.2)."""
        node = self.add_node(address, **node_kwargs)
        self.engine.join(address, contact_node=contact)
        return node

    def leave(self, address: str) -> None:
        """Voluntarily leave the system (section 3.3.3)."""
        self.engine.leave(address)

    def request_eviction(self, peer: str, suspected_by: str) -> None:
        """Directory hook used by heartbeat monitors to evict unresponsive peers.

        An eviction proceeds only once a *strict majority* of the suspect's
        vgroup co-members have reported it recently -- inside a vgroup the
        eviction is an SMR agreement, so a Byzantine minority cannot evict
        correct nodes by pretending not to receive their heartbeats (the
        attack of the paper's section 6.1.3).  Two details are load-bearing
        for that argument:

        * the threshold is ``len(co_members) // 2 + 1`` -- a strict majority
          of the co-members, which any per-vgroup Byzantine minority falls
          short of (``(g-1)//2 + 1 > (g-1)//2``);
        * reports expire after the heartbeat suspicion deadline, so an
          adversary cannot bank accusations forever and combine them with a
          correct node's stale report about a long-recovered transient.
        """
        if peer in self._eviction_requests:
            return
        if peer not in self.engine.node_group:
            return
        view = self.engine.group_of(peer)
        now = self.sim.now
        suspicions = self._suspicions.setdefault(peer, {})
        if suspected_by != peer:
            suspicions[suspected_by] = now
        window = self._suspicion_window
        co_members = [member for member in view.members if member != peer]
        fresh = {
            reporter
            for reporter, reported_at in suspicions.items()
            if now - reported_at <= window
        }
        reporters = sorted(fresh.intersection(co_members))
        required = len(co_members) // 2 + 1
        if len(reporters) < required:
            return
        self._eviction_requests.add(peer)
        self._suspicions.pop(peer, None)
        if self._split_brains:
            # Cross-side eviction during a split: the deciding side cannot
            # reach the target *because of the split*, not because the
            # target failed.  The conviction is recorded in the deciding
            # side's directory and enforced at merge (evicted-on-either-
            # side stays evicted) instead of dismantling overlay state the
            # other side is actively using.  With overlapping splits the
            # eviction executes only if *every* active coordinator deems it
            # same-side — each is recorded regardless (no short-circuit),
            # so every deferring split enforces the conviction at its heal.
            allowed = True
            for _, coordinator in sorted(self._split_brains.items()):
                if not coordinator.record_eviction(reporters, peer):
                    allowed = False
            if not allowed:
                return
        self._notify_eviction(peer)
        try:
            self.engine.leave(peer, eviction=True)
        except MembershipError:
            # The suspect vanished between the majority check and the leave
            # (a racing voluntary departure or a concurrent eviction path).
            # Count it — a silent pass here hid real sequencing bugs — and
            # let the address be re-requested if it somehow reappears.
            self.sim.metrics.increment("cluster.eviction_leave_failed")
            self._eviction_requests.discard(peer)

    # --------------------------------------------------------------- split brain

    def split(self, sides: Sequence[Iterable[str]]) -> int:
        """Install a side-preserving split *with* per-side membership books.

        Beyond the network-level split, this arms a
        :class:`~repro.overlay.directory.SplitBrainCoordinator`: each side
        keeps processing joins and evictions independently, cross-side
        evictions are deferred, and :meth:`merge` reconciles the sides
        deterministically at heal.  Splits compose: calling ``split``
        again while one is active installs an *overlapping* split with
        its own coordinator (the network drops a message iff any active
        split separates the endpoints), and each heal reconciles only its
        own coordinator.  Returns the network split id.
        """
        frozen = [tuple(side) for side in sides]
        split_id = self.network.split(frozen)
        self._split_brains[split_id] = SplitBrainCoordinator(self.sim, frozen)
        return split_id

    def merge(self, split_id: Optional[int] = None) -> Optional[MergeDecision]:
        """Heal a split and reconcile its per-side directories.

        The merge is deterministic: evicted-on-either-side stays evicted
        (still-member addresses in the merged eviction set are evicted
        now), and joins are re-validated against the merged view — a
        joiner convicted on the other side is revoked.  With ``split_id``
        ``None``, every active split heals (in split-id order).  Because
        enforcement only routes departures to the remaining coordinators
        — and leaves never feed a merge decision — the decisions are
        identical under every heal order.  Returns the last
        :class:`~repro.overlay.directory.MergeDecision` (``None`` when no
        coordinator was armed).
        """
        if split_id is None:
            if not self._split_brains:
                self.network.merge(None)
                return None
            decision = None
            for active_id in sorted(self._split_brains):
                decision = self._merge_one(active_id)
            return decision
        return self._merge_one(split_id)

    def _merge_one(self, split_id: int) -> Optional[MergeDecision]:
        self.network.merge(split_id)
        coordinator = self._split_brains.pop(split_id, None)
        if coordinator is None:
            return None
        decision = coordinator.merge()
        for address in sorted(decision.evicted):
            self._eviction_requests.add(address)
            if address not in self.engine.node_group:
                continue
            self._notify_eviction(address)
            try:
                self.engine.leave(address, eviction=True)
            except MembershipError:
                self.sim.metrics.increment("directory.merge_eviction_failed")
                continue
            self.sim.metrics.increment("directory.merge_evictions_enforced")
        if decision.revoked:
            self.sim.metrics.increment(
                "directory.join_revalidations_revoked", len(decision.revoked)
            )
        self._directory_reconciliations.append(
            {"sides": coordinator.side_snapshots(), "decision": decision}
        )
        return decision

    def crash(self, address: str) -> None:
        """Crash a node: it stops responding (and heartbeating) but is not yet evicted."""
        node = self.nodes.get(address)
        if node is not None:
            node.byzantine = "mute"
            if node.heartbeats is not None:
                node.heartbeats.stop()

    def recover(self, address: str) -> None:
        """Recover a crashed node: it resumes correct behaviour.

        If the node is still a member (it was not evicted while down) its
        heartbeat monitor restarts; an evicted node stays outside the system
        and must re-join — under a *fresh* identity, as the membership
        invariants require.
        """
        node = self.nodes.get(address)
        if node is None:
            return
        node.byzantine = None
        if node.is_member and node.heartbeats is not None and not node.heartbeats.running:
            node.heartbeats.start()

    def make_byzantine(self, addresses: Iterable[str], mode: str = "silent") -> None:
        """Turn existing nodes into Byzantine nodes with the given behaviour."""
        for address in addresses:
            node = self.nodes.get(address)
            if node is not None:
                node.byzantine = mode

    # ---------------------------------------------------------------- broadcast

    def broadcast(self, address: str, payload: Any, size_bytes: int = 100) -> str:
        """Broadcast from the given node; returns the broadcast id."""
        return self.nodes[address].broadcast(payload, size_bytes=size_bytes)

    def delivery_times(self, bcast_id: str) -> Dict[str, float]:
        """Delivery time per correct member node for one broadcast."""
        times: Dict[str, float] = {}
        for address, node in self.nodes.items():
            if not node.is_correct or not node.is_member:
                continue
            time = node.delivery_time(bcast_id)
            if time is not None:
                times[address] = time
        return times

    def delivery_latencies(self, bcast_id: str, started_at: float) -> List[float]:
        return [time - started_at for time in self.delivery_times(bcast_id).values()]

    def delivery_fraction(self, bcast_id: str) -> float:
        """Fraction of correct member nodes that delivered the broadcast."""
        correct_members = [
            node for node in self.nodes.values() if node.is_correct and node.is_member
        ]
        if not correct_members:
            return 0.0
        delivered = sum(1 for node in correct_members if node.has_delivered(bcast_id))
        return delivered / len(correct_members)

    # --------------------------------------------------------------------- runs

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        return self.sim.run(until=until, max_events=max_events)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        return self.sim.run(until=self.sim.now + duration, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        return self.sim.run_until_idle(max_events=max_events)

    def run_until_membership_quiescent(
        self, max_time: float = 3600.0, check_interval: float = 5.0
    ) -> float:
        """Run until no membership operation is pending (or the horizon passes)."""
        deadline = self.sim.now + max_time
        while self.engine.pending_operations() > 0 and self.sim.now < deadline:
            self.sim.run(until=min(deadline, self.sim.now + check_interval))
        return self.sim.now

    # ----------------------------------------------------------------- directory

    def view_of_group(self, group_id: str) -> Optional[VGroupView]:
        return self.engine.groups.get(group_id)

    def smallest_group_size(self, group_id: str) -> Optional[int]:
        """Smallest size ``group_id`` was ever seen at (``None`` if unknown).

        Directory hook for the group messengers' forged-size rejection: a
        group message's claimed sender-group size may never pull the
        acceptance majority below the majority of this minimum.
        """
        view = self.engine.groups.get(group_id)
        tracked = self._min_group_sizes.get(group_id)
        if view is None:
            return tracked
        if tracked is None or view.size < tracked:
            tracked = self._min_group_sizes[group_id] = view.size
        return tracked

    def cycle_neighbor_ids(self, group_id: str) -> List[Tuple[str, str]]:
        """Per H-graph cycle, the (predecessor, successor) group ids."""
        graph = self.engine.graph
        if graph is None or group_id not in graph:
            return []
        return [graph.cycle_neighbors(group_id, cycle) for cycle in range(graph.hc)]

    # ------------------------------------------------------------------ queries

    @property
    def system_size(self) -> int:
        return self.engine.system_size

    @property
    def group_count(self) -> int:
        return self.engine.group_count

    def correct_member_addresses(self) -> List[str]:
        return [
            address
            for address, node in self.nodes.items()
            if node.is_correct and node.is_member
        ]

    def members_of(self, group_id: str) -> List[AtumNode]:
        view = self.view_of_group(group_id)
        if view is None:
            return []
        return [self.nodes[a] for a in view.members if a in self.nodes]

    def smr_stable_checkpoints(self) -> Dict[str, Dict[str, int]]:
        """Per-vgroup stable-checkpoint seq of every correct member replica.

        Reporting/test helper for checkpoint-enabled deployments: the
        decided-op count each member's PBFT replica has a certificate for
        (members whose engine does not checkpoint are omitted).  After a
        quiesced checkpoint-enabled run, co-members of a vgroup should
        agree on this value — a straggler indicates a stalled state
        transfer.
        """
        checkpoints: Dict[str, Dict[str, int]] = {}
        for address, node in self.nodes.items():
            if not node.is_correct or not node.is_member:
                continue
            seq = node.smr_stable_checkpoint()
            group_id = node.group_id()
            if seq is None or group_id is None:
                continue
            checkpoints.setdefault(group_id, {})[address] = seq
        return checkpoints

    # --------------------------------------------------------- engine callbacks

    def _notify_eviction(self, address: str) -> bool:
        """Dispatch ``on_eviction`` for ``address``, exactly once per identity.

        Every eviction decision path (heartbeat majority, merge
        enforcement) announces through here.  The durable
        ``_evictions_notified`` set deduplicates across paths: a node
        evicted same-side during a split, with its leave still in flight at
        heal, used to be re-announced by merge enforcement — observers
        counted the same identity twice.  Duplicates are suppressed (and
        counted) instead of dispatched.
        """
        if address in self._evictions_notified:
            self.sim.metrics.increment("cluster.eviction_duplicate_suppressed")
            return False
        self._evictions_notified.add(address)
        hooks = self._eviction_hooks
        if hooks is not None:
            ctx = MiddlewareContext(
                "on_eviction",
                now=self.sim.now,
                scenario=self._middleware.scenario,
                address=address,
            )
            for hook in hooks:
                hook(ctx)
                if ctx.stop:
                    break
        return True

    def _on_view_changed(self, view: VGroupView) -> None:
        previous_min = self._min_group_sizes.get(view.group_id)
        if previous_min is None or view.size < previous_min:
            self._min_group_sizes[view.group_id] = view.size
        for member in view.members:
            node = self.nodes.get(member)
            if node is not None:
                node.install_view(view)
        hooks = self._view_hooks
        if hooks is not None:
            ctx = MiddlewareContext(
                "on_view_change",
                now=self.sim.now,
                scenario=self._middleware.scenario,
                view=view,
            )
            for hook in hooks:
                hook(ctx)
                if ctx.stop:
                    break

    def _on_group_removed(self, group_id: str) -> None:
        # Members were re-homed before the group disappeared; nothing to do at
        # the node level.
        return

    def _on_node_left(self, address: str) -> None:
        for _, coordinator in sorted(self._split_brains.items()):
            coordinator.record_leave(address)
        node = self.nodes.get(address)
        if node is not None:
            node.clear_membership()
        self._eviction_requests.discard(address)
        # Drop any suspicion state about the departed node, or long churn
        # runs accumulate per-suspect report dicts forever.
        self._suspicions.pop(address, None)
        hooks = self._node_left_hooks
        if hooks is not None:
            ctx = MiddlewareContext(
                "on_node_left",
                now=self.sim.now,
                scenario=self._middleware.scenario,
                address=address,
            )
            for hook in hooks:
                hook(ctx)
                if ctx.stop:
                    break

    def _on_join_completed(self, address: str, group_id: str) -> None:
        view = self.engine.groups.get(group_id)
        node = self.nodes.get(address)
        if node is not None and view is not None:
            node.install_view(view)
        if view is None:
            return
        for split_id, coordinator in sorted(self._split_brains.items()):
            # The join was processed by the side hosting the target group:
            # bind the joiner there (network-level too, so its traffic
            # respects the split like any physically-placed machine's).
            # Each overlapping split binds independently — the host group
            # may straddle one split while sitting inside one side of
            # another.
            sides = [
                s
                for s in (
                    coordinator.side_of(m) for m in sorted(view.members) if m != address
                )
                if s is not None
            ]
            host_side = None
            if sides:
                host_side = max(sorted(set(sides)), key=sides.count)
            bound = coordinator.record_join(address, host_side)
            if bound is not None:
                self.network.bind_to_split(split_id, address, bound)


__all__ = ["AtumCluster"]
