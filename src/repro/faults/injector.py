"""Network-level fault injection: per-link loss, duplication and delay spikes.

The injector is installed on a :class:`repro.net.network.Network` and
consulted once per routed message.  It owns a dedicated RNG stream
(``faults.network``) derived from the simulation seed, so fault draws are
deterministic and never perturb the network's own randomness (send-order
shuffles, baseline loss, latency samples keep their exact draw sequence).

Rules that do not match a message's link or time window draw nothing, which
keeps runs with inactive windows deterministic regardless of how much
traffic flows outside them.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.faults.plan import LinkFault
from repro.net.network import Network
from repro.sim.simulator import Simulator


class LinkFaultInjector:
    """Evaluates :class:`~repro.faults.plan.LinkFault` rules per message.

    The network calls :meth:`perturb` for every message it routes while an
    injector is installed; the verdict says whether to drop the message, how
    much extra propagation delay to add, and how many copies to deliver.
    """

    def __init__(self, sim: Simulator, links: Sequence[LinkFault]) -> None:
        self.links: Tuple[LinkFault, ...] = tuple(links)
        self._rng = sim.rng.stream("faults.network")
        self._counters = sim.metrics.counters

    def perturb(
        self, sender: str, receiver: str, now: float
    ) -> Optional[Tuple[bool, float, int, bool]]:
        """Fault verdict for one message: ``(drop, extra_delay, copies, corrupted)``.

        Returns ``None`` when no rule matches, so the caller can stay on the
        unperturbed arithmetic.  All matching rules compose: loss draws are
        independent per rule, delays add up, duplication contributes one
        extra copy per matching rule that fires, and any firing corruption
        draw marks the message (the network delivers it bit-flipped for the
        receiver to detect and discard).
        """
        matched = False
        extra_delay = 0.0
        copies = 1
        corrupted = False
        rng = self._rng
        counters = self._counters
        for rule in self.links:
            if not rule.matches(sender, receiver, now):
                continue
            matched = True
            if rule.loss > 0.0 and rng.random() < rule.loss:
                counters["faults.messages_dropped"] += 1.0
                return (True, 0.0, 0, False)
            if rule.extra_delay > 0.0 or rule.jitter > 0.0:
                delay = rule.extra_delay
                if rule.jitter > 0.0:
                    delay += rng.random() * rule.jitter
                extra_delay += delay
            if rule.duplicate > 0.0 and rng.random() < rule.duplicate:
                counters["faults.messages_duplicated"] += 1.0
                copies += 1
            if rule.corrupt > 0.0 and rng.random() < rule.corrupt and not corrupted:
                counters["faults.messages_corrupted"] += 1.0
                corrupted = True
        if not matched:
            return None
        if extra_delay > 0.0:
            # Once per delayed message, however many rules contributed.
            counters["faults.messages_delayed"] += 1.0
        return (False, extra_delay, copies, corrupted)


def install_link_faults(
    network: Network, sim: Simulator, links: Sequence[LinkFault]
) -> Optional[LinkFaultInjector]:
    """Install a :class:`LinkFaultInjector` for ``links`` on ``network``.

    Returns the injector, or ``None`` when ``links`` is empty (in which case
    the network keeps its untouched fast paths).
    """
    if not links:
        return None
    injector = LinkFaultInjector(sim, links)
    network.install_fault_injector(injector)
    return injector


__all__ = ["LinkFaultInjector", "install_link_faults"]
