"""Heartbeats and eviction of unresponsive vgroup members (paper section 5.1).

Every node periodically sends a heartbeat to its vgroup peers.  A peer that
misses a configurable number of consecutive heartbeats is *suspected*; once a
node suspects a peer it proposes an eviction through the vgroup's SMR engine,
and when the eviction is decided the group reconfigures exactly as it does for
a voluntary leave.  Heartbeats are deliberately coarse-grained (a minute in
the paper) so that slow-but-correct nodes are not evicted under asynchrony.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable

from repro.sim.simulator import Simulator


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Wire payload of a heartbeat message."""

    sender: str
    group_id: str
    sequence: int


@dataclass
class HeartbeatConfig:
    """Timing of the heartbeat/eviction mechanism.

    Attributes:
        period: Interval between heartbeats (60 s in the paper).  Runtime
            changes must go through :meth:`HeartbeatMonitor.set_period` (or a
            direct mutation of this field, which the monitor detects) and take
            effect at the *next* tick — see the monitor's adoption rules.
        misses_before_eviction: Consecutive missed heartbeats after which a
            peer is considered unresponsive and an eviction is proposed.
            Adaptation-immutable: policies adjust ``period`` only, so the
            suspicion deadline scales with the send cadence.
    """

    period: float = 60.0
    misses_before_eviction: int = 3


class HeartbeatMonitor:
    """Per-node heartbeat sender and failure detector.

    The host wires the monitor with a ``send_fn(peer, heartbeat)`` used to emit
    heartbeats, a ``peers_fn()`` returning the current vgroup peers, and a
    ``suspect_fn(peer)`` invoked when a peer should be evicted.
    """

    def __init__(
        self,
        sim: Simulator,
        address: str,
        group_id_fn: Callable[[], str],
        peers_fn: Callable[[], Iterable[str]],
        send_fn: Callable[[str, Heartbeat], None],
        suspect_fn: Callable[[str], None],
        config: HeartbeatConfig | None = None,
    ) -> None:
        self.sim = sim
        self.address = address
        self.group_id_fn = group_id_fn
        self.peers_fn = peers_fn
        self.send_fn = send_fn
        self.suspect_fn = suspect_fn
        self.config = config or HeartbeatConfig()
        # Effective period used by both the send and suspicion paths.  It is
        # only ever replaced at a tick boundary (see _adopt_period): reading
        # ``config.period`` live in ``_check_peers`` while rescheduling with a
        # different value aliased the two paths, and a shrinking period would
        # instantly mass-suspect every peer whose (previously healthy) age
        # exceeded the new, smaller deadline.
        self._period = self.config.period
        self._pending_period: float | None = None
        self.sequence = 0
        self.last_seen: Dict[str, float] = {}
        self.suspected: set = set()
        self.running = False
        # Peer-set cache keyed on the identity of the object ``peers_fn``
        # returns: vgroup views hand out the same immutable members tuple
        # until the next reconfiguration, so the per-tick cost stays
        # proportional to the monitored peers with no per-tick set building.
        self._peers_obj: object = None
        self._peer_set: frozenset = frozenset()

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Begin sending heartbeats and checking peers.

        A (re)starting monitor grants every peer a fresh deadline: a node
        recovering from a crash would otherwise compare ``now`` against
        pre-crash ``last_seen`` timestamps and instantly mass-suspect every
        correct peer — and a handful of such recoveries would assemble a
        wrongful eviction majority.
        """
        if self.running:
            return
        self.running = True
        self.last_seen.clear()
        self.suspected.clear()
        self._tick()

    def stop(self) -> None:
        self.running = False

    def set_period(self, period: float) -> None:
        """Request a new heartbeat period, adopted at the next tick.

        The change applies atomically to both the send cadence and the
        suspicion deadline at the start of the next ``_tick`` — never
        mid-tick, so one tick can never send on the old period while judging
        peers against the new deadline (or vice versa).  When the deadline
        shrinks, peers that are not already suspected are granted a fresh
        deadline (the same rule :meth:`start` applies after a recovery), so
        tightening the period can never instantly mass-suspect a healthy
        group whose heartbeats were timed against the old, longer period.
        """
        if period <= 0:
            raise ValueError(f"heartbeat period must be positive, got {period!r}")
        self._pending_period = period

    # ----------------------------------------------------------------- protocol

    def _adopt_period(self) -> None:
        """Adopt a pending period change at a tick boundary (see set_period).

        Direct mutations of ``config.period`` (the legacy knob) are detected
        and given the same next-tick semantics instead of aliasing into the
        current tick's suspicion check.
        """
        pending = self._pending_period
        if pending is None:
            if self.config.period == self._period:
                return
            pending = self.config.period
        self._pending_period = None
        misses = self.config.misses_before_eviction
        old_deadline = self._period * misses
        new_deadline = pending * misses
        self._period = pending
        self.config.period = pending
        if new_deadline < old_deadline:
            now = self.sim.now
            suspected = self.suspected
            for peer, seen_at in self.last_seen.items():
                if peer not in suspected and now - seen_at > new_deadline:
                    self.last_seen[peer] = now

    def _tick(self) -> None:
        if not self.running:
            return
        self._adopt_period()
        self.sequence += 1
        group_id = self.group_id_fn()
        heartbeat = Heartbeat(sender=self.address, group_id=group_id, sequence=self.sequence)
        now = self.sim.now
        peers = self.peers_fn()
        if not isinstance(peers, tuple):
            peers = tuple(peers)
        if peers is not self._peers_obj:
            self._peers_obj = peers
            self._peer_set = frozenset(peers)
        address = self.address
        send_fn = self.send_fn
        last_seen = self.last_seen
        for peer in peers:
            if peer == address:
                continue
            send_fn(peer, heartbeat)
            if peer not in last_seen:
                last_seen[peer] = now
        self._check_peers()
        self.sim.schedule(self._period, self._tick, tag=f"{self.address}:hb")

    def observe(self, heartbeat: Heartbeat) -> None:
        """Record a heartbeat received from a peer."""
        self.last_seen[heartbeat.sender] = self.sim.now
        self.suspected.discard(heartbeat.sender)

    def forget(self, peer: str) -> None:
        """Drop state about a peer that left or was evicted."""
        self.last_seen.pop(peer, None)
        self.suspected.discard(peer)

    def _check_peers(self) -> None:
        deadline = self._period * self.config.misses_before_eviction
        now = self.sim.now
        current_peers = self._peer_set
        suspected = self.suspected
        for peer, seen_at in list(self.last_seen.items()):
            if peer not in current_peers:
                self.forget(peer)
                continue
            if now - seen_at > deadline:
                if peer not in suspected:
                    suspected.add(peer)
                    self.sim.metrics.increment("group.evictions_proposed")
                # Re-report every tick while the peer stays unresponsive:
                # eviction votes age out at the cluster (so a Byzantine
                # minority cannot bank stale accusations), which means live
                # suspicions must keep refreshing or a genuinely dead peer
                # whose accusers' reports expired could linger forever.
                self.suspect_fn(peer)


__all__ = ["Heartbeat", "HeartbeatConfig", "HeartbeatMonitor"]
