"""Event and event-queue primitives for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
guarantees a deterministic total order even when many events share the same
timestamp, which is essential for reproducible simulations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback in simulated time.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-breaker among events at the same time (lower first).
        seq: Monotonic sequence number assigned by the queue; makes ordering
            total and deterministic.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
        tag: Optional human-readable label used in traces and debugging.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    tag: Optional[str] = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            tag=tag,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def notify_cancelled(self) -> None:
        """Account for an externally cancelled event (keeps ``len`` accurate)."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0


__all__ = ["Event", "EventQueue"]
