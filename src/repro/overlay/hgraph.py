"""The H-graph overlay: a constant number of random Hamiltonian cycles.

An H-graph [Law & Siu, INFOCOM 2003] is a multigraph whose edge set is the
union of ``hc`` Hamiltonian cycles over the same vertex set.  Every vertex has
exactly two neighbours per cycle (its predecessor and successor), so the graph
is sparse (constant degree ``2 * hc``), well connected, and has logarithmic
diameter with high probability -- the properties Atum relies on for scalable
gossip and uniform random-walk sampling.

Vertices of Atum's H-graph are vgroups (identified by their group id).  The
structure supports the three mutations the membership protocols need:

* :meth:`HGraph.insert_after` -- splice a new vertex into a cycle between a
  chosen vertex and its successor (used when a vgroup splits);
* :meth:`HGraph.remove` -- remove a vertex from every cycle, reconnecting its
  predecessor and successor (used when vgroups merge);
* :meth:`HGraph.bootstrap` -- the single-vertex graph where the vertex is its
  own neighbour on every cycle (the state after ``bootstrap()``).

Neighbour queries are on the per-hop hot path of gossip and random walks, so
the graph maintains a lazily built **per-vertex neighbour table** (cycle
pairs, incident links, gossip-ordered neighbour list) plus a per-vertex
scratch cache for policy-derived data.  Mutations invalidate only the
affected vertices and bump :attr:`HGraph.topology_version`, which consumers
can use to stamp their own derived caches.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple


class HGraphError(ValueError):
    """Raised on invalid H-graph mutations (unknown vertices, bad cycles)."""


class _VertexTable:
    """Cached neighbour views of one vertex (invalidated on topology change)."""

    __slots__ = ("pairs", "links", "gossip", "derived")

    def __init__(
        self,
        pairs: Tuple[Tuple[str, str], ...],
        links: Tuple[Tuple[int, str], ...],
        gossip: Tuple[str, ...],
    ) -> None:
        self.pairs = pairs
        self.links = links
        self.gossip = gossip
        #: Scratch space for consumers (gossip policies) to cache data derived
        #: from this vertex's neighbourhood; dropped with the table.
        self.derived: Dict[Any, Any] = {}


class HGraph:
    """A multigraph made of ``hc`` Hamiltonian cycles over a common vertex set."""

    def __init__(self, cycles: int) -> None:
        if cycles < 1:
            raise HGraphError("an H-graph needs at least one cycle")
        self.hc = cycles
        # Per cycle: successor and predecessor maps.
        self._succ: List[Dict[str, str]] = [dict() for _ in range(cycles)]
        self._pred: List[Dict[str, str]] = [dict() for _ in range(cycles)]
        self._vertices: Set[str] = set()
        self._tables: Dict[str, _VertexTable] = {}
        self._version = 0

    # ------------------------------------------------------------- construction

    @classmethod
    def bootstrap(cls, vertex: str, cycles: int) -> "HGraph":
        """The initial overlay: one vertex, neighbour to itself on every cycle."""
        graph = cls(cycles)
        graph._vertices.add(vertex)
        for cycle in range(cycles):
            graph._succ[cycle][vertex] = vertex
            graph._pred[cycle][vertex] = vertex
        return graph

    @classmethod
    def random(cls, vertices: Sequence[str], cycles: int, rng: random.Random) -> "HGraph":
        """Build an H-graph from independent random permutations of ``vertices``."""
        if not vertices:
            raise HGraphError("cannot build an H-graph over an empty vertex set")
        graph = cls(cycles)
        graph._vertices = set(vertices)
        for cycle in range(cycles):
            order = list(vertices)
            rng.shuffle(order)
            for index, vertex in enumerate(order):
                successor = order[(index + 1) % len(order)]
                graph._succ[cycle][vertex] = successor
                graph._pred[cycle][successor] = vertex
        return graph

    # ------------------------------------------------------------------ queries

    @property
    def vertices(self) -> Set[str]:
        return set(self._vertices)

    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped by every mutation (for derived caches)."""
        return self._version

    def __contains__(self, vertex: str) -> bool:
        return vertex in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def successor(self, vertex: str, cycle: int) -> str:
        self._check_vertex(vertex)
        return self._succ[cycle][vertex]

    def predecessor(self, vertex: str, cycle: int) -> str:
        self._check_vertex(vertex)
        return self._pred[cycle][vertex]

    def cycle_neighbors(self, vertex: str, cycle: int) -> Tuple[str, str]:
        """The (predecessor, successor) pair of ``vertex`` on ``cycle``."""
        table = self._tables.get(vertex)
        if table is None:
            table = self._build_table(vertex)
        return table.pairs[cycle]

    def cycle_pairs(self, vertex: str) -> Tuple[Tuple[str, str], ...]:
        """All per-cycle (predecessor, successor) pairs of ``vertex``, cached."""
        table = self._tables.get(vertex)
        if table is None:
            table = self._build_table(vertex)
        return table.pairs

    def neighbors(self, vertex: str) -> Set[str]:
        """All neighbours of ``vertex`` across every cycle (excluding itself).

        Returns a fresh mutable set built in the same insertion order as the
        pre-cache implementation (successor then predecessor, cycle by cycle),
        so downstream set-iteration behaviour is unchanged.
        """
        table = self._tables.get(vertex)
        if table is None:
            table = self._build_table(vertex)
        result: Set[str] = set()
        for _cycle, neighbor in table.links:
            result.add(neighbor)
        result.discard(vertex)
        return result

    def gossip_neighbors(self, vertex: str) -> Tuple[str, ...]:
        """Deduplicated neighbours in gossip order, excluding ``vertex`` itself.

        Gossip order is (predecessor, successor) per cycle, cycle by cycle —
        the order :func:`repro.overlay.gossip.flood_policy` has always
        forwarded in.  The tuple is cached until the topology changes.
        """
        table = self._tables.get(vertex)
        if table is None:
            table = self._build_table(vertex)
        return table.gossip

    def incident_links(self, vertex: str) -> Tuple[Tuple[int, str], ...]:
        """All (cycle, neighbour) links of ``vertex``, including duplicates.

        Random walks pick uniformly among incident links, so a neighbour
        reachable through several cycles is proportionally more likely --
        matching a walk on the multigraph rather than on the simple graph.
        The returned tuple is cached until the topology changes.
        """
        table = self._tables.get(vertex)
        if table is None:
            table = self._build_table(vertex)
        return table.links

    def degree(self, vertex: str) -> int:
        return len(self.incident_links(vertex))

    def derived_cache(self, vertex: str) -> Dict[Any, Any]:
        """Per-vertex scratch cache invalidated together with the vertex.

        Gossip policies use it to memoise forward lists derived from the
        vertex's neighbourhood; entries disappear whenever a mutation touches
        the vertex, so consumers never observe stale topology.
        """
        table = self._tables.get(vertex)
        if table is None:
            table = self._build_table(vertex)
        return table.derived

    # ---------------------------------------------------------------- mutations

    def add_first_vertex(self, vertex: str) -> None:
        """Add the very first vertex (self-loops on every cycle)."""
        if self._vertices:
            raise HGraphError("add_first_vertex on a non-empty H-graph")
        self._vertices.add(vertex)
        for cycle in range(self.hc):
            self._succ[cycle][vertex] = vertex
            self._pred[cycle][vertex] = vertex
        self._version += 1

    def insert_after(self, new_vertex: str, after: str, cycle: int) -> None:
        """Insert ``new_vertex`` between ``after`` and its successor on ``cycle``."""
        if new_vertex in self._succ[cycle]:
            raise HGraphError(f"{new_vertex} is already present on cycle {cycle}")
        self._check_vertex(after)
        successor = self._succ[cycle][after]
        self._succ[cycle][after] = new_vertex
        self._succ[cycle][new_vertex] = successor
        self._pred[cycle][successor] = new_vertex
        self._pred[cycle][new_vertex] = after
        self._vertices.add(new_vertex)
        self._version += 1
        tables = self._tables
        tables.pop(after, None)
        tables.pop(successor, None)
        tables.pop(new_vertex, None)

    def insert_vertex(self, new_vertex: str, after_per_cycle: Sequence[str]) -> None:
        """Insert ``new_vertex`` into every cycle, after the given vertices."""
        if len(after_per_cycle) != self.hc:
            raise HGraphError(
                f"need one insertion point per cycle ({self.hc}), got {len(after_per_cycle)}"
            )
        for cycle, after in enumerate(after_per_cycle):
            self.insert_after(new_vertex, after, cycle)

    def remove(self, vertex: str) -> None:
        """Remove ``vertex`` from every cycle, closing the gaps it leaves."""
        self._check_vertex(vertex)
        if len(self._vertices) == 1:
            raise HGraphError("cannot remove the last vertex of the overlay")
        tables = self._tables
        for cycle in range(self.hc):
            predecessor = self._pred[cycle][vertex]
            successor = self._succ[cycle][vertex]
            # Close the gap: predecessor and successor become neighbours.
            self._succ[cycle][predecessor] = successor
            self._pred[cycle][successor] = predecessor
            del self._succ[cycle][vertex]
            del self._pred[cycle][vertex]
            tables.pop(predecessor, None)
            tables.pop(successor, None)
        self._vertices.discard(vertex)
        tables.pop(vertex, None)
        self._version += 1

    # --------------------------------------------------------------- validation

    def validate(self) -> None:
        """Check the Hamiltonian-cycle invariant on every cycle.

        Raises :class:`HGraphError` if any cycle does not visit every vertex
        exactly once before returning to its start.
        """
        for cycle in range(self.hc):
            if set(self._succ[cycle]) != self._vertices:
                raise HGraphError(f"cycle {cycle} does not cover the vertex set")
            if not self._vertices:
                continue
            start = next(iter(self._vertices))
            seen = set()
            current = start
            for _ in range(len(self._vertices)):
                if current in seen:
                    raise HGraphError(f"cycle {cycle} revisits {current}")
                seen.add(current)
                current = self._succ[cycle][current]
            if current != start or seen != self._vertices:
                raise HGraphError(f"cycle {cycle} is not a single Hamiltonian cycle")
            for vertex in self._vertices:
                if self._pred[cycle][self._succ[cycle][vertex]] != vertex:
                    raise HGraphError(f"cycle {cycle} has inconsistent pred/succ at {vertex}")

    def estimated_diameter(self) -> int:
        """Breadth-first diameter estimate from an arbitrary vertex."""
        if not self._vertices:
            return 0
        start = min(self._vertices)
        frontier = {start}
        seen = {start}
        depth = 0
        while len(seen) < len(self._vertices) and frontier:
            next_frontier: Set[str] = set()
            for vertex in frontier:
                for neighbor in self.neighbors(vertex):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.add(neighbor)
            frontier = next_frontier
            depth += 1
        return depth

    # ------------------------------------------------------------------ helpers

    def _build_table(self, vertex: str) -> _VertexTable:
        self._check_vertex(vertex)
        pairs: List[Tuple[str, str]] = []
        links: List[Tuple[int, str]] = []
        gossip: List[str] = []
        seen: Set[str] = set()
        for cycle in range(self.hc):
            successor = self._succ[cycle][vertex]
            predecessor = self._pred[cycle][vertex]
            pairs.append((predecessor, successor))
            links.append((cycle, successor))
            links.append((cycle, predecessor))
            # Gossip order: predecessor before successor, matching the
            # pre-cache flood forwarding order.
            if predecessor != vertex and predecessor not in seen:
                seen.add(predecessor)
                gossip.append(predecessor)
            if successor != vertex and successor not in seen:
                seen.add(successor)
                gossip.append(successor)
        table = _VertexTable(tuple(pairs), tuple(links), tuple(gossip))
        self._tables[vertex] = table
        return table

    def _check_vertex(self, vertex: str) -> None:
        if vertex not in self._vertices:
            raise HGraphError(f"unknown vertex {vertex!r}")


__all__ = ["HGraph", "HGraphError"]
