#!/usr/bin/env python3
"""Growth and churn example: volatile groups under a dynamic membership.

Grows a system from a single bootstrap node to 300 nodes at 10% of the system
size per minute, then applies continuous churn (leave + re-join) and reports
how the vgroup structure (splits, merges, shuffle exchanges) responds.

Run with:  python examples/churn_and_growth.py
"""

from repro.core.config import AtumParameters, SmrKind
from repro.overlay.membership import MembershipEngine
from repro.sim import Simulator
from repro.workloads import ChurnConfig, ChurnWorkload, GrowthConfig, GrowthWorkload


def main() -> None:
    params = AtumParameters.for_system_size(300, SmrKind.SYNC)
    sim = Simulator(seed=5)
    engine = MembershipEngine(sim, params.membership_config(), params.cost_model())

    # --- growth ---------------------------------------------------------------
    growth = GrowthWorkload(
        engine,
        GrowthConfig(target_size=300, join_fraction_per_minute=0.10, provisioning_delay=15.0),
    )
    growth.run()
    print(f"grew to {engine.system_size} nodes in {sim.now:.0f} simulated seconds "
          f"({engine.group_count} vgroups, average size {engine.average_group_size():.1f})")
    print(f"splits so far: {int(sim.metrics.counter('membership.splits'))}, "
          f"exchange completion rate {growth.exchange_completion_rate():.2f}")

    # --- churn ----------------------------------------------------------------
    churn = ChurnWorkload(engine, ChurnConfig(rate_per_minute=0.15 * 300, duration=240.0))
    result = churn.run()
    print(f"applied {result.requested_rejoins} re-joins at 15% of the system per minute: "
          f"{'sustained' if result.sustained else 'NOT sustained'}")
    print(f"completed {result.completed_joins} joins and {result.completed_leaves} leaves; "
          f"mean join latency {result.mean_join_latency:.1f}s")
    print(f"merges so far: {int(sim.metrics.counter('membership.merges'))}")

    engine.validate()
    print("membership invariants hold after growth and churn")


if __name__ == "__main__":
    main()
