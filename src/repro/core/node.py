"""The Atum node: API operations and the node-level protocol stack.

An :class:`AtumNode` is the object an application embeds (one per process in a
real deployment, one per simulated node here).  It exposes the paper's API
(section 3.3): ``broadcast`` plus the ``deliver`` and ``forward`` callbacks;
``join`` and ``leave`` are invoked through the :class:`~repro.core.cluster.
AtumCluster`, which orchestrates the membership engine.

Internally the node hosts:

* one SMR replica (Sync or Async engine) for its current vgroup -- used for
  the first phase of ``broadcast`` (a Byzantine broadcast inside the caller's
  vgroup) and for agreeing on membership requests;
* a :class:`~repro.group.messages.GroupMessenger` for inter-vgroup group
  messages (gossip shares, application messages);
* a :class:`~repro.group.heartbeat.HeartbeatMonitor` for eviction of
  unresponsive peers;
* the gossip forwarding logic of the second phase of ``broadcast``.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.config import AtumParameters, SmrKind
from repro.core.middleware import MiddlewareContext
from repro.crypto.keys import KeyRegistry
from repro.faults.plan import RESPONDER_BEHAVIOURS
from repro.group.antientropy import AntiEntropyConfig, AntiEntropyRepair
from repro.group.heartbeat import Heartbeat, HeartbeatConfig, HeartbeatMonitor
from repro.group.messages import GroupMessageEnvelope, GroupMessenger, NodeBinding
from repro.group.vgroup import VGroupView
from repro.net.message import CorruptedPayload
from repro.net.network import Network
from repro.net.requests import RequestEnvelope
from repro.sim.actor import Actor
from repro.sim.simulator import Simulator
from repro.smr.base import Operation, SmrReplica
from repro.smr.checkpoint import StateTransferRequest, StateTransferResponse
from repro.smr.dolev_strong import SyncSmrReplica
from repro.smr.pbft import PbftReplica

_BCAST_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class BroadcastMessage:
    """An application message travelling through Atum's broadcast.

    Attributes:
        bcast_id: Globally unique identifier of this broadcast.
        origin: Address of the broadcasting node.
        payload: Application payload.
        size_bytes: Payload size used for network accounting.
        created_at: Simulated time at which ``broadcast`` was invoked.
    """

    bcast_id: str
    origin: str
    payload: Any
    size_bytes: int
    created_at: float


@dataclass
class SmrEnvelope:
    """Wrapper that routes an SMR protocol message to the right vgroup/epoch."""

    group_id: str
    payload: Any


@dataclass
class DirectMessage:
    """A point-to-point application message (used by AShare and AStream)."""

    kind: str
    payload: Any


class AtumNode(Actor):
    """A participant in an Atum system.

    Args:
        sim: The simulator hosting the node.
        address: Unique node address.
        params: System parameters.
        network: The network the node communicates over.
        registry: Key registry (PKI) shared by the deployment.
        directory: Provider of overlay information (the cluster).  It must
            expose ``view_of_group(group_id)`` and
            ``cycle_neighbor_ids(group_id)``.
        deliver_fn: Application callback invoked on message delivery.
        forward_fn: Application callback deciding whether to forward a
            broadcast to a neighbouring vgroup; ``None`` uses ``forward_policy``.
        forward_policy: One of ``"flood"``, ``"single"``, ``"double"`` or
            ``"random"`` -- the built-in forwarding policies.
        byzantine: ``None`` for a correct node, ``"silent"`` for a node that
            stops participating in every protocol except heartbeats,
            ``"mute"`` for a completely unresponsive node,
            ``"evict_attack"`` for the paper's §6.1.3 synchronous adversary
            (heartbeats only, plus eviction proposals against correct peers —
            the proposals themselves are driven by
            :class:`repro.faults.behaviours.FaultController`),
            ``"equivocate"`` for a node that participates in gossip but sends
            conflicting payload variants of every forwarded group message to
            disjoint halves of the destination vgroup, or ``"rejoin_attack"``
            for a member of the adaptive join-leave coalition (silent on the
            protocol; its strategic leave/re-join schedule is driven by the
            fault controller).  The responder behaviours (``"stonewall"``,
            ``"slow_drip"``, ``"garbage_serve"``, ``"stale_cert"``) attack
            only the state-transfer serving path: the node participates
            normally everywhere else — crucially it signs checkpoints, so
            it legitimately enters the certifier rotation recovering
            replicas fetch state from — and stonewalls, drip-feeds,
            tampers or stales its transfer responses (see
            :data:`repro.faults.plan.RESPONDER_BEHAVIOURS`).
    """

    def __init__(
        self,
        sim: Simulator,
        address: str,
        params: AtumParameters,
        network: Network,
        registry: KeyRegistry,
        directory: "OverlayDirectory",
        deliver_fn: Optional[Callable[[BroadcastMessage], None]] = None,
        forward_fn: Optional[Callable[[BroadcastMessage, str], bool]] = None,
        forward_policy: str = "flood",
        byzantine: Optional[str] = None,
        enable_heartbeats: bool = False,
        antientropy: Optional[AntiEntropyConfig] = None,
    ) -> None:
        super().__init__(sim, address)
        self.params = params
        self.network = network
        self.registry = registry
        self.directory = directory
        self.deliver_fn = deliver_fn
        # Compiled on_deliver pipeline of the cluster's middleware chain
        # (repro.core.middleware), invoked before deliver_fn.  Kept separate
        # from deliver_fn because apps reassign that attribute freely (e.g.
        # ASub) and must not be able to silently disconnect an attached
        # observer; ``None`` costs one truthiness check per delivery.
        self._deliver_hooks = None
        self._mw_scenario = ""
        self.forward_fn = forward_fn
        self.forward_policy = forward_policy
        self.byzantine = byzantine
        registry.generate(address)

        self.vgroup_view: Optional[VGroupView] = None
        self.replica: Optional[SmrReplica] = None
        self.delivered: Dict[str, float] = {}
        self.delivered_order: List[str] = []
        self._forwarded: Set[Tuple[str, str]] = set()
        self._direct_handlers: Dict[str, Callable[[Any, str], None]] = {}
        self._group_handlers: Dict[str, Callable[[Any, str, str], None]] = {}

        self.messenger = GroupMessenger(
            binding=NodeBinding(address=address, network=network, sim=sim),
            own_view_fn=self._own_view_or_singleton,
            on_accept=self._on_group_message,
            # Forged-size rejection: the directory's smallest-known size of
            # the source group caps how far a claimed sender_group_size can
            # lower the acceptance majority (see GroupMessenger.handle).
            source_size_fn=getattr(directory, "smallest_group_size", None),
        )
        self.antientropy: Optional[AntiEntropyRepair] = None
        if antientropy is not None:
            self.antientropy = AntiEntropyRepair(self, antientropy)
        self.heartbeats: Optional[HeartbeatMonitor] = None
        if enable_heartbeats:
            self.heartbeats = HeartbeatMonitor(
                sim=sim,
                address=address,
                group_id_fn=lambda: self.vgroup_view.group_id if self.vgroup_view else "",
                peers_fn=lambda: self.vgroup_view.members if self.vgroup_view else (),
                send_fn=lambda peer, hb: self.network.send_one(self.address, peer, hb, 64),
                suspect_fn=self._on_peer_suspected,
                config=params.heartbeat_config(),
            )

    # ------------------------------------------------------------------ queries

    @property
    def is_member(self) -> bool:
        return self.vgroup_view is not None

    @property
    def is_correct(self) -> bool:
        return self.byzantine is None

    def group_id(self) -> Optional[str]:
        return self.vgroup_view.group_id if self.vgroup_view else None

    def has_delivered(self, bcast_id: str) -> bool:
        return bcast_id in self.delivered

    def delivery_time(self, bcast_id: str) -> Optional[float]:
        return self.delivered.get(bcast_id)

    def smr_stable_checkpoint(self) -> Optional[int]:
        """Stable-checkpoint seq of this node's replica (``None`` if unavailable).

        Anti-entropy summaries advertise it to vgroup co-members: a stalled
        replica that hears a co-member's certified checkpoint ahead of its
        own decided log discovers the gap without waiting for a view change
        (see :meth:`on_checkpoint_hint`).
        """
        if self.replica is None:
            return None
        return self.replica.stable_checkpoint_seq()

    def on_checkpoint_hint(self, peer: str, seq: int) -> None:
        """A vgroup co-member advertised a stable checkpoint at ``seq``.

        Forwarded to the replica's checkpoint manager, which rate-limits
        and — since a bare seq proves nothing — requests a state transfer
        whose *response* carries the verifiable certificate.  Ignored for
        engines without checkpointing and for hints from non-co-members.
        """
        if self.replica is None or self.vgroup_view is None or not self.is_correct:
            return
        manager = getattr(self.replica, "checkpoints", None)
        if manager is None or peer not in self.vgroup_view.member_set:
            return
        manager.on_gap_hint(peer, seq)

    # --------------------------------------------------------------- membership

    def install_view(self, view: VGroupView) -> None:
        """Adopt a (new) view of the node's own vgroup and (re)wire the SMR replica.

        Called by the cluster whenever the membership engine changes the
        composition of the vgroup this node belongs to.
        """
        previous_view = self.vgroup_view
        self.vgroup_view = view
        if self.replica is None:
            self.replica = self._make_replica(view)
            if hasattr(self.replica, "epoch"):
                # Join the group at ITS epoch, not at a fresh zero —
                # epoch-stamped messages from co-members would otherwise
                # be filtered until enough reconfigurations caught us up.
                self.replica.epoch = view.epoch
        else:
            # Do NOT pre-assign replica.members here: reconfigure captures
            # the outgoing membership from it to stamp epoch-transition
            # records, and overwriting first would make every record claim
            # prev_members == members, breaking chain verification.
            self.replica.reconfigure(
                view.members,
                epoch=view.epoch,
                # Shuffling re-homes a node into a different vgroup while
                # keeping its replica object; the outgoing certificates
                # describe the OLD group's log and must not be re-anchored.
                carry_certificates=(
                    previous_view is not None
                    and previous_view.group_id == view.group_id
                ),
            )
        if (
            self.heartbeats is not None
            and not self.heartbeats.running
            and self.byzantine != "mute"
        ):
            # A mute (crashed) node's stopped monitor must stay stopped, or
            # any reconfiguration of its vgroup would resurrect its
            # heartbeats and hide the crash from the failure detector.
            self.heartbeats.start()
        if self.antientropy is not None and not self.antientropy.running:
            # Safe for crashed nodes too: the tick itself is a no-op while
            # the node is not correct and resumes after recovery.
            self.antientropy.start()

    def clear_membership(self) -> None:
        """Drop membership state after leaving the system."""
        self.vgroup_view = None
        if self.replica is not None:
            self.replica.stop()
            self.replica = None
        if self.heartbeats is not None:
            self.heartbeats.stop()
        if self.antientropy is not None:
            self.antientropy.stop()

    def _make_replica(self, view: VGroupView) -> SmrReplica:
        replica_class = SyncSmrReplica if self.params.smr_kind is SmrKind.SYNC else PbftReplica
        return replica_class(
            sim=self.sim,
            node_id=self.address,
            members=view.members,
            registry=self.registry,
            send_fn=self._send_smr,
            decide_fn=self._on_smr_decide,
            config=self.params.smr_config(),
        )

    # ---------------------------------------------------------------- broadcast

    def broadcast(self, payload: Any, size_bytes: int = 100) -> str:
        """Broadcast ``payload`` to every node of the system (section 3.3.4).

        Phase one performs a Byzantine broadcast inside the caller's vgroup
        through the SMR engine; phase two gossips the message across the
        overlay.  Returns the broadcast identifier.
        """
        if not self.is_member or self.replica is None:
            raise RuntimeError(f"node {self.address} is not a member of an Atum system")
        bcast_id = f"bc-{self.address}-{next(_BCAST_COUNTER)}"
        message = BroadcastMessage(
            bcast_id=bcast_id,
            origin=self.address,
            payload=payload,
            size_bytes=size_bytes,
            created_at=self.sim.now,
        )
        operation = Operation(kind="broadcast", body=message, proposer=self.address, op_id=bcast_id)
        self.replica.propose(operation)
        self.sim.metrics.increment("atum.broadcasts_started")
        return bcast_id

    def repropose_broadcast(self, message: BroadcastMessage) -> bool:
        """Re-run a delivered broadcast through the own vgroup's SMR engine.

        Anti-entropy's intra-group repair path: re-deciding the operation
        delivers it to every current member through the agreement primitive
        itself (members that already delivered dedup on the broadcast id),
        so a co-member that missed the original decision — it was cut off,
        or on the wrong side of a split — catches up without any unsafe
        point-to-point payload transfer.
        """
        if self.replica is None or not self.is_member:
            return False
        operation = Operation(
            kind="broadcast",
            body=message,
            proposer=self.address,
            op_id=message.bcast_id,
        )
        self.replica.repropose(operation)
        self.sim.metrics.increment("atum.broadcast_reproposals")
        return True

    def register_group_handler(self, kind: str, handler: Callable[[Any, str, str], None]) -> None:
        """Register a handler for accepted group messages of the given kind.

        The handler receives ``(payload, source_group, gm_id)``.  Applications
        (AShare, AStream) use this to exchange their own inter-vgroup messages.
        """
        self._group_handlers[kind] = handler

    def register_direct_handler(self, kind: str, handler: Callable[[Any, str], None]) -> None:
        """Register a handler for point-to-point messages of the given kind."""
        self._direct_handlers[kind] = handler

    def send_direct(self, peer: str, kind: str, payload: Any, size_bytes: int = 256) -> None:
        """Send a point-to-point application message to ``peer``."""
        self.network.send(self.address, peer, DirectMessage(kind=kind, payload=payload), size_bytes)

    # ------------------------------------------------------------------ routing

    def on_message(self, payload: Any, sender: str) -> None:
        if self.byzantine == "mute":
            return
        if isinstance(payload, CorruptedPayload):
            inner = payload.inner
            if isinstance(inner, GroupMessageEnvelope):
                # Group-message shares are self-verifying: the messenger runs
                # the payload-digest check and discards the tampered share.
                if self.byzantine not in ("silent", "evict_attack", "rejoin_attack"):
                    self.messenger.handle_corrupted(inner, sender)
                return
            # Everything else (heartbeats, SMR, direct messages) is MACed on
            # the wire in a real deployment: a flipped frame fails transport
            # authentication and is dropped whole.
            self.sim.metrics.increment("net.corrupted_discarded")
            return
        if isinstance(payload, Heartbeat):
            if self.heartbeats is not None:
                self.heartbeats.observe(payload)
            return
        if self.byzantine in ("silent", "evict_attack", "rejoin_attack"):
            # A silent Byzantine node keeps sending heartbeats (handled by its
            # monitor) but ignores every other protocol message.  The
            # evict-attack and rejoin-attack adversaries behave the same on
            # the receive path; their eviction proposals / strategic
            # leave-and-re-join schedules are timer-driven by the fault
            # controller.
            return
        if isinstance(payload, SmrEnvelope):
            if self.replica is not None and self.vgroup_view is not None:
                if payload.group_id == self.vgroup_view.group_id:
                    inner = payload.payload
                    if (
                        self.byzantine in RESPONDER_BEHAVIOURS
                        and isinstance(inner, RequestEnvelope)
                        and inner.kind == "ckpt.transfer"
                    ):
                        # The responder adversary hijacks exactly one
                        # protocol surface: serving state transfers.
                        self._serve_adversarial_transfer(inner, sender)
                        return
                    self.replica.on_message(inner, sender)
            return
        if isinstance(payload, GroupMessageEnvelope):
            self.messenger.handle(payload, sender)
            return
        if isinstance(payload, DirectMessage):
            handler = self._direct_handlers.get(payload.kind)
            if handler is not None:
                handler(payload.payload, sender)
            return

    # ----------------------------------------------------------------- internals

    def _own_view_or_singleton(self) -> VGroupView:
        if self.vgroup_view is not None:
            return self.vgroup_view
        return VGroupView.create(f"solo-{self.address}", [self.address])

    def _send_smr(self, peer: str, payload: Any, size_bytes: int) -> None:
        if self.byzantine is not None and self.byzantine not in RESPONDER_BEHAVIOURS:
            # Responder adversaries stay live on the SMR wire — their whole
            # attack depends on participating (voting, signing checkpoints)
            # well enough to be selected as a transfer server.
            return
        group_id = self.group_id() or ""
        self.network.send(self.address, peer, SmrEnvelope(group_id=group_id, payload=payload), size_bytes)

    def _serve_adversarial_transfer(self, envelope: RequestEnvelope, sender: str) -> None:
        """Serve a state-transfer request in this node's adversarial style.

        All four responder behaviours stay within what a Byzantine server
        can actually do: none can forge a certificate (2f+1 signatures)
        or make a tampered body verify, so the attacks are confined to
        withholding (``stonewall``), timing (``slow_drip``), rejectable
        garbage (``garbage_serve``) and genuinely old-but-signed answers
        (``stale_cert``).  The requester's scoreboard + rotation is what
        bounds the resulting catch-up latency inflation.
        """
        replica = self.replica
        manager = getattr(replica, "checkpoints", None)
        if manager is None:
            return
        metrics = self.sim.metrics
        behaviour = self.byzantine
        if behaviour == "stonewall":
            metrics.increment("faults.transfer_stonewalled")
            return
        request = envelope.payload
        if not isinstance(request, StateTransferRequest):
            return
        if behaviour == "slow_drip":
            response = manager.build_state_response(request, sender)
            if response is None:
                return
            # Reply *correctly* but only just inside the requester's
            # deadline: no rejectable evidence, maximal waiting.  The
            # margin absorbs typical network latency; a drip that still
            # lands late degenerates into a scored timeout.
            delay = envelope.deadline - self.sim.now - 0.25
            if delay <= 0.0:
                metrics.increment("faults.transfer_stonewalled")
                return
            metrics.increment("faults.transfer_slow_dripped")
            self.sim.schedule(
                delay,
                lambda: manager.respond_transfer(envelope, response),
                tag=f"{self.address}:slow-drip",
            )
            return
        if behaviour == "garbage_serve":
            response = manager.build_state_response(request, sender)
            if response is None:
                return
            # Well-formed but digest-mismatched: every operation body is
            # wrapped, so the chained state digest cannot reproduce.
            tampered = replace(
                response,
                operations=tuple(
                    replace(op, body=("garbage", op.body)) for op in response.operations
                ),
            )
            metrics.increment("faults.transfer_garbage_served")
            manager.respond_transfer(envelope, tampered)
            return
        if behaviour == "stale_cert":
            old = manager.previous_stable
            if old is None:
                # Nothing genuinely old to serve yet; withhold instead.
                metrics.increment("faults.transfer_stonewalled")
                return
            operations = (
                tuple(replica.decided_log[request.have_count : old.seq])
                if old.seq > request.have_count
                else ()
            )
            stale = StateTransferResponse(
                epoch=replica.epoch,
                certificate=old,
                base_count=request.have_count,
                operations=operations,
            )
            metrics.increment("faults.transfer_stale_served")
            manager.respond_transfer(envelope, stale)

    def _on_smr_decide(self, operation: Operation) -> None:
        if operation.kind == "broadcast" and isinstance(operation.body, BroadcastMessage):
            self._deliver_and_forward(operation.body, source_group=self.group_id() or "")
        # Other operation kinds (joins, leaves, evictions) are handled by the
        # membership engine at vgroup granularity; the node only needs to act
        # on application-level broadcasts here.

    def _on_group_message(self, kind: str, payload: Any, source_group: str, gm_id: str) -> None:
        if kind == "gossip" and isinstance(payload, BroadcastMessage):
            self._deliver_and_forward(payload, source_group=source_group)
            return
        handler = self._group_handlers.get(kind)
        if handler is not None:
            handler(payload, source_group, gm_id)

    def _on_peer_suspected(self, peer: str) -> None:
        """A vgroup peer missed too many heartbeats: ask the directory to evict it."""
        evict = getattr(self.directory, "request_eviction", None)
        if evict is not None:
            evict(peer, suspected_by=self.address)

    # ------------------------------------------------------------------- gossip

    def set_middleware_hooks(self, deliver_hooks, scenario: str = "") -> None:
        """Install the compiled ``on_deliver`` pipeline (cluster-distributed).

        Covers both delivery channels of this node: broadcast deliveries
        dispatch from :meth:`_deliver_and_forward` and accepted group
        messages from the messenger (see
        :meth:`repro.group.messages.GroupMessenger.set_middleware_hooks`).
        """
        self._deliver_hooks = deliver_hooks
        self._mw_scenario = scenario
        self.messenger.set_middleware_hooks(deliver_hooks, scenario)

    def _deliver_and_forward(self, message: BroadcastMessage, source_group: str) -> None:
        if message.bcast_id in self.delivered:
            return
        now = self.sim.now
        self.delivered[message.bcast_id] = now
        self.delivered_order.append(message.bcast_id)
        self.sim.metrics.increment("atum.deliveries")
        self.sim.metrics.observe("atum.delivery_latency", now - message.created_at)
        hooks = self._deliver_hooks
        if hooks is not None:
            ctx = MiddlewareContext(
                "on_deliver",
                now=now,
                scenario=self._mw_scenario,
                channel="broadcast",
                receiver=self.address,
                address=self.address,
                payload=message,
                node=self,
            )
            for hook in hooks:
                hook(ctx)
                if ctx.stop:
                    break
        if self.deliver_fn is not None:
            self.deliver_fn(message)
        if self.params.smr_kind is SmrKind.SYNC:
            # Synchronous deployments forward at round boundaries.
            delay = self._time_to_next_round()
            self.sim.schedule(delay, lambda: self._forward(message, source_group))
        else:
            self._forward(message, source_group)

    def _time_to_next_round(self) -> float:
        round_duration = self.params.round_duration
        position = self.sim.now % round_duration
        return round_duration - position if position > 1e-12 else 0.0

    def _forward(self, message: BroadcastMessage, source_group: str) -> None:
        if not self.is_member or self.vgroup_view is None:
            return
        own_group = self.vgroup_view.group_id
        for target_group in self._gossip_targets(message, exclude=source_group):
            key = (message.bcast_id, target_group)
            if key in self._forwarded:
                continue
            self._forwarded.add(key)
            target_view = self.directory.view_of_group(target_group)
            if target_view is None:
                continue
            gm_id = f"gossip:{message.bcast_id}:{own_group}->{target_group}"
            if self.byzantine == "equivocate":
                # An equivocating broadcaster ships a conflicting variant of
                # the share to half of the destination vgroup.  The forged
                # payload depends only on the message (not on this node), so
                # colluding equivocators aggregate into one conflicting
                # digest bucket — the strongest version of the attack the
                # group-message majority rule must absorb.
                forged = replace(message, payload=("equivocated", message.payload))
                self.messenger.send_equivocating(
                    target_view,
                    "gossip",
                    message,
                    forged,
                    gm_id=gm_id,
                    payload_bytes=message.size_bytes + 64,
                )
            else:
                self.messenger.send(
                    target_view,
                    "gossip",
                    message,
                    gm_id=gm_id,
                    payload_bytes=message.size_bytes + 64,
                )
        self.sim.metrics.increment("atum.gossip_forwards")

    def _gossip_targets(self, message: BroadcastMessage, exclude: str) -> List[str]:
        """Neighbouring vgroups this broadcast should be forwarded to.

        The choice must be identical at every correct member of the vgroup
        (otherwise the group message never reaches a majority), so built-in
        policies derive any randomness deterministically from the broadcast id.
        """
        if self.vgroup_view is None:
            return []
        own_group = self.vgroup_view.group_id
        cycle_neighbors = self.directory.cycle_neighbor_ids(own_group)
        if not cycle_neighbors:
            return []

        if self.forward_fn is not None:
            candidates = _unique(
                gid for pair in cycle_neighbors for gid in pair if gid != own_group
            )
            return [gid for gid in candidates if gid != exclude and self.forward_fn(message, gid)]

        policy = self.forward_policy
        if policy == "flood":
            fanout = self.params.gossip_fanout
            if fanout is not None and fanout < len(cycle_neighbors):
                # Adaptive throttle (AdaptiveGossip via the ParameterBus):
                # forward on a deterministic ``fanout``-cycle subset derived
                # from the broadcast id, exactly like the single/double
                # policies, so every correct co-member still picks the same
                # cycles.  ``None`` floods all cycles — byte-identical to
                # builds without the knob.
                start = _stable_hash(message.bcast_id) % len(cycle_neighbors)
                selected_cycles = [
                    (start + offset) % len(cycle_neighbors) for offset in range(fanout)
                ]
            else:
                selected_cycles = range(len(cycle_neighbors))
        elif policy in ("single", "double"):
            count = 1 if policy == "single" else 2
            start = _stable_hash(message.bcast_id) % len(cycle_neighbors)
            selected_cycles = [(start + offset) % len(cycle_neighbors) for offset in range(count)]
        elif policy == "random":
            # Deterministic "random" subset derived from the broadcast id: one
            # guaranteed cycle plus one extra cycle.
            start = _stable_hash(message.bcast_id) % len(cycle_neighbors)
            selected_cycles = [0, start]
        else:
            raise ValueError(f"unknown forward policy {policy!r}")

        targets: List[str] = []
        for cycle in selected_cycles:
            for gid in cycle_neighbors[cycle]:
                if gid != own_group and gid != exclude and gid not in targets:
                    targets.append(gid)
        return targets


@lru_cache(maxsize=4096)
def _stable_hash(value: str) -> int:
    """A process-independent stable hash (Python's ``hash`` is salted).

    Kept distinct from :func:`repro.overlay.gossip.stable_message_hash` (an
    8-byte digest): this 4-byte variant predates it and changing the width
    would silently reshuffle the single/double/random forwarding cycles, so
    it only gains a cache here.  Broadcast ids repeat for every hop of a
    dissemination, then die; the LRU bound keeps long runs flat.
    """
    return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:4], "big")


def _unique(values) -> List[str]:
    seen: Set[str] = set()
    result: List[str] = []
    for value in values:
        if value not in seen:
            seen.add(value)
            result.append(value)
    return result


class OverlayDirectory:
    """Interface expected from the directory object handed to nodes.

    The cluster implements it; this class only documents the contract (it is
    not meant to be instantiated).
    """

    def view_of_group(self, group_id: str) -> Optional[VGroupView]:  # pragma: no cover
        raise NotImplementedError

    def cycle_neighbor_ids(self, group_id: str) -> List[Tuple[str, str]]:  # pragma: no cover
        raise NotImplementedError

    def request_eviction(self, peer: str, suspected_by: str) -> None:  # pragma: no cover
        raise NotImplementedError


__all__ = [
    "AtumNode",
    "BroadcastMessage",
    "SmrEnvelope",
    "DirectMessage",
    "OverlayDirectory",
]
