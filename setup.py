"""Setuptools shim.

The pyproject.toml [project] table is the single source of truth for package
metadata.  This file exists so that the package can be installed in editable
mode on machines without the ``wheel`` package (legacy ``setup.py develop``
path), e.g. offline environments.
"""

from setuptools import setup

setup()
