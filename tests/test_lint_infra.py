"""atumlint infrastructure: pragma hygiene, baseline ratchet, plug-in rules, CLI."""

import json

import pytest

from lint_utils import FIXTURES, REPO_ROOT, lint_fixture, rules_of
from repro.lint import run_lint, register_rule, registered_rules
from repro.lint.core import Rule, _RULE_REGISTRY
from repro.lint.baseline import (
    BaselineEntry,
    diff_against_baseline,
    entries_from_findings,
    load_baseline,
    save_baseline,
)
from repro.lint.__main__ import find_root, main


# --------------------------------------------------------------- pragma hygiene


class TestPragmaHygiene:
    def test_reasonless_pragma_is_atl000_and_does_not_suppress(self):
        findings = lint_fixture("atl000_bad.py")
        rules = rules_of(findings)
        # The reason-less allow[ATL001] pragma does NOT suppress the ATL001
        # finding on its line, and itself surfaces as ATL000.
        assert rules.count("ATL001") == 1
        assert rules.count("ATL000") == 2

    def test_unknown_rule_in_pragma_is_reported(self):
        findings = [f for f in lint_fixture("atl000_bad.py") if f.rule == "ATL000"]
        assert any("unknown rule ATL999" in f.message for f in findings)
        assert any("without a reason" in f.message for f in findings)

    def test_unknown_rule_id_selection_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            run_lint([FIXTURES / "atl001_bad.py"], root=REPO_ROOT, rule_ids=["NOPE"])


# -------------------------------------------------------------- baseline ratchet


class TestBaselineRatchet:
    def findings(self):
        return lint_fixture("atl001_bad.py", rules=["ATL001"])

    def test_full_baseline_is_clean(self):
        findings = self.findings()
        entries = entries_from_findings(findings, [])
        diff = diff_against_baseline(findings, entries)
        assert diff.clean
        assert len(diff.suppressed) == len(findings)

    def test_new_finding_fails_the_ratchet(self):
        findings = self.findings()
        entries = entries_from_findings(findings[:-1], [])
        diff = diff_against_baseline(findings, entries)
        assert not diff.clean
        assert [f.key() for f in diff.unbaselined] == [findings[-1].key()]

    def test_stale_entry_fails_the_ratchet_too(self):
        findings = self.findings()
        ghost = BaselineEntry(
            rule="ATL001", path="src/repro/gone.py", snippet="x = 1", reason="fixed"
        )
        diff = diff_against_baseline(findings, entries_from_findings(findings, []) + [ghost])
        assert not diff.clean
        assert diff.stale == [ghost]

    def test_reasons_survive_regeneration(self):
        findings = self.findings()
        first = entries_from_findings(findings, [])
        reasoned = [
            BaselineEntry(e.rule, e.path, e.snippet, "reviewed: fixture") for e in first
        ]
        regenerated = entries_from_findings(findings, reasoned)
        assert all(e.reason == "reviewed: fixture" for e in regenerated)

    def test_save_load_round_trip(self, tmp_path):
        findings = self.findings()
        entries = entries_from_findings(findings, [])
        path = tmp_path / ".atumlint-baseline.json"
        save_baseline(path, entries)
        assert load_baseline(path) == sorted(entries, key=lambda e: e.key())
        payload = json.loads(path.read_text())
        assert "ratcheted" in payload["comment"]


# --------------------------------------------------------------- plug-in rules


class TestPluginRegistration:
    def test_new_rule_is_one_registered_class(self):
        @register_rule
        class FixtureRule(Rule):
            rule_id = "ATL900"
            title = "fixture plug-in rule"

            def check(self, module, project):
                yield self.finding(module, 1, "plug-in fired")

        try:
            assert "ATL900" in registered_rules()
            findings = run_lint(
                [FIXTURES / "atl004_bad.py"], root=REPO_ROOT, rule_ids=["ATL900"]
            )
            assert [f.message for f in findings] == ["plug-in fired"]
        finally:
            _RULE_REGISTRY.pop("ATL900", None)

    def test_duplicate_rule_id_rejected(self):
        registered_rules()  # ensure the built-in rules are registered
        with pytest.raises(ValueError, match="duplicate rule id"):

            @register_rule
            class Clash(Rule):
                rule_id = "ATL001"

    def test_reserved_rule_id_rejected(self):
        with pytest.raises(ValueError, match="non-reserved"):

            @register_rule
            class Reserved(Rule):
                rule_id = "ATL000"


# ------------------------------------------------------------------------- CLI


class TestCli:
    def test_find_root_walks_up(self):
        assert find_root(FIXTURES) == REPO_ROOT

    def test_list_rules_exits_zero(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("ATL001", "ATL008"):
            assert rule_id in out

    def test_violating_fixture_fails(self, capsys):
        code = main([str(FIXTURES / "atl001_bad.py"), "--root", str(REPO_ROOT)])
        assert code == 1
        assert "ATL001" in capsys.readouterr().out

    def test_clean_fixture_passes_and_writes_json(self, tmp_path, capsys):
        report_path = tmp_path / "findings.json"
        code = main(
            [
                str(FIXTURES / "atl008_ok.py"),
                "--root",
                str(REPO_ROOT),
                "--json",
                str(report_path),
                "--quiet",
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["findings"] == []

    def test_write_baseline_then_lint_passes(self, tmp_path, capsys):
        # An isolated root: baseline debt makes a violating file pass the
        # default mode without touching the repo's own (empty) baseline.
        target = FIXTURES / "atl007_bad.py"
        assert main([str(target), "--root", str(tmp_path)]) == 1
        capsys.readouterr()
        assert main([str(target), "--root", str(tmp_path), "--write-baseline"]) == 0
        entries = load_baseline(tmp_path / ".atumlint-baseline.json")
        assert entries and all(e.rule == "ATL007" for e in entries)
        assert main([str(target), "--root", str(tmp_path), "--quiet"]) == 0
