"""Golden-trace determinism test for the simulation kernel.

The golden file was captured with the *pre-optimisation* kernel (dataclass
event heap, asdict-based digests, re-sorting histograms) running the exact
scenario rebuilt here: a seeded 50-node SYNC cluster under churn with three
broadcasts.  The test asserts that

* two runs of the current kernel produce byte-identical ``(time, tag)`` event
  sequences (self-determinism), and
* the current kernel reproduces the recorded pre-optimisation trace and the
  benchmark-figure outputs exactly (cross-kernel determinism) — i.e. the
  fast-path rewrite changed wall-clock speed and nothing else.

If a future PR intentionally changes scheduling semantics, regenerate the
golden file with the pre-change kernel and document why in CHANGES.md.
"""

import json
import os

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden_trace_churn50.json")

SEED = 1234
NODES = 50
HORIZON = 40.0
CHURN_INTERVAL = 2.5
CHURN_START = 5.0
BROADCAST_TIMES = (2.0, 12.0, 22.0)


def build_scenario():
    """Rebuild the golden churn scenario (must match the capture script)."""
    params = AtumParameters.for_system_size(NODES, SmrKind.SYNC, round_duration=1.0)
    cluster = AtumCluster(params, seed=SEED)
    addresses = [f"n{i}" for i in range(NODES)]
    cluster.build_static(addresses)
    sim = cluster.sim
    rng = sim.rng.stream("golden-churn")
    state = {"churn": 0, "bcast": []}

    def churn_tick():
        if sim.now + CHURN_INTERVAL <= HORIZON:
            sim.schedule(CHURN_INTERVAL, churn_tick, tag="golden.churn")
        members = sorted(cluster.engine.node_group)
        if not members:
            return
        victim = members[rng.randrange(len(members))]
        try:
            cluster.leave(victim)
        except Exception:
            return
        state["churn"] += 1
        cluster.join(f"churn-{state['churn']}", contact="n0")

    def make_broadcast(origin):
        def fire():
            bcast_id = cluster.broadcast(origin, {"golden": origin, "at": sim.now})
            state["bcast"].append((bcast_id, sim.now))
        return fire

    sim.schedule(CHURN_START, churn_tick, tag="golden.churn")
    for index, when in enumerate(BROADCAST_TIMES):
        sim.schedule(when, make_broadcast(f"n{index}"), tag="golden.bcast")
    return cluster, state


def run_scenario():
    cluster, state = build_scenario()
    trace = []
    cluster.sim.run(until=HORIZON, trace=trace)
    metrics = cluster.sim.metrics
    figures = {
        "processed_events": cluster.sim.processed_events,
        "messages_delivered": metrics.counter("net.messages_delivered"),
        "messages_sent": metrics.counter("net.messages_sent"),
        "group_accepted": metrics.counter("group.messages_accepted"),
        "delivery_latency_mean": metrics.histogram("net.delivery_latency").mean,
        "delivery_latency_p99": metrics.histogram("net.delivery_latency").percentile(99),
        "system_size": cluster.system_size,
        "churn_rejoins": state["churn"],
        "broadcast_fractions": [
            cluster.delivery_fraction(bcast_id) for bcast_id, _ in state["bcast"]
        ],
    }
    return [[t, tag] for t, tag in trace], figures


def test_two_runs_are_byte_identical():
    trace_a, figures_a = run_scenario()
    trace_b, figures_b = run_scenario()
    assert trace_a == trace_b
    assert figures_a == figures_b


def test_cost_only_digest_mode_is_trace_identical():
    """Skipping real SHA-256 must change wall-clock only, never behaviour."""
    from repro.crypto.digest import DIGEST_MODE_COST_ONLY, digest_mode

    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        golden = json.load(fh)
    with digest_mode(DIGEST_MODE_COST_ONLY):
        trace, figures = run_scenario()
    assert trace == golden["trace"]
    assert figures == golden["figures"]


def test_matches_pre_optimisation_golden_trace():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        golden = json.load(fh)
    trace, figures = run_scenario()
    assert len(trace) == golden["trace_length"]
    assert trace == golden["trace"]
    # Benchmark figure outputs are bit-identical too: the histogram running
    # accumulators preserve the original float summation order.
    assert figures == golden["figures"]
