"""ATL003 fixture: the same set flows, made deterministic or suppressed."""


def flood(peers, transport):
    alive = {peer for peer in peers if peer}
    for peer in sorted(alive):
        transport.send(peer)


def pick(peers, rng):
    candidates = set(peers)
    return rng.sample(sorted(candidates), 2)


def drain(tasks):
    pending = set(tasks)
    # atumlint: allow[ATL003] fixture: drain is order-insensitive, results are re-sorted by the caller
    return pending.pop()
