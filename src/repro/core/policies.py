"""Self-tuning Atum: adaptive-parameter policies as middleware.

The paper deploys Atum with parameters fixed per deployment (Table 1):
``gmin``/``gmax``, the gossip fanout, the heartbeat period and the
anti-entropy cadence are chosen once for an expected system size and never
revisited.  Following "Towards Adaptable and Adaptive Policy-Free
Middleware" (PAPERS.md), this module separates those *policies* from the
*mechanisms* underneath them: a :class:`PolicyMiddleware` observes the
running system through the ordinary middleware hooks (churn through
``on_node_added``/``on_node_left``, suspicion volume through
``on_eviction``, delivery latency through ``on_deliver``, a cadence
through ``on_timer``) over rolling windows, and adapts parameters at
runtime.

Two rules keep adaptation safe:

* **All changes flow through the :class:`ParameterBus`** — never raw config
  mutation.  The bus owns per-parameter bounds, a rate limit, a hysteresis
  band (minimum step), an oscillation guard (no quick direction reversals)
  and the ``gmin``/``gmax`` coupling rules, and it records every accepted
  transition under the ``policy.*`` metric names.  Parameters whose values
  are snapshotted at construction time by some layer (the per-replica
  ``SmrConfig``, anti-entropy's ``repair_min_age``, the request-policy
  thresholds) are *adaptation-immutable*: proposing them raises instead of
  silently desynchronising the snapshots.
* **Invariants hold during adaptation, not just at fixed points.**  The
  appliers keep every derived quantity coherent in the same event: a
  ``gmin``/``gmax`` change immediately re-balances out-of-bounds vgroups
  (:meth:`~repro.overlay.membership.MembershipEngine.enforce_bounds`), a
  heartbeat-period change updates the shared ``AtumParameters`` (future
  joiners), every running monitor (next-tick adoption, see
  :meth:`~repro.group.heartbeat.HeartbeatMonitor.set_period`) *and* the
  cluster's suspicion-report aging window together, so the eviction
  majority argument never sees a torn configuration.

Determinism: a policy whose ``enabled`` flag is False arms no timer and
records nothing, so disabled-policy runs stay byte-identical to runs
without this module.  Enabled policies draw no randomness — adaptation is
a deterministic function of the observed (seeded) run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.middleware import Middleware, MiddlewareContext

#: Parameters that some layer snapshots at construction time and that no
#: reconfiguration protocol covers.  The bus refuses to manage them
#: (see ParameterBus.propose); the audit trail for each lives with the
#: snapshot site:
#:
#: * ``round_duration``/``request_timeout``/``checkpoint_interval``/
#:   ``adaptive_quarantine`` — snapshotted per replica by
#:   :meth:`repro.core.config.AtumParameters.smr_config`; co-members must
#:   agree on round/view arithmetic.
#: * ``repair_min_age`` and the other anti-entropy knobs — the shared
#:   :class:`~repro.group.antientropy.AntiEntropyConfig` is frozen; only
#:   the cadence has a runtime override (``set_period``).
#: * ``pull_timeout``/``pull_attempts`` (request-policy thresholds) —
#:   snapshotted into each :class:`~repro.net.requests.RequestPolicy`;
#:   in-flight request envelopes carry correlated deadlines.
#: * ``misses_before_eviction`` — policies adapt the heartbeat *period*
#:   only, so the suspicion deadline scales with the send cadence.
#: * ``hc``/``rwl``/``k``/``smr_kind``/``expected_system_size`` — overlay
#:   topology and engine choice; changing them means rebuilding the
#:   H-graph, not tuning a knob.
ADAPTATION_IMMUTABLE = frozenset(
    {
        "round_duration",
        "request_timeout",
        "checkpoint_interval",
        "adaptive_quarantine",
        "repair_min_age",
        "pull_timeout",
        "pull_attempts",
        "misses_before_eviction",
        "hc",
        "rwl",
        "k",
        "smr_kind",
        "expected_system_size",
    }
)


class PolicyError(ValueError):
    """A parameter proposal that is a wiring bug, not a runtime condition."""


@dataclass(frozen=True, slots=True)
class ParameterSpec:
    """Validation and damping rules for one bus-managed parameter.

    Attributes:
        lower/upper: Hard bounds; proposals outside are rejected
            (``policy.rejected_bounds``).
        min_interval: Minimum simulated seconds between accepted
            transitions of this parameter (``policy.rejected_rate``).
        min_step: Hysteresis band — proposals closer than this to the
            current value are rejected (``policy.rejected_step``), which
            also swallows no-op proposals.
        oscillation_window: A transition reversing the direction of the
            previous one within this many seconds is rejected
            (``policy.rejected_oscillation``); damping must come from the
            policy's own thresholds, not from the bus flip-flopping.
        integral: Whether values are coerced to ``int`` before applying.
    """

    lower: float
    upper: float
    min_interval: float
    min_step: float
    oscillation_window: float
    integral: bool = False


@dataclass(frozen=True, slots=True)
class ParameterTransition:
    """One accepted transition, kept in the bus history for reporting."""

    time: float
    name: str
    old: float
    new: float
    reason: str


class ParameterBus:
    """The single validated path for runtime parameter changes.

    One bus per cluster (see :meth:`repro.core.cluster.AtumCluster.
    parameter_bus`).  Policies call :meth:`propose`; the bus validates,
    damps, applies — keeping every derived quantity coherent — and records
    the transition.  Raw mutation of ``AtumParameters`` mid-run is exactly
    what this class exists to replace.

    Managed parameters: ``gmin``, ``gmax``, ``gossip_fanout``,
    ``heartbeat_period`` and (when the cluster runs the anti-entropy
    layer) ``antientropy_period``.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        params = cluster.params
        self._metrics = cluster.sim.metrics
        hb_misses = params.heartbeat_config().misses_before_eviction
        self._hb_misses = hb_misses
        self.history: List[ParameterTransition] = []
        self._current: Dict[str, float] = {
            "gmin": float(params.gmin),
            "gmax": float(params.gmax),
            "gossip_fanout": float(
                params.gossip_fanout if params.gossip_fanout is not None else params.hc
            ),
            "heartbeat_period": float(params.heartbeat_period),
        }
        self._specs: Dict[str, ParameterSpec] = {
            "gmin": ParameterSpec(
                lower=2,
                upper=max(4.0, params.gmin * 4.0),
                min_interval=5.0,
                min_step=1,
                oscillation_window=15.0,
                integral=True,
            ),
            "gmax": ParameterSpec(
                lower=3,
                upper=max(6.0, params.gmax * 4.0),
                min_interval=5.0,
                min_step=1,
                oscillation_window=15.0,
                integral=True,
            ),
            "gossip_fanout": ParameterSpec(
                lower=1,
                upper=params.hc,
                min_interval=5.0,
                min_step=1,
                oscillation_window=15.0,
                integral=True,
            ),
            "heartbeat_period": ParameterSpec(
                lower=params.heartbeat_period / 4.0,
                upper=params.heartbeat_period * 4.0,
                min_interval=5.0,
                min_step=params.heartbeat_period * 0.1,
                oscillation_window=15.0,
            ),
        }
        ae_config = cluster.antientropy_config
        if ae_config is not None:
            self._current["antientropy_period"] = float(ae_config.period)
            self._specs["antientropy_period"] = ParameterSpec(
                lower=ae_config.period / 4.0,
                upper=ae_config.period * 4.0,
                min_interval=5.0,
                min_step=ae_config.period * 0.1,
                oscillation_window=15.0,
            )
        self._appliers: Dict[str, Callable[[float], None]] = {
            "gmin": self._apply_gmin,
            "gmax": self._apply_gmax,
            "gossip_fanout": self._apply_gossip_fanout,
            "heartbeat_period": self._apply_heartbeat_period,
            "antientropy_period": self._apply_antientropy_period,
        }
        self._last_change: Dict[str, float] = {}
        self._last_direction: Dict[str, int] = {}

    # ------------------------------------------------------------------ queries

    def manages(self, name: str) -> bool:
        return name in self._specs

    def current(self, name: str) -> float:
        return self._current[name]

    def spec(self, name: str) -> ParameterSpec:
        return self._specs[name]

    def transitions(self) -> int:
        return len(self.history)

    # ----------------------------------------------------------------- proposal

    def propose(self, name: str, value: float, reason: str = "") -> bool:
        """Propose setting ``name`` to ``value``; returns acceptance.

        Runtime conditions (bounds, rate, hysteresis, oscillation,
        coupling) reject with ``False`` and a ``policy.rejected_*``
        counter; wiring bugs (an unmanaged or adaptation-immutable
        parameter) raise :class:`PolicyError`.
        """
        metrics = self._metrics
        if name in ADAPTATION_IMMUTABLE:
            metrics.increment("policy.rejected_immutable")
            raise PolicyError(
                f"parameter {name!r} is adaptation-immutable: a layer "
                f"snapshots it at construction time (see "
                f"repro.core.policies.ADAPTATION_IMMUTABLE)"
            )
        spec = self._specs.get(name)
        if spec is None:
            raise PolicyError(f"parameter {name!r} is not managed by the bus")
        metrics.increment("policy.proposals")
        value = float(value)
        if spec.integral:
            value = float(int(value))
        if not (spec.lower <= value <= spec.upper):
            metrics.increment("policy.rejected_bounds")
            return False
        if not self._coupling_ok(name, value):
            metrics.increment("policy.rejected_coupling")
            return False
        current = self._current[name]
        if abs(value - current) < spec.min_step:
            metrics.increment("policy.rejected_step")
            return False
        now = self.cluster.sim.now
        last = self._last_change.get(name)
        if last is not None and now - last < spec.min_interval:
            metrics.increment("policy.rejected_rate")
            return False
        direction = 1 if value > current else -1
        if (
            last is not None
            and direction == -self._last_direction.get(name, 0)
            and now - last < spec.oscillation_window
        ):
            metrics.increment("policy.rejected_oscillation")
            return False
        self._appliers[name](value)
        self._current[name] = value
        self._last_change[name] = now
        self._last_direction[name] = direction
        self.history.append(
            ParameterTransition(time=now, name=name, old=current, new=value, reason=reason)
        )
        metrics.increment("policy.transitions")
        metrics.observe("policy.transition_step", abs(value - current))
        # Literal names per parameter: atumlint's metric scan (ATL006) only
        # sees string literals, and the per-parameter trajectory histograms
        # are the A/B evidence the matrix rows cite.
        if name == "gmin":
            metrics.observe("policy.gmin", value)
        elif name == "gmax":
            metrics.observe("policy.gmax", value)
        elif name == "gossip_fanout":
            metrics.observe("policy.gossip_fanout", value)
        elif name == "heartbeat_period":
            metrics.observe("policy.heartbeat_period", value)
        elif name == "antientropy_period":
            metrics.observe("policy.antientropy_period", value)
        return True

    def _coupling_ok(self, name: str, value: float) -> bool:
        """The ``gmin``/``gmax`` coupling rules.

        Beyond ``gmin <= gmax``, keep ``2*gmin <= gmax + 1``: an
        undersized vgroup merges into a neighbour and the merged group
        splits into halves of at least ``floor((gmax+1)/2)``, so this is
        what guarantees a merge-then-split lands back inside the bounds.
        Policies move the bounds through transient states (widen ``gmax``
        before ``gmin``, narrow ``gmin`` before ``gmax``), which these
        rules admit.
        """
        if name == "gmin":
            gmax = self._current["gmax"]
            return value <= gmax and 2 * value <= gmax + 1
        if name == "gmax":
            gmin = self._current["gmin"]
            return value >= gmin and value >= 2 * gmin - 1
        return True

    # ----------------------------------------------------------------- appliers

    def _apply_gmin(self, value: float) -> None:
        gmin = int(value)
        self.cluster.params.gmin = gmin
        self.cluster.engine.config.gmin = gmin
        self.cluster.engine.enforce_bounds()

    def _apply_gmax(self, value: float) -> None:
        gmax = int(value)
        self.cluster.params.gmax = gmax
        self.cluster.engine.config.gmax = gmax
        self.cluster.engine.enforce_bounds()

    def _apply_gossip_fanout(self, value: float) -> None:
        fanout = int(value)
        # hc cycles is "no cap": store None so the flood fast path stays on.
        self.cluster.params.gossip_fanout = (
            None if fanout >= self.cluster.params.hc else fanout
        )

    def _apply_heartbeat_period(self, value: float) -> None:
        cluster = self.cluster
        # Shared params: future joiners' monitors are built on the new
        # period (heartbeat_config() snapshots per node, at creation).
        cluster.params.heartbeat_period = value
        # The eviction-majority argument needs the cluster's report-aging
        # window to track the monitors' suspicion deadline.
        cluster._suspicion_window = value * self._hb_misses
        # Running monitors adopt at their next tick (never mid-tick).
        for _, node in sorted(cluster.nodes.items()):
            if node.heartbeats is not None:
                node.heartbeats.set_period(value)

    def _apply_antientropy_period(self, value: float) -> None:
        for _, node in sorted(self.cluster.nodes.items()):
            if node.antientropy is not None:
                node.antientropy.set_period(value)

    def apply_to_node(self, node) -> None:
        """Carry active overrides onto a node created after a transition.

        ``gmin``/``gmax``/``gossip_fanout``/``heartbeat_period`` reach new
        nodes through the shared ``AtumParameters``; only the per-repairer
        anti-entropy override needs explicit re-application.
        """
        period = self._current.get("antientropy_period")
        if (
            period is not None
            and node.antientropy is not None
            and period != self.cluster.antientropy_config.period
        ):
            node.antientropy.set_period(period)


class PolicyMiddleware(Middleware):
    """Base class for adaptive policies: rolling-window observation.

    Subclasses implement :meth:`evaluate`, called every ``period``
    simulated seconds with pruned windows, and adapt exclusively through
    ``self.bus`` (the cluster's :class:`ParameterBus`, bound in
    :meth:`setup`).

    ``enabled=False`` arms no timer and records nothing — the instance is
    inert and the run stays byte-identical to one without it (the
    byte-identity tests rely on this).
    """

    def __init__(
        self, period: float = 2.0, window: float = 10.0, enabled: bool = True
    ) -> None:
        self.timer_period = period if enabled else None
        self.window = window
        self.enabled = enabled
        self.cluster = None
        self.bus: Optional[ParameterBus] = None
        self._joins: Deque[float] = deque()
        self._leaves: Deque[float] = deque()
        self._evictions: Deque[float] = deque()
        self._latencies: Deque[Tuple[float, float]] = deque()

    def setup(self, cluster) -> None:
        self.cluster = cluster
        if self.enabled:
            self.bus = cluster.parameter_bus()

    # -------------------------------------------------------------- observation

    def on_node_added(self, ctx: MiddlewareContext) -> None:
        if self.enabled:
            self._joins.append(ctx.now)

    def on_node_left(self, ctx: MiddlewareContext) -> None:
        if self.enabled:
            self._leaves.append(ctx.now)

    def on_eviction(self, ctx: MiddlewareContext) -> None:
        if self.enabled:
            self._evictions.append(ctx.now)

    def on_deliver(self, ctx: MiddlewareContext) -> None:
        if not self.enabled or ctx.channel != "broadcast":
            return
        created = getattr(ctx.payload, "created_at", None)
        if created is not None:
            self._latencies.append((ctx.now, ctx.now - created))

    def on_timer(self, ctx: MiddlewareContext) -> None:
        self._prune(ctx.now)
        self.evaluate(ctx.now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        for window in (self._joins, self._leaves, self._evictions):
            while window and window[0] < horizon:
                window.popleft()
        while self._latencies and self._latencies[0][0] < horizon:
            self._latencies.popleft()

    # ------------------------------------------------------------------ signals

    def churn_rate(self) -> float:
        """Joins + leaves in the window, scaled to events per minute."""
        return (len(self._joins) + len(self._leaves)) * 60.0 / self.window

    def eviction_count(self) -> int:
        return len(self._evictions)

    def delivery_rate(self) -> float:
        """Broadcast deliveries per second over the window."""
        return len(self._latencies) / self.window

    def mean_delivery_latency(self) -> Optional[float]:
        if not self._latencies:
            return None
        return sum(latency for _, latency in self._latencies) / len(self._latencies)

    def evaluate(self, now: float) -> None:
        """Inspect the windows and propose transitions (subclass hook)."""
        raise NotImplementedError


class AdaptiveGroupSize(PolicyMiddleware):
    """Widen ``gmin``/``gmax`` under rising churn, narrow when quiet.

    Larger vgroups ride out membership turbulence with fewer splits and
    merges (and a higher per-group fault threshold); smaller vgroups keep
    agreement cheap when the system is calm.  Bound ordering keeps the
    coupling rules satisfied at every step: widening raises ``gmax``
    before ``gmin``, narrowing lowers ``gmin`` before ``gmax``, with
    ``gmin = gmax // 2`` (the paper's default ratio) as the steady state.
    """

    def __init__(
        self,
        high_churn: float = 6.0,
        low_churn: float = 1.0,
        step: int = 2,
        max_widen: float = 2.0,
        period: float = 2.0,
        window: float = 10.0,
        enabled: bool = True,
    ) -> None:
        super().__init__(period=period, window=window, enabled=enabled)
        self.high_churn = high_churn
        self.low_churn = low_churn
        self.step = step
        self.max_widen = max_widen
        self._base_gmax = 0

    def setup(self, cluster) -> None:
        super().setup(cluster)
        self._base_gmax = cluster.params.gmax

    def evaluate(self, now: float) -> None:
        rate = self.churn_rate()
        bus = self.bus
        gmax = int(bus.current("gmax"))
        gmin = int(bus.current("gmin"))
        ceiling = int(self._base_gmax * self.max_widen)
        if rate >= self.high_churn and gmax < ceiling:
            target = min(ceiling, gmax + self.step)
            bus.propose("gmax", target, reason=f"churn {rate:.1f}/min")
            desired = max(2, int(bus.current("gmax")) // 2)
            if desired > gmin:
                bus.propose("gmin", desired, reason="track gmax")
        elif rate <= self.low_churn and gmax > self._base_gmax:
            target = max(self._base_gmax, gmax - self.step)
            desired = max(2, target // 2)
            if desired < gmin:
                bus.propose("gmin", desired, reason="quiet")
            bus.propose("gmax", target, reason=f"churn {rate:.1f}/min")


class AdaptiveHeartbeat(PolicyMiddleware):
    """Stretch the heartbeat period with observed loss, shrink when calm.

    Evictions inside the window are the loss signal: wrongful suspicion
    under turbulence (reconfigurations delaying heartbeats) is exactly
    what the paper's coarse one-minute period guards against, so the
    policy stretches the period — and with it the suspicion deadline,
    which the bus keeps coherent with ``heartbeat_config()`` and the
    cluster's report-aging window — while churn or evictions are high,
    and relaxes back toward the deployment baseline when quiet.
    """

    def __init__(
        self,
        eviction_threshold: int = 1,
        churn_threshold: float = 6.0,
        stretch: float = 1.5,
        max_stretch: float = 4.0,
        period: float = 2.0,
        window: float = 10.0,
        enabled: bool = True,
    ) -> None:
        super().__init__(period=period, window=window, enabled=enabled)
        self.eviction_threshold = eviction_threshold
        self.churn_threshold = churn_threshold
        self.stretch = stretch
        self.max_stretch = max_stretch
        self._base_period = 0.0

    def setup(self, cluster) -> None:
        super().setup(cluster)
        self._base_period = cluster.params.heartbeat_period

    def evaluate(self, now: float) -> None:
        bus = self.bus
        current = bus.current("heartbeat_period")
        ceiling = self._base_period * self.max_stretch
        stressed = (
            self.eviction_count() >= self.eviction_threshold
            or self.churn_rate() >= self.churn_threshold
        )
        if stressed and current < ceiling:
            target = min(ceiling, current * self.stretch)
            bus.propose("heartbeat_period", target, reason="suspicion pressure")
        elif not stressed and current > self._base_period:
            target = max(self._base_period, current / self.stretch)
            bus.propose("heartbeat_period", target, reason="calm")


class AdaptiveGossip(PolicyMiddleware):
    """Throttle the flood fanout under delivery load, restore when light.

    Under heavy broadcast load every delivered message is forwarded on all
    ``hc`` cycles; capping the fanout (deterministically per broadcast id,
    so co-members stay aligned) sheds redundant traffic at the cost of
    dissemination slack, which the H-graph's remaining cycles absorb.
    """

    def __init__(
        self,
        high_load: float = 4.0,
        low_load: float = 1.0,
        min_fanout: int = 2,
        period: float = 2.0,
        window: float = 10.0,
        enabled: bool = True,
    ) -> None:
        super().__init__(period=period, window=window, enabled=enabled)
        self.high_load = high_load
        self.low_load = low_load
        self.min_fanout = min_fanout
        self._max_fanout = 0

    def setup(self, cluster) -> None:
        super().setup(cluster)
        self._max_fanout = cluster.params.hc

    def evaluate(self, now: float) -> None:
        load = self.delivery_rate()
        bus = self.bus
        fanout = int(bus.current("gossip_fanout"))
        if load >= self.high_load and fanout > self.min_fanout:
            bus.propose("gossip_fanout", fanout - 1, reason=f"load {load:.1f}/s")
        elif load <= self.low_load and fanout < self._max_fanout:
            bus.propose("gossip_fanout", fanout + 1, reason=f"load {load:.1f}/s")


class AdaptiveAntiEntropy(PolicyMiddleware):
    """Repair cadence follows the measured delivery deficit.

    The deficit signal is anti-entropy's own repair activity
    (``ae.requests_sent`` deltas between evaluations): pulls in flight
    mean peers are missing broadcasts, so the policy tightens the repair
    period; a dry spell relaxes it back toward the configured baseline.
    Inert on clusters without the anti-entropy layer.
    """

    def __init__(
        self,
        high_pulls: float = 1.0,
        tighten: float = 0.75,
        period: float = 2.0,
        window: float = 10.0,
        enabled: bool = True,
    ) -> None:
        super().__init__(period=period, window=window, enabled=enabled)
        self.high_pulls = high_pulls
        self.tighten = tighten
        self._base_period = 0.0
        self._last_pulls = 0.0

    def setup(self, cluster) -> None:
        super().setup(cluster)
        if cluster.antientropy_config is not None:
            self._base_period = cluster.antientropy_config.period

    def evaluate(self, now: float) -> None:
        bus = self.bus
        if not bus.manages("antientropy_period"):
            return
        pulls = self.cluster.sim.metrics.counter("ae.requests_sent")
        delta = pulls - self._last_pulls
        self._last_pulls = pulls
        rate = delta / self.timer_period
        current = bus.current("antientropy_period")
        floor = bus.spec("antientropy_period").lower
        if rate >= self.high_pulls and current > floor:
            target = max(floor, current * self.tighten)
            bus.propose("antientropy_period", target, reason=f"pulls {rate:.1f}/s")
        elif rate == 0 and current < self._base_period:
            target = min(self._base_period, current / self.tighten)
            bus.propose("antientropy_period", target, reason="no deficit")


#: Scenario-facing registry: fault-matrix rows name policies by key
#: (``Scenario.policies``), and run_scenario instantiates them here so
#: the A/B rows stay declarative.
POLICY_BUILDERS: Dict[str, Callable[[], PolicyMiddleware]] = {
    "group_size": AdaptiveGroupSize,
    "heartbeat": AdaptiveHeartbeat,
    "gossip": AdaptiveGossip,
    "antientropy": AdaptiveAntiEntropy,
}


__all__ = [
    "ADAPTATION_IMMUTABLE",
    "AdaptiveAntiEntropy",
    "AdaptiveGossip",
    "AdaptiveGroupSize",
    "AdaptiveHeartbeat",
    "POLICY_BUILDERS",
    "ParameterBus",
    "ParameterSpec",
    "ParameterTransition",
    "PolicyError",
    "PolicyMiddleware",
]
