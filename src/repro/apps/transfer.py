"""Bulk file-transfer cost model shared by AShare and the NFS baseline.

The paper's Figure 9 normalises read latency to file size and observes that
the constant overhead of transfer initiation (handshakes, TCP slow start)
amortises as files grow, and that AShare's parallel chunked pulls from
multiple replicas outperform a single-connection read for large files.  The
model below captures exactly those effects:

* every connection pays a fixed setup cost (handshake plus slow-start ramp);
* a single connection sustains ``per_connection_bandwidth`` (TCP throughput on
  a micro instance is well below the NIC's line rate);
* parallel connections share the reader's downlink, which caps the aggregate;
* every transferred byte is hashed for the integrity check; hashing chunks in
  parallel divides that cost (multi-threaded digest computation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.cost import CryptoCostModel


@dataclass
class TransferModel:
    """Timing model for bulk reads.

    Attributes:
        connection_setup_s: Fixed per-connection overhead (handshake, slow start).
        per_connection_bandwidth: Sustained throughput of one connection (B/s).
        downlink_bandwidth: The reader's total download capacity (B/s).
        crypto: Cost model for digest verification.
        verify_digests: Whether integrity checking is performed (AShare yes,
            NFS no).
    """

    connection_setup_s: float = 0.4
    per_connection_bandwidth: float = 2_200_000.0
    downlink_bandwidth: float = 8_000_000.0
    crypto: CryptoCostModel = None  # type: ignore[assignment]
    verify_digests: bool = True

    def __post_init__(self) -> None:
        if self.crypto is None:
            # ~33 MB/s of single-threaded SHA-256 throughput, in line with a
            # low-end VM; chunked reads hash chunks on parallel threads.
            self.crypto = CryptoCostModel(hash_seconds_per_kb=0.00003)

    # ------------------------------------------------------------------ queries

    def effective_connection_bandwidth(self, parallel_connections: int) -> float:
        """Per-connection bandwidth once the downlink is shared."""
        connections = max(1, parallel_connections)
        return min(self.per_connection_bandwidth, self.downlink_bandwidth / connections)

    def single_stream_time(self, size_bytes: int) -> float:
        """Time to read ``size_bytes`` over one connection without verification."""
        return self.connection_setup_s + size_bytes / self.effective_connection_bandwidth(1)

    def chunked_read_time(
        self,
        chunk_sizes: Sequence[int],
        parallel_connections: int,
        corrupted_chunks: int = 0,
    ) -> float:
        """Time to read a chunked file from ``parallel_connections`` sources.

        Chunks are assigned round-robin to connections; each connection
        transfers its chunks back to back.  Corrupted chunks are detected by
        the integrity check after transfer and re-pulled once from another
        source (serialised after the initial pass, as in AShare's GET).
        """
        if not chunk_sizes:
            return 0.0
        connections = max(1, min(parallel_connections, len(chunk_sizes)))
        bandwidth = self.effective_connection_bandwidth(connections)
        per_connection_bytes = [0] * connections
        for index, size in enumerate(chunk_sizes):
            per_connection_bytes[index % connections] += size
        transfer_time = self.connection_setup_s + max(per_connection_bytes) / bandwidth

        verification_time = 0.0
        total_bytes = sum(chunk_sizes)
        if self.verify_digests:
            # Digests of different chunks are computed in parallel threads.
            verification_time = self.crypto.hash_cost(total_bytes, threads=connections)

        retry_time = 0.0
        if corrupted_chunks > 0:
            corrupted = min(corrupted_chunks, len(chunk_sizes))
            average_chunk = total_bytes / len(chunk_sizes)
            # Re-pull each corrupted chunk from another replica: a fresh
            # connection setup plus the chunk transfer and its verification.
            retry_time = corrupted * (
                self.connection_setup_s + average_chunk / self.effective_connection_bandwidth(1)
            )
            if self.verify_digests:
                retry_time += self.crypto.hash_cost(int(corrupted * average_chunk))
        return transfer_time + verification_time + retry_time

    def latency_per_mb(self, total_time: float, size_bytes: int) -> float:
        """Normalise a read latency to seconds per megabyte (Figure 9's y-axis)."""
        megabytes = max(1e-9, size_bytes / (1024 * 1024))
        return total_time / megabytes


__all__ = ["TransferModel"]
