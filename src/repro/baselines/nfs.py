"""NFS-like single-server file service (the baseline of Figure 9).

NFS4 is the paper's baseline for AShare's GET: a client reads the whole file
from one server over one connection, with no fault-tolerance and no integrity
verification.  The same :class:`~repro.apps.transfer.TransferModel` is used as
for AShare, so the comparison isolates the transfer strategy (single stream
versus parallel chunked pulls) rather than differences in the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.transfer import TransferModel


@dataclass
class NfsConfig:
    """Configuration of the NFS-like baseline."""

    transfer: TransferModel = field(
        default_factory=lambda: TransferModel(verify_digests=False)
    )


class NfsServerModel:
    """A single file server; clients read files over one connection."""

    def __init__(self, config: Optional[NfsConfig] = None) -> None:
        self.config = config or NfsConfig()
        self._files: dict[str, int] = {}

    def store(self, name: str, size_bytes: int) -> None:
        """Register a file of the given size on the server."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        self._files[name] = size_bytes

    def has(self, name: str) -> bool:
        return name in self._files

    def read_latency(self, name: str) -> float:
        """Time for a client to read the whole file (seconds)."""
        if name not in self._files:
            raise KeyError(f"unknown file {name!r}")
        return self.config.transfer.single_stream_time(self._files[name])

    def read_latency_per_mb(self, name: str) -> float:
        """Normalised read latency (seconds per MB), as plotted in Figure 9."""
        size = self._files[name]
        return self.config.transfer.latency_per_mb(self.read_latency(name), size)


__all__ = ["NfsConfig", "NfsServerModel"]
