"""Seeded fuzz/forgery tests for checkpoint and state-transfer frames.

A lagging PBFT replica is the natural target of checkpoint forgery: if any
malformed certificate or tampered state snapshot were installed, a single
Byzantine co-replica could rewrite a correct replica's decided log.  These
tests cut one replica off, decide operations behind its back, and then feed
it hand-crafted and randomly-mutated frames directly — every one must be
rejected and counted, leaving the decided log untouched — before checking
that the *genuine* response still installs.

Deterministic (fixed seeds) like the other fuzz suites, so failures always
reproduce with the printed case.
"""

import random
from dataclasses import replace

from repro.net.latency import LogNormalLatency
from repro.smr import PbftReplica, ReplicaGroupHarness, SmrConfig
from repro.smr.checkpoint import (
    Checkpoint,
    CheckpointAnnounce,
    CheckpointCertificate,
    StateTransferResponse,
    checkpoint_statement,
)


def make_lagging_harness(seed=0, interval=2, decided=4):
    """A 4-replica group where replica-3 missed ``decided`` operations."""
    harness = ReplicaGroupHarness(
        group_size=4,
        replica_class=PbftReplica,
        config=SmrConfig(
            request_timeout=2.0,
            checkpoint_interval=interval,
            # Announces off: the tests drive every frame by hand.
            checkpoint_announce_period=10_000.0,
        ),
        seed=seed,
        latency_model=LogNormalLatency(median=0.02, sigma=0.3),
    )
    split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
    for index in range(decided):
        harness.propose("replica-0", "noop", index, op_id=f"op-{index}")
    harness.run(until=10.0)
    harness.network.merge(split)
    lagging = harness.actors["replica-3"].replica
    serving = harness.actors["replica-0"].replica
    assert len(lagging.decided_log) == 0
    assert len(serving.decided_log) == decided
    assert serving.checkpoints.stable is not None
    return harness, lagging, serving


def rejected(harness):
    return harness.sim.metrics.counter("smr.checkpoint.rejected")


class TestForgedCheckpointVotes:
    def test_bad_signature_vote_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=1)
        digest = serving.checkpoints.stable.state_digest
        statement = checkpoint_statement(0, 4, digest)
        forged_mac = replace(
            harness.registry.sign("replica-0", statement), mac="f" * 64
        )
        before = rejected(harness)
        lagging.on_message(
            Checkpoint(epoch=0, seq=4, state_digest=digest, replica="replica-0",
                       signature=forged_mac),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert lagging.checkpoints.stable is None

    def test_vote_signed_by_a_different_key_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=2)
        digest = serving.checkpoints.stable.state_digest
        statement = checkpoint_statement(0, 4, digest)
        # replica-3 signs but claims the vote is replica-0's.
        wrong_signer = replace(
            harness.registry.sign("replica-3", statement), signer="replica-0"
        )
        before = rejected(harness)
        lagging.on_message(
            Checkpoint(epoch=0, seq=4, state_digest=digest, replica="replica-0",
                       signature=wrong_signer),
            "replica-0",
        )
        assert rejected(harness) == before + 1

    def test_relayed_vote_of_another_replica_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=3)
        digest = serving.checkpoints.stable.state_digest
        statement = checkpoint_statement(0, 4, digest)
        vote = Checkpoint(
            epoch=0, seq=4, state_digest=digest, replica="replica-1",
            signature=harness.registry.sign("replica-1", statement),
        )
        before = rejected(harness)
        lagging.on_message(vote, "replica-2")  # relayed, not from its author
        assert rejected(harness) == before + 1

    def test_non_member_vote_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=4)
        digest = serving.checkpoints.stable.state_digest
        statement = checkpoint_statement(0, 4, digest)
        harness.registry.generate("intruder")
        vote = Checkpoint(
            epoch=0, seq=4, state_digest=digest, replica="intruder",
            signature=harness.registry.sign("intruder", statement),
        )
        before = rejected(harness)
        lagging.on_message(vote, "intruder")
        assert rejected(harness) == before + 1


def forge_certificate(registry, signers, epoch, seq, digest):
    statement = checkpoint_statement(epoch, seq, digest)
    return CheckpointCertificate(
        epoch=epoch,
        seq=seq,
        state_digest=digest,
        signatures=tuple(registry.sign(signer, statement) for signer in signers),
    )


class TestForgedCertificates:
    def test_underquorum_certificate_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=5)
        cert = forge_certificate(
            harness.registry, ["replica-0", "replica-1"], 0, 6, "d" * 64
        )
        before = rejected(harness)
        lagging.on_message(CheckpointAnnounce(epoch=0, certificate=cert), "replica-0")
        assert rejected(harness) == before + 1
        assert lagging.checkpoints.stable is None

    def test_duplicate_signer_certificate_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=6)
        cert = forge_certificate(
            harness.registry, ["replica-0", "replica-0", "replica-1"], 0, 6, "d" * 64
        )
        before = rejected(harness)
        lagging.on_message(CheckpointAnnounce(epoch=0, certificate=cert), "replica-0")
        assert rejected(harness) == before + 1

    def test_non_member_signer_certificate_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=7)
        harness.registry.generate("intruder")
        cert = forge_certificate(
            harness.registry, ["replica-0", "replica-1", "intruder"], 0, 6, "d" * 64
        )
        before = rejected(harness)
        lagging.on_message(CheckpointAnnounce(epoch=0, certificate=cert), "replica-0")
        assert rejected(harness) == before + 1

    def test_statement_mismatch_certificate_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=8)
        # Signatures over seq 4 presented as a certificate for seq 6.
        statement = checkpoint_statement(0, 4, "d" * 64)
        cert = CheckpointCertificate(
            epoch=0,
            seq=6,
            state_digest="d" * 64,
            signatures=tuple(
                harness.registry.sign(s, statement)
                for s in ("replica-0", "replica-1", "replica-2")
            ),
        )
        before = rejected(harness)
        lagging.on_message(CheckpointAnnounce(epoch=0, certificate=cert), "replica-0")
        assert rejected(harness) == before + 1


class TestForgedStateTransfers:
    def test_tampered_operation_body_is_never_installed(self):
        harness, lagging, serving = make_lagging_harness(seed=9)
        cert = serving.checkpoints.stable
        genuine = list(serving.decided_log[: cert.seq])
        tampered = [replace(genuine[0], body="evil")] + genuine[1:]
        before = rejected(harness)
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=tuple(tampered)
            ),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert len(lagging.decided_log) == 0

    def test_reordered_operations_are_never_installed(self):
        harness, lagging, serving = make_lagging_harness(seed=10)
        cert = serving.checkpoints.stable
        genuine = list(serving.decided_log[: cert.seq])
        reordered = [genuine[1], genuine[0]] + genuine[2:]
        before = rejected(harness)
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=tuple(reordered)
            ),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert len(lagging.decided_log) == 0

    def test_stale_base_count_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=11)
        cert = serving.checkpoints.stable
        genuine = tuple(serving.decided_log[1 : cert.seq])
        before = rejected(harness)
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=1, operations=genuine
            ),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert len(lagging.decided_log) == 0

    def test_truncated_snapshot_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=12)
        cert = serving.checkpoints.stable
        genuine = tuple(serving.decided_log[: cert.seq - 1])
        before = rejected(harness)
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=genuine
            ),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert len(lagging.decided_log) == 0

    def test_genuine_response_installs_after_forgeries_failed(self):
        harness, lagging, serving = make_lagging_harness(seed=13)
        cert = serving.checkpoints.stable
        genuine = tuple(serving.decided_log[: cert.seq])
        lagging.on_message(
            StateTransferResponse(
                epoch=0,
                certificate=cert,
                base_count=0,
                operations=(replace(genuine[0], body="evil"),) + genuine[1:],
            ),
            "replica-0",
        )
        assert len(lagging.decided_log) == 0
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=genuine
            ),
            "replica-0",
        )
        assert [op.op_id for op in lagging.decided_log] == [
            op.op_id for op in genuine
        ]
        assert lagging.checkpoints.stable is not None


CASES = 120


class TestRandomizedFrameFuzz:
    def test_random_mutations_are_rejected_and_never_installed(self):
        harness, lagging, serving = make_lagging_harness(seed=14)
        cert = serving.checkpoints.stable
        genuine = tuple(serving.decided_log[: cert.seq])
        rng = random.Random(0xCC5)
        mutations = 0
        for case in range(CASES):
            kind = rng.randrange(5)
            if kind == 0:  # corrupt the certified digest
                bad = forge_certificate(
                    harness.registry,
                    ["replica-0", "replica-1", "replica-2"],
                    0,
                    cert.seq,
                    "%064x" % rng.getrandbits(256),
                )
                frame = StateTransferResponse(
                    epoch=0, certificate=bad, base_count=0, operations=genuine
                )
            elif kind == 1:  # drop a signature from the real certificate
                bad = CheckpointCertificate(
                    epoch=cert.epoch,
                    seq=cert.seq,
                    state_digest=cert.state_digest,
                    signatures=tuple(
                        rng.sample(list(cert.signatures), max(0, len(cert.signatures) - 2))
                    ),
                )
                frame = StateTransferResponse(
                    epoch=0, certificate=bad, base_count=0, operations=genuine
                )
            elif kind == 2:  # shuffle / drop / duplicate operations
                operations = list(genuine)
                action = rng.randrange(3)
                if action == 0:
                    rng.shuffle(operations)
                    if operations == list(genuine):
                        operations.reverse()
                elif action == 1:
                    operations.pop(rng.randrange(len(operations)))
                else:
                    operations.append(operations[rng.randrange(len(operations))])
                frame = StateTransferResponse(
                    epoch=0,
                    certificate=cert,
                    base_count=0,
                    operations=tuple(operations),
                )
            elif kind == 3:  # wrong base count (stale low-water-mark)
                frame = StateTransferResponse(
                    epoch=0,
                    certificate=cert,
                    base_count=rng.randrange(1, cert.seq + 3),
                    operations=genuine,
                )
            else:  # tamper one operation's body or proposer
                index = rng.randrange(len(genuine))
                field_name = rng.choice(["body", "proposer"])
                tampered = replace(genuine[index], **{field_name: "forged"})
                frame = StateTransferResponse(
                    epoch=0,
                    certificate=cert,
                    base_count=0,
                    operations=genuine[:index] + (tampered,) + genuine[index + 1 :],
                )
            before = rejected(harness)
            lagging.on_message(frame, "replica-0")
            assert len(lagging.decided_log) == 0, (case, frame)
            assert rejected(harness) == before + 1, (case, frame)
            mutations += 1
        assert mutations == CASES
        # After the whole barrage, the genuine transfer still installs.
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=genuine
            ),
            "replica-0",
        )
        assert [op.op_id for op in lagging.decided_log] == [
            op.op_id for op in genuine
        ]
