"""Discrete-event simulation kernel.

The kernel provides a deterministic, seeded event loop on which every Atum
protocol in this repository runs.  The central pieces are:

* :class:`repro.sim.simulator.Simulator` -- the event loop and simulated clock.
* :class:`repro.sim.actor.Actor` -- base class for protocol participants.
* :class:`repro.sim.rng.RngRegistry` -- named, reproducible random streams.
* :class:`repro.sim.metrics.MetricsRegistry` -- counters, samples and series.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator, SimulationError
from repro.sim.actor import Actor
from repro.sim.rng import RngRegistry
from repro.sim.metrics import MetricsRegistry, Histogram, TimeSeries

# repro.sim.perf (kernel throughput), repro.sim.protocol_perf (protocol-stack
# throughput) and repro.sim.runpar (sharded parallel scenario runner) are
# imported lazily by the benchmarks to keep the kernel import graph minimal.

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "Actor",
    "RngRegistry",
    "MetricsRegistry",
    "Histogram",
    "TimeSeries",
]
