"""The atumlint rules (ATL001..ATL009).

Each rule is one registered class targeting a failure mode this codebase
has actually hit (see README "Static analysis"):

========  ==============================================================
ATL001    direct ``random`` use outside the named-stream registry
ATL002    wall-clock time on simulation/protocol paths
ATL003    unordered-set iteration flowing into sends / RNG draws
ATL004    blanket ``except`` that neither re-raises nor counts
ATL005    attribute writes missing from ``__slots__`` (incl. inherited)
ATL006    metric name literals not in the generated registry
ATL007    payload mutation after it was handed to a ``send*`` call
ATL008    ``hash()`` / ``id()`` values in protocol state or ordering
ATL009    observability hook wiring outside ``repro.core.middleware``
========  ==============================================================

The rules are static heuristics, not proofs: each docstring states exactly
what is matched so a reader can predict (and pragma-justify) the verdict.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import Finding, ModuleInfo, ProjectIndex, Rule, register_rule

# --------------------------------------------------------------------- ATL001

#: The one module allowed to construct ``random.Random``: the stream registry.
RNG_HOME = "repro/sim/rng.py"


@register_rule
class DirectRandomRule(Rule):
    """ATL001 — all randomness must flow through named seeded streams.

    Flags every call through the ``random`` module (``random.Random(...)``,
    ``random.sample(...)``, a from-imported ``Random(...)``) outside
    ``sim/rng.py``.  Module-level ``random`` calls draw from the process
    global generator (seeded by interpreter start-up), and ad-hoc
    ``random.Random(const)`` constructions bypass the master-seed
    derivation — both broke byte-reproducibility before (PR 2's
    PYTHONHASHSEED-dependent gossip draws).  Route draws through
    :func:`repro.sim.rng.RngRegistry.stream` / ``named_stream`` instead.
    """

    rule_id = "ATL001"
    title = "direct random.* call outside sim/rng.py"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        if module.relpath.endswith(RNG_HOME):
            return
        aliases = module.import_aliases
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                target = aliases.get(func.value.id)
                if target == "random":
                    yield self.finding(
                        module,
                        node.lineno,
                        f"direct call random.{func.attr}(...) — draw from a named "
                        f"stream (repro.sim.rng) instead",
                    )
            elif isinstance(func, ast.Name):
                target = aliases.get(func.id, "")
                if target.startswith("random."):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"direct call to {target}(...) — draw from a named stream "
                        f"(repro.sim.rng) instead",
                    )


# --------------------------------------------------------------------- ATL002

WALL_CLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
#: Fully-qualified from-import targets that read the wall clock.
WALL_CLOCK_TARGETS = {f"time.{attr}" for attr in WALL_CLOCK_TIME_ATTRS} | {
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
#: Paths allowed to read the wall clock: benchmark harnesses time *real*
#: elapsed seconds by design.
WALL_CLOCK_ALLOWED_PREFIXES = ("benchmarks/",)
WALL_CLOCK_ALLOWED_SUFFIXES = ("repro/sim/perf.py",)


@register_rule
class WallClockRule(Rule):
    """ATL002 — no wall-clock reads on simulation/protocol paths.

    Protocol and simulation code must take time from ``sim.now`` only;
    a wall-clock read makes behaviour depend on host speed and destroys
    trace byte-identity.  Flags calls to ``time.time/monotonic/
    perf_counter/process_time`` (and ``_ns`` variants) and
    ``datetime.now/utcnow/today``, except under ``benchmarks/`` and in
    ``sim/perf.py`` which measure real elapsed seconds by design.
    """

    rule_id = "ATL002"
    title = "wall-clock read outside benchmarks/ and sim/perf.py"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        rel = module.relpath
        if rel.startswith(WALL_CLOCK_ALLOWED_PREFIXES) or rel.endswith(
            WALL_CLOCK_ALLOWED_SUFFIXES
        ):
            return
        aliases = module.import_aliases
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                target = aliases.get(func.value.id)
                if target == "time" and func.attr in WALL_CLOCK_TIME_ATTRS:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"wall-clock read time.{func.attr}() — use sim.now",
                    )
                elif (
                    target in ("datetime.datetime", "datetime.date")
                    and func.attr in WALL_CLOCK_DATETIME_ATTRS
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"wall-clock read {target.split('.')[-1]}.{func.attr}() — "
                        f"use sim.now",
                    )
            elif isinstance(func, ast.Name):
                target = aliases.get(func.id, "")
                if target in WALL_CLOCK_TARGETS:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"wall-clock read {target}() — use sim.now",
                    )


# --------------------------------------------------------------------- ATL003

SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"}
SET_METHODS = {"difference", "union", "intersection", "symmetric_difference", "copy"}
RNG_SAMPLING_ATTRS = {"sample", "choice", "choices", "shuffle"}


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in SET_ANNOTATIONS


class _SetTracker:
    """Local, flow-insensitive inference of set-typed names in one scope."""

    def __init__(self, scope: ast.AST) -> None:
        self.names: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if _annotation_is_set(arg.annotation):
                    self.names.add(arg.arg)
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and self.is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_is_set(node.annotation) or (
                    node.value is not None and self.is_set_expr(node.value)
                ):
                    self.names.add(node.target.id)

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SET_METHODS
                and self.is_set_expr(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return isinstance(node, ast.Name) and node.id in self.names


def _is_sorted_wrap(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("sorted", "min", "max", "sum", "len", "all", "any")
    )


def _contains_protocol_sink(body: Sequence[ast.stmt]) -> Optional[str]:
    """A send or RNG-sampling call anywhere under ``body``, or ``None``."""
    for statement in body:
        for node in ast.walk(statement):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name is None:
                continue
            if name.startswith("send"):
                return f"{name}(...)"
            if name in RNG_SAMPLING_ATTRS and isinstance(func, ast.Attribute):
                return f".{name}(...)"
    return None


@register_rule
class UnorderedIterationRule(Rule):
    """ATL003 — unordered-set iteration must not feed protocol decisions.

    ``set`` iteration order is unspecified (hash- and history-dependent),
    so any set whose elements flow into a send, an RNG draw, or a sampled
    subset makes the run depend on PYTHONHASHSEED.  Per scope, names are
    inferred as set-typed (literals, ``set()``/``frozenset()`` calls, set
    operators, ``Set[...]`` annotations); the rule flags

    * ``for``-loops and comprehensions iterating such a value when the
      loop body / comprehension contains a ``send*`` or RNG-sampling call,
    * set-typed arguments to ``rng.sample/choice/choices/shuffle``,
    * ``.pop()`` on a set-typed name (removes an *arbitrary* element),

    unless the iterable is wrapped in ``sorted(...)`` (or an
    order-insensitive reduction).  Pure local iteration that never reaches
    a protocol sink is deliberately not flagged.
    """

    rule_id = "ATL003"
    title = "unordered set iteration on a protocol path"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        seen: Set[Tuple[int, str]] = set()
        for scope in scopes:
            tracker = _SetTracker(scope)
            if not tracker.names and not any(
                isinstance(n, (ast.Set, ast.SetComp)) for n in ast.walk(scope)
            ):
                # No set-typed values in this scope at all: skip the walk.
                continue
            for finding in self._check_scope(module, scope, tracker):
                key = (finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding

    def _check_scope(
        self, module: ModuleInfo, scope: ast.AST, tracker: _SetTracker
    ) -> Iterator[Finding]:
        for node in ast.walk(scope):
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # nested scopes handled on their own pass
            if isinstance(node, ast.For):
                if tracker.is_set_expr(node.iter) and not _is_sorted_wrap(node.iter):
                    sink = _contains_protocol_sink(node.body)
                    if sink is not None:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"iterating an unordered set feeds {sink}; wrap the "
                            f"iterable in sorted(...)",
                        )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if tracker.is_set_expr(generator.iter) and not _is_sorted_wrap(
                        generator.iter
                    ):
                        wrapper = ast.Expr(value=node.elt)
                        sink = _contains_protocol_sink([wrapper])
                        if sink is not None:
                            yield self.finding(
                                module,
                                node.lineno,
                                f"comprehension over an unordered set feeds {sink}; "
                                f"wrap the iterable in sorted(...)",
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in RNG_SAMPLING_ATTRS
                    and node.args
                    and tracker.is_set_expr(node.args[0])
                    and not _is_sorted_wrap(node.args[0])
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"RNG .{func.attr}(...) over an unordered set draws in "
                        f"hash order; pass sorted(...) instead",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and not node.args
                    and isinstance(func.value, ast.Name)
                    and func.value.id in tracker.names
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"set.pop() on {func.value.id!r} removes an arbitrary "
                        f"element; pick deterministically",
                    )


# --------------------------------------------------------------------- ATL004

BLANKET_EXCEPTION_NAMES = {"Exception", "BaseException"}
#: Calls that count an error into observable state.  Recording a monitor
#: violation is deliberately NOT enough: the PR that introduced this rule
#: found a handler that recorded a violation yet swallowed the exception
#: outside fault replay (faults/invariants.py finalize).
COUNTING_CALL_ATTRS = {"increment", "observe"}


def _is_blanket(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in BLANKET_EXCEPTION_NAMES:
            return True
        if (
            isinstance(candidate, ast.Attribute)
            and candidate.attr in BLANKET_EXCEPTION_NAMES
        ):
            return True
    return False


def _handler_counts_or_raises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in COUNTING_CALL_ATTRS:
                return True
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Subscript):
            value = node.target.value
            if (
                isinstance(value, ast.Name) and value.id == "counters"
            ) or (isinstance(value, ast.Attribute) and value.attr == "counters"):
                return True
    return False


@register_rule
class SwallowedExceptionRule(Rule):
    """ATL004 — blanket excepts must count or re-raise, never swallow.

    A bare ``except:`` / ``except Exception:`` whose handler neither
    raises nor feeds an error counter silently converts protocol bugs
    into missing messages — PR 3 spent real debugging time on exactly
    this (swallowed ``MembershipError`` in the churn workload).  The
    handler satisfies the rule if it contains a ``raise``, a call to
    ``.increment(...)`` / ``.observe(...)`` / ``._violation(...)``, or a
    ``counters[...] += ...`` update.  Narrow excepts are not flagged.
    """

    rule_id = "ATL004"
    title = "blanket except neither re-raises nor counts"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_blanket(node) and not _handler_counts_or_raises(node):
                what = "bare except" if node.type is None else "except Exception"
                yield self.finding(
                    module,
                    node.lineno,
                    f"{what} swallows errors: re-raise or count via a metrics "
                    f"counter (the PR 3 swallowed-error class)",
                )


# --------------------------------------------------------------------- ATL005


@register_rule
class SlotsConsistencyRule(Rule):
    """ATL005 — every instance attribute of a slotted class is declared.

    For each class defining a literal ``__slots__`` whose full base chain
    is resolvable and slotted (inherited slots are folded in; a base with
    a ``__dict__`` slot, a dynamic ``__slots__`` or an external base
    disables the check), every ``self.<name> = ...`` in the class body
    must name a declared slot, a class-level attribute (descriptors,
    properties) or a method.  An undeclared write would raise
    ``AttributeError`` at runtime — on a hot path, typically in a branch
    the tests never reached.
    """

    rule_id = "ATL005"
    title = "attribute write not declared in __slots__"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        for cls in project.classes.values():
            if cls.module != module.module or cls.node is None:
                continue
            resolved = project.resolved_slots(module, cls)
            if resolved is None:
                continue
            allowed = set(resolved)
            for statement in cls.node.body:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    allowed.add(statement.name)
                elif isinstance(statement, ast.Assign):
                    allowed.update(
                        t.id for t in statement.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    allowed.add(statement.target.id)
            for method in cls.node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                args = method.args
                positional = [*args.posonlyargs, *args.args]
                if not positional or _is_staticmethod(method):
                    continue
                self_name = positional[0].arg
                for write_line, attr in _self_attribute_writes(method, self_name):
                    if attr not in allowed:
                        yield self.finding(
                            module,
                            write_line,
                            f"{cls.name}.{attr} assigned but not in __slots__ "
                            f"(declared: {', '.join(sorted(resolved))})",
                        )


def _is_staticmethod(method: ast.AST) -> bool:
    decorators = getattr(method, "decorator_list", [])
    return any(
        isinstance(d, ast.Name) and d.id == "staticmethod" for d in decorators
    )


def _self_attribute_writes(
    method: ast.AST, self_name: str
) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(method):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and (
            not isinstance(node, ast.AnnAssign) or node.value is not None
        ):
            targets = [node.target]
        for target in targets:
            elements = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for element in elements:
                if (
                    isinstance(element, ast.Attribute)
                    and isinstance(element.value, ast.Name)
                    and element.value.id == self_name
                ):
                    yield element.lineno, element.attr


# --------------------------------------------------------------------- ATL006

METRIC_CALL_ATTRS = {
    "increment": "counter",
    "counter": "counter",
    "observe": "histogram",
    "histogram": "histogram",
    "record_point": "series",
    "timeseries": "series",
}
METRIC_CONTAINER_ATTRS = {"counters": "counter", "histograms": "histogram", "series": "series"}


def iter_metric_name_literals(
    tree: ast.Module,
) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(line, kind, name)`` for every literal metric-name use.

    Matches the :class:`repro.sim.metrics.MetricsRegistry` API
    (``increment``/``observe``/``counter``/``histogram``/``record_point``/
    ``timeseries`` with a string-literal first argument) plus string
    subscripts on the registry's ``counters``/``histograms``/``series``
    containers (the hot-path idiom ``counters["stack.deliveries"] += 1``).
    Dynamic names (f-strings, variables) are invisible to this scan and
    are validated by their *read* sites instead.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            kind = METRIC_CALL_ATTRS.get(node.func.attr)
            if (
                kind is not None
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                yield node.lineno, kind, node.args[0].value
        elif isinstance(node, ast.Subscript):
            value = node.value
            container = None
            if isinstance(value, ast.Attribute):
                container = METRIC_CONTAINER_ATTRS.get(value.attr)
            elif isinstance(value, ast.Name):
                container = METRIC_CONTAINER_ATTRS.get(value.id)
            if container is None:
                continue
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                yield node.lineno, container, index.value


@register_rule
class MetricsRegistryRule(Rule):
    """ATL006 — metric name literals must exist in the generated registry.

    Every literal name passed to the metrics API must appear in
    :mod:`repro.lint.metrics_registry` (regenerate with ``python -m
    repro.lint --gen-metrics``).  A typo'd counter name otherwise splits a
    metric into two silently — the reader sums one and the writer bumps
    the other — and matrix-row columns read zeros forever.  Orphaned
    registry entries (names no longer used anywhere) are reported by the
    CLI's stale-registry check rather than per-module.
    """

    rule_id = "ATL006"
    title = "metric name literal not in the generated registry"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        from repro.lint.metrics_registry import METRICS

        for line, kind, name in iter_metric_name_literals(module.tree):
            if name not in METRICS:
                yield self.finding(
                    module,
                    line,
                    f"metric name {name!r} ({kind}) is not in the registry — "
                    f"typo, or regenerate with python -m repro.lint --gen-metrics",
                )


# --------------------------------------------------------------------- ATL007

MUTATING_METHOD_ATTRS = {
    "append",
    "add",
    "update",
    "extend",
    "remove",
    "discard",
    "clear",
    "pop",
    "popitem",
    "setdefault",
    "insert",
    "sort",
    "reverse",
}


@register_rule
class PostSendMutationRule(Rule):
    """ATL007 — never mutate an object after handing it to ``send*``.

    The coalesced fast path aliases payload objects into in-flight
    deliveries instead of copying them, so mutating a message after
    ``send(...)`` retroactively rewrites what the receiver will see.
    Within each straight-line block, every plain name passed to a call
    whose name starts with ``send`` is tracked; a later attribute/item
    assignment or mutating method call (``.append``, ``.update``,
    ``.pop``, ...) on that name in the same block chain is flagged.
    Rebinding the name clears the tracking; branch-local sends do not
    leak past their branch (CFG-lite, deliberately conservative).
    """

    rule_id = "ATL007"
    title = "payload mutated after being passed to send*"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        for scope in ast.walk(module.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_block(module, scope.body, {})

    def _check_block(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        sent: Dict[str, int],
    ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scope: analyzed on its own
            if _is_compound(statement):
                # Recurse with a copy: mutations inside the branch are
                # checked against sends dominating it, while sends inside
                # the branch never poison statements after it.
                for child_body in _child_blocks(statement):
                    yield from self._check_block(module, child_body, dict(sent))
                continue
            # 1. Flag mutations of already-sent names in this statement.
            yield from self._flag_mutations(module, statement, sent)
            # 2. Rebinding clears tracking.
            for name in _bound_names(statement):
                sent.pop(name, None)
            # 3. Record names passed to send* in this statement.
            for node in ast.walk(statement):
                if isinstance(node, ast.Call) and _call_name(node).startswith("send"):
                    for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                        if isinstance(arg, ast.Name):
                            sent.setdefault(arg.id, node.lineno)

    def _flag_mutations(
        self, module: ModuleInfo, statement: ast.stmt, sent: Dict[str, int]
    ) -> Iterator[Finding]:
        if not sent:
            return
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, ast.AugAssign):
            targets = [statement.target]
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name in sent:
                    yield self.finding(
                        module,
                        statement.lineno,
                        f"{name!r} mutated after being passed to send* on line "
                        f"{sent[name]} (post-send aliasing hazard)",
                    )
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHOD_ATTRS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in sent
            ):
                name = node.func.value.id
                yield self.finding(
                    module,
                    node.lineno,
                    f"{name!r}.{node.func.attr}(...) mutates a payload passed to "
                    f"send* on line {sent[name]} (post-send aliasing hazard)",
                )


def _is_compound(statement: ast.stmt) -> bool:
    return isinstance(
        statement,
        (ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith, ast.Try),
    )


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _bound_names(statement: ast.stmt) -> Iterator[str]:
    if isinstance(statement, ast.Assign):
        for target in statement.targets:
            elements = (
                target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            )
            for element in elements:
                if isinstance(element, ast.Name):
                    yield element.id
    elif isinstance(statement, ast.For) and isinstance(statement.target, ast.Name):
        yield statement.target.id


def _child_blocks(statement: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(statement, attr, None)
        if block and isinstance(block, list) and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(statement, "handlers", []) or []:
        yield handler.body


# --------------------------------------------------------------------- ATL008


@register_rule
class HashIdentityRule(Rule):
    """ATL008 — ``hash()`` / ``id()`` values never enter protocol state.

    ``hash(str)`` depends on PYTHONHASHSEED and ``id()`` on the allocator;
    a value derived from either that reaches an ordering key, an RNG seed
    or persisted protocol state varies across processes — the exact class
    of bug behind PR 2's hash-dependent gossip draws.  The rule flags
    *every* call to the builtins (the conservative choice: proving a use
    never orders anything is harder than justifying the rare legitimate
    identity-cache with a pragma).
    """

    rule_id = "ATL008"
    title = "hash()/id() value on a protocol path"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("hash", "id")
                and node.func.id not in module.import_aliases
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"builtin {node.func.id}() is PYTHONHASHSEED/address-"
                    f"dependent; derive ordering and seeds from stable digests "
                    f"(repro.crypto.digest) instead",
                )


# --------------------------------------------------------------------- ATL009

#: The one module that owns hook dispatch plumbing (exempt from ATL009).
MIDDLEWARE_HOME = "repro/core/middleware.py"

#: Bespoke wiring entry points retired by the middleware pipeline; any call
#: to one of these names is a resurrection of the pre-pipeline plumbing.
RETIRED_WIRING_CALLS = ("install_fault_injector", "clear_fault_injector")

#: Bespoke per-layer observer attributes retired by the middleware pipeline.
RETIRED_OBSERVER_ATTRS = ("delivery_observer", "accept_audit")

#: The middleware hook names (kept in sync with
#: :data:`repro.core.middleware.HOOK_NAMES`; hardcoded so the analyzer never
#: imports simulator code).
MIDDLEWARE_HOOK_NAMES = (
    "on_send",
    "on_deliver",
    "on_view_change",
    "on_eviction",
    "on_node_added",
    "on_node_left",
    "on_timer",
)


@register_rule
class DirectHookWiringRule(Rule):
    """ATL009 — observability hooks wire through ``repro.core.middleware``.

    Before the middleware pipeline, every observer hand-wired its own hook
    into a different layer, and each wiring point grew its own bugs: silent
    replacement on double install, observers dropped when ``deliver_fn``
    was reassigned, duplicate eviction notifications.  The rule flags the
    pre-pipeline patterns so they cannot creep back:

    * calls named ``install_fault_injector`` / ``clear_fault_injector``
      (the retired bespoke injector API);
    * assignments to an attribute named ``delivery_observer`` or
      ``accept_audit`` (the retired per-layer observer slots);
    * calls ``<receiver>.on_<hook>(...)`` for any middleware hook name,
      unless the receiver is bare ``self`` (an object invoking its *own*
      callback attribute is not pipeline wiring) — hook pipelines are
      dispatched through a chain's compiled tuples, never by calling a
      middleware's hook method directly;
    * an assignment to an attribute named ``deliver_fn`` whose right-hand
      side reads ``.deliver_fn`` (directly, or via a name earlier bound
      from a ``.deliver_fn`` read in the same module) — the wrap-chaining
      pattern that silently dropped observers on reassignment.  Apps that
      decorate delivery for *application* semantics carry a pragma.

    ``repro/core/middleware.py`` itself is exempt: that module is the
    sanctioned home of hook plumbing.
    """

    rule_id = "ATL009"
    title = "direct hook wiring outside repro.core.middleware"

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterable[Finding]:
        if module.relpath.endswith(MIDDLEWARE_HOME):
            return
        wrapped_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in RETIRED_WIRING_CALLS:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{name}(...) is the retired bespoke injector API — "
                        f"compose a repro.core.middleware.MiddlewareChain and "
                        f"install it on the cluster/network instead",
                    )
                elif name in MIDDLEWARE_HOOK_NAMES and isinstance(
                    node.func, ast.Attribute
                ):
                    receiver = node.func.value
                    if not (isinstance(receiver, ast.Name) and receiver.id == "self"):
                        yield self.finding(
                            module,
                            node.lineno,
                            f"direct call .{name}(...) invokes a middleware hook "
                            f"outside the pipeline — dispatch through the chain's "
                            f"compiled hooks (repro.core.middleware) instead",
                        )
            elif isinstance(node, ast.Assign):
                reads_deliver_fn = any(
                    (isinstance(sub, ast.Attribute) and sub.attr == "deliver_fn")
                    or (isinstance(sub, ast.Name) and sub.id in wrapped_names)
                    for sub in ast.walk(node.value)
                )
                if (
                    isinstance(node.value, ast.Attribute)
                    and node.value.attr == "deliver_fn"
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            wrapped_names.add(target.id)
                for target in node.targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr in RETIRED_OBSERVER_ATTRS:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"assignment to .{target.attr} resurrects a retired "
                            f"observer slot — add a Middleware with the matching "
                            f"hook to the scenario's chain instead",
                        )
                    elif target.attr == "deliver_fn" and reads_deliver_fn:
                        yield self.finding(
                            module,
                            node.lineno,
                            "deliver_fn wrap-chaining (RHS reads .deliver_fn) — "
                            "observers wired this way are dropped on the next "
                            "reassignment; use an on_deliver middleware instead",
                        )


__all__ = [
    "DirectRandomRule",
    "WallClockRule",
    "UnorderedIterationRule",
    "SwallowedExceptionRule",
    "SlotsConsistencyRule",
    "MetricsRegistryRule",
    "PostSendMutationRule",
    "HashIdentityRule",
    "DirectHookWiringRule",
    "iter_metric_name_literals",
]
