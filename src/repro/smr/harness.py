"""A harness that runs a set of SMR replicas as actors over the network.

The harness is used by unit/integration tests and by the latency benchmarks to
exercise the SMR engines in isolation (outside the full Atum stack), and it
doubles as the calibration tool that measures agreement latency as a function
of group size for the group-level cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Type

from repro.crypto.keys import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.actor import Actor
from repro.sim.simulator import Simulator
from repro.smr.base import Operation, SmrConfig, SmrReplica
from repro.smr.dolev_strong import SyncSmrReplica


class _ReplicaActor(Actor):
    """Wraps an SMR replica as a network actor."""

    def __init__(self, sim: Simulator, address: str) -> None:
        super().__init__(sim, address)
        self.replica: Optional[SmrReplica] = None
        self.decided: List[Operation] = []
        self.decide_times: Dict[str, float] = {}
        self.byzantine_silent = False

    def on_message(self, payload: Any, sender: str) -> None:
        if self.byzantine_silent or self.replica is None:
            return
        self.replica.on_message(payload, sender)

    def record_decision(self, operation: Operation) -> None:
        self.decided.append(operation)
        self.decide_times[operation.op_id] = self.sim.now


@dataclass
class ReplicaGroupHarness:
    """Builds a single replica group of a given size on a fresh simulator.

    Attributes:
        group_size: Number of replicas.
        replica_class: SMR engine to instantiate (Sync or PBFT).
        config: SMR configuration (round duration, timeouts, ...).
        seed: Master seed for the simulation.
        latency_model: Optional network latency model.
        silent_byzantine: Addresses behaving as silent Byzantine replicas
            (they receive nothing and send nothing).
    """

    group_size: int
    replica_class: Type[SmrReplica] = SyncSmrReplica
    config: SmrConfig = field(default_factory=SmrConfig)
    seed: int = 0
    latency_model: Optional[LatencyModel] = None
    silent_byzantine: Sequence[str] = ()

    def __post_init__(self) -> None:
        self.sim = Simulator(seed=self.seed)
        self.network = Network(self.sim, latency_model=self.latency_model, config=NetworkConfig())
        self.registry = KeyRegistry()
        self.addresses = [f"replica-{index}" for index in range(self.group_size)]
        self.actors: Dict[str, _ReplicaActor] = {}
        for address in self.addresses:
            actor = _ReplicaActor(self.sim, address)
            self.actors[address] = actor
            self.network.register(actor)
            self.registry.generate(address)
        for address in self.addresses:
            actor = self.actors[address]
            replica = self.replica_class(
                sim=self.sim,
                node_id=address,
                members=self.addresses,
                registry=self.registry,
                send_fn=self._make_send(address),
                decide_fn=actor.record_decision,
                config=self.config,
            )
            actor.replica = replica
            if address in self.silent_byzantine:
                actor.byzantine_silent = True
                replica.stop()

    def _make_send(self, sender: str) -> Callable[[str, Any, int], None]:
        def send(peer: str, payload: Any, size_bytes: int) -> None:
            if self.actors[sender].byzantine_silent:
                return
            self.network.send(sender, peer, payload, size_bytes)
        return send

    # ------------------------------------------------------------------- runs

    def propose(self, proposer: str, kind: str, body: Any, op_id: Optional[str] = None) -> Operation:
        """Submit an operation through the given proposer replica."""
        operation = Operation(
            kind=kind,
            body=body,
            proposer=proposer,
            op_id=op_id or f"{proposer}-op-{self.sim.processed_events}-{len(self.actors[proposer].decided)}",
        )
        replica = self.actors[proposer].replica
        assert replica is not None
        replica.propose(operation)
        return operation

    def run(self, until: Optional[float] = None, max_events: int = 2_000_000) -> float:
        return self.sim.run(until=until, max_events=max_events)

    # ---------------------------------------------------------------- analysis

    def correct_actors(self) -> List[_ReplicaActor]:
        return [
            actor for actor in self.actors.values() if not actor.byzantine_silent
        ]

    def decided_logs(self) -> List[List[str]]:
        """Return decided op-id logs of all correct replicas."""
        return [[op.op_id for op in actor.decided] for actor in self.correct_actors()]

    def agreement_violations(self, require_equality: bool = False) -> List[str]:
        """Agreement-invariant check: correct logs must be prefix-consistent.

        Delegates to :func:`repro.faults.invariants.check_agreement_logs`;
        an empty list means every pair of correct replicas decided the same
        operations in the same order (lagging replicas allowed, diverging
        ones are a safety violation).  With ``require_equality`` (used when
        PBFT checkpoint/state transfer is enabled) lagging is a violation
        too: every pair of correct logs must be *equal*.
        """
        from repro.faults.invariants import check_agreement_logs

        return check_agreement_logs(self.decided_logs(), require_equality=require_equality)

    def all_correct_decided(self, op_id: str) -> bool:
        return all(
            op_id in {op.op_id for op in actor.decided} for actor in self.correct_actors()
        )

    def decision_latency(self, op_id: str, proposed_at: float = 0.0) -> float:
        """Latency until the last correct replica decided ``op_id``."""
        times = [
            actor.decide_times[op_id]
            for actor in self.correct_actors()
            if op_id in actor.decide_times
        ]
        if not times:
            raise ValueError(f"operation {op_id} was not decided by any correct replica")
        return max(times) - proposed_at


__all__ = ["ReplicaGroupHarness"]
