"""ATL007: payload mutation after being handed to send*."""

from lint_utils import lint_fixture, rules_of


def test_flags_method_mutation_item_write_and_branch_dominated_send():
    findings = lint_fixture("atl007_bad.py", rules=["ATL007"])
    assert rules_of(findings) == ["ATL007", "ATL007", "ATL007"]
    messages = "\n".join(f.message for f in findings)
    assert "'payload'.append" in messages
    assert "'message' mutated" in messages  # subscript write after send_direct
    assert "'payload'.clear" in messages  # send dominating inside one branch


def test_copies_rebinds_branch_locality_and_pragma_pass():
    assert lint_fixture("atl007_ok.py") == []
