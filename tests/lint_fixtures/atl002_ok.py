"""ATL002 fixture: wall-clock reads suppressed with reasons."""

import time


def stamp():
    started = time.time()  # atumlint: allow[ATL002] fixture: measures real elapsed seconds by design
    # atumlint: allow[ATL002] fixture: host-speed probe, never feeds sim time
    tick = time.perf_counter()
    return started, tick
