"""ATL004 fixture: blanket excepts that neither re-raise nor count."""


def swallow(action):
    try:
        action()
    except Exception:
        pass


def bare(action):
    try:
        action()
    except:  # noqa: E722
        return None
