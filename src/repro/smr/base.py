"""Common interface of the SMR engines used inside volatile groups."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.crypto.keys import KeyRegistry
from repro.sim.simulator import Simulator


def sync_fault_threshold(group_size: int) -> int:
    """Faults tolerated by the synchronous engine: ``f = (g - 1) // 2``."""
    return max(0, (group_size - 1) // 2)


def async_fault_threshold(group_size: int) -> int:
    """Faults tolerated by the asynchronous engine: ``f = (g - 1) // 3``."""
    return max(0, (group_size - 1) // 3)


@dataclass(frozen=True)
class Operation:
    """An operation submitted to the replicated state machine.

    Attributes:
        kind: Operation type (e.g. ``"broadcast"``, ``"join"``, ``"leave"``,
            ``"reconfigure"``); interpreted by the group layer.
        body: Operation payload.
        proposer: Address of the node that submitted the operation.
        op_id: Unique identifier assigned by the proposer.
    """

    kind: str
    body: Any
    proposer: str
    op_id: str


@dataclass
class SmrConfig:
    """Configuration shared by the SMR engines.

    Attributes:
        round_duration: Length of a synchronous round in seconds (Sync only).
        request_timeout: View-change timeout in seconds (Async only).
        message_bytes: Nominal size of a protocol message for the network model.
        max_instances: Safety valve on concurrently active instances.
        checkpoint_interval: Decided operations between PBFT checkpoints
            (the low/high water mark distance); ``0`` disables checkpointing
            and state transfer entirely — the default, so legacy runs stay
            byte-identical (Async only; see :mod:`repro.smr.checkpoint`).
        checkpoint_announce_period: Interval of the stable-checkpoint
            announce timer (the liveness path for replicas that were cut
            off while the checkpoint formed).
        adaptive_quarantine: Forwarded into the checkpoint manager's
            :class:`repro.net.requests.RequestPolicy`: when True, the
            responder scoreboard's quarantine threshold adapts to the
            observed per-window fault rate (hostile tightens, quiet
            relaxes).  Off by default so legacy runs stay byte-identical.

    State-transfer retry timing is no longer a fixed constant here: it
    lives in :class:`repro.net.requests.RequestPolicy` (rotation,
    seeded-jitter exponential backoff, responder scoreboard), owned by
    :class:`repro.smr.checkpoint.CheckpointManager`.
    """

    round_duration: float = 1.0
    request_timeout: float = 2.0
    message_bytes: int = 512
    max_instances: int = 10_000
    checkpoint_interval: int = 0
    checkpoint_announce_period: float = 2.0
    adaptive_quarantine: bool = False


class SmrReplica(abc.ABC):
    """One replica of a BFT state machine, embedded in a host node.

    The replica does not talk to the network directly; the host wires it up by
    providing ``send_fn(peer, payload, size_bytes)`` for outgoing protocol
    messages and receives decided operations through ``decide_fn(operation)``.
    Decided operations are delivered in the same order at every correct
    replica of the group.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        members: Sequence[str],
        registry: KeyRegistry,
        send_fn: Callable[[str, Any, int], None],
        decide_fn: Callable[[Operation], None],
        config: Optional[SmrConfig] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.members: List[str] = list(members)
        self.registry = registry
        self.send_fn = send_fn
        self.decide_fn = decide_fn
        self.config = config or SmrConfig()
        self.decided_log: List[Operation] = []
        self.running = True

    #: Optional checkpoint/state-transfer manager (PBFT only, and only when
    #: ``SmrConfig.checkpoint_interval > 0``); see :mod:`repro.smr.checkpoint`.
    checkpoints = None

    # ----------------------------------------------------------------- queries

    @property
    def group_size(self) -> int:
        return len(self.members)

    def stable_checkpoint_seq(self) -> Optional[int]:
        """Decided-op count of the stable checkpoint (``None`` if unsupported).

        Engines without checkpointing return ``None``; a checkpointing PBFT
        replica returns ``0`` until its first certificate forms.  Anti-entropy
        summaries advertise this so stalled co-replicas discover log gaps
        without waiting for a view change.
        """
        manager = self.checkpoints
        return manager.stable_seq if manager is not None else None

    @property
    @abc.abstractmethod
    def fault_threshold(self) -> int:
        """Number of Byzantine replicas this engine tolerates at this size."""

    def quorum_size(self) -> int:
        """Votes needed to accept a group-level statement (simple majority)."""
        return len(self.members) // 2 + 1

    def other_members(self) -> List[str]:
        return [member for member in self.members if member != self.node_id]

    # -------------------------------------------------------------------- API

    @abc.abstractmethod
    def propose(self, operation: Operation) -> None:
        """Submit an operation for agreement."""

    def repropose(self, operation: Operation) -> None:
        """Re-submit a previously decided operation for a fresh agreement.

        Used by anti-entropy repair: re-deciding an operation re-delivers
        it to group members that missed the original decision.  The base
        implementation just proposes again; engines that dedup executed
        operations (PBFT) override this to bypass that dedup.
        """
        self.propose(operation)

    @abc.abstractmethod
    def on_message(self, payload: Any, sender: str) -> None:
        """Handle an SMR protocol message from a group peer."""

    def reconfigure(
        self,
        new_members: Sequence[str],
        epoch: Optional[int] = None,
        carry_certificates: bool = True,
    ) -> None:
        """Install a new membership (SMART-style epoch change).

        Engines override this to reset in-flight state; the base implementation
        just replaces the member list.  ``epoch``, when given, is the
        group-synchronized epoch number to adopt (the vgroup view's epoch) —
        without it, epoch-aware engines fall back to a local ``+1`` counter,
        which diverges across co-members whose replicas lived through a
        different number of views.  ``carry_certificates=False`` tells
        checkpoint-capable engines the replica was re-homed into a *different*
        group, so the outgoing epoch's certificates must die rather than be
        re-anchored into a group they never described.
        """
        self.members = list(new_members)

    def stop(self) -> None:
        """Stop participating (the host node left the group or the system)."""
        self.running = False

    # ----------------------------------------------------------------- helpers

    def _commit(self, operation: Operation) -> None:
        """Append to the decided log and notify the host."""
        self.decided_log.append(operation)
        self.sim.metrics.increment("smr.decided")
        self.decide_fn(operation)

    def _broadcast(self, payload: Any, size_bytes: Optional[int] = None) -> None:
        size = size_bytes if size_bytes is not None else self.config.message_bytes
        for member in self.members:
            if member != self.node_id:
                self.send_fn(member, payload, size)


__all__ = [
    "Operation",
    "SmrConfig",
    "SmrReplica",
    "sync_fault_threshold",
    "async_fault_threshold",
]
