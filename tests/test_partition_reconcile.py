"""Golden-trace-style coverage of partition-heal reconciliation.

A 40-node system is split into two interleaved, internally-connected sides
(every vgroup straddles the cut), broadcasts originate on both sides while
the split holds, and the split heals mid-run with anti-entropy enabled.
The tests assert, for BOTH engines (Sync/Dolev-Strong and Async/PBFT):

* the whole reconcile schedule replays byte-identically — two runs produce
  the same ``(time, tag)`` event trace and the same counters;
* every broadcast reconciles to full delivery after the heal;
* no agreement invariant breaks (``agreement_violations() == 0`` at the
  harness level, and the invariant monitor stays clean at the cluster
  level; PBFT decided logs are additionally prefix-consistent per vgroup).
"""

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind
from repro.faults import FaultPlan, InvariantMonitor, Partition, apply_plan
from repro.faults.invariants import check_agreement_logs, cluster_smr_logs
from repro.group.antientropy import AntiEntropyConfig
from repro.smr.dolev_strong import SyncSmrReplica
from repro.smr.harness import ReplicaGroupHarness
from repro.smr.pbft import PbftReplica

NODES = 40
SPLIT_AT = 0.6
HEAL_AT = 6.0
HORIZON = 45.0


def run_reconcile(smr_kind: SmrKind, seed: int = 77, checkpoint_interval: int = 0):
    """One seeded 40-node split-and-reconcile run; returns its artefacts."""
    params = AtumParameters(
        hc=3,
        rwl=5,
        gmax=8,
        gmin=4,
        round_duration=0.5,
        smr_kind=smr_kind,
        checkpoint_interval=checkpoint_interval,
    )
    cluster = AtumCluster(params, seed=seed, antientropy=AntiEntropyConfig())
    monitor = InvariantMonitor()
    cluster.attach_monitor(monitor)
    addresses = [f"n{i}" for i in range(NODES)]
    cluster.build_static(addresses)
    ordered = sorted(addresses)
    side_a, side_b = tuple(ordered[0::2]), tuple(ordered[1::2])
    plan = FaultPlan(
        partitions=(Partition(sides=(side_a, side_b), start=SPLIT_AT, heal_at=HEAL_AT),)
    )
    apply_plan(cluster, plan, monitor=monitor)
    ids = {}
    for index, (when, origin) in enumerate(
        [(1.0, side_a[0]), (1.5, side_b[0]), (2.0, side_a[1]), (8.0, side_b[1])]
    ):
        cluster.sim.schedule(
            when,
            lambda origin=origin, index=index: ids.setdefault(
                index, cluster.broadcast(origin, {"reconcile": index})
            ),
            tag="reconcile.bcast",
        )
    trace = []
    cluster.sim.run(until=HORIZON, trace=trace)
    return cluster, monitor, ids, trace


class TestReconcileGolden:
    @pytest.mark.parametrize("smr_kind", [SmrKind.SYNC, SmrKind.ASYNC])
    def test_reconcile_schedule_replays_byte_identically(self, smr_kind):
        first_cluster, _, _, first_trace = run_reconcile(smr_kind)
        second_cluster, _, _, second_trace = run_reconcile(smr_kind)
        assert first_trace == second_trace
        assert dict(first_cluster.sim.metrics.counters) == dict(
            second_cluster.sim.metrics.counters
        )

    @pytest.mark.parametrize("smr_kind", [SmrKind.SYNC, SmrKind.ASYNC])
    def test_all_broadcasts_reconcile_to_full_delivery(self, smr_kind):
        cluster, monitor, ids, _ = run_reconcile(smr_kind)
        assert len(ids) == 4
        for bcast_id in ids.values():
            assert cluster.delivery_fraction(bcast_id) == 1.0, bcast_id
        # Repair actually happened (this was divergence, not luck).
        assert cluster.sim.metrics.counter("ae.shares_resent") > 0
        monitor.finalize()
        monitor.assert_clean()

    def test_pbft_logs_prefix_consistent_across_heal(self):
        cluster, monitor, _, _ = run_reconcile(SmrKind.ASYNC)
        logs = cluster_smr_logs(cluster)
        assert logs
        for group_id, group_logs in logs.items():
            assert check_agreement_logs(group_logs) == [], group_id
        monitor.check_smr_prefix_consistency(cluster)
        monitor.finalize()
        monitor.assert_clean()


class TestCheckpointedReconcileGolden:
    """The 40-node split with PBFT checkpointing + state transfer enabled.

    The same fault schedule as :class:`TestReconcileGolden`, but the bar
    rises from prefix consistency to per-vgroup log *equality*: checkpoint
    announces and state transfer must close every replica's gap, and the
    whole run — recovery machinery included — must replay byte-identically.
    Checkpointing stays off by default, so the legacy goldens above (and
    the stored golden traces) are unaffected.
    """

    def test_checkpointed_run_replays_byte_identically(self):
        first_cluster, _, _, first_trace = run_reconcile(
            SmrKind.ASYNC, checkpoint_interval=2
        )
        second_cluster, _, _, second_trace = run_reconcile(
            SmrKind.ASYNC, checkpoint_interval=2
        )
        assert first_trace == second_trace
        assert dict(first_cluster.sim.metrics.counters) == dict(
            second_cluster.sim.metrics.counters
        )

    def test_checkpointed_run_differs_from_legacy_but_default_stays_off(self):
        _, _, _, legacy_trace = run_reconcile(SmrKind.ASYNC)
        _, _, _, checkpointed_trace = run_reconcile(SmrKind.ASYNC, checkpoint_interval=2)
        # Checkpointing schedules real extra protocol events...
        assert checkpointed_trace != legacy_trace
        # ...and a fresh default run still matches the legacy schedule
        # exactly (interval 0 installs nothing).
        _, _, _, default_trace = run_reconcile(SmrKind.ASYNC)
        assert default_trace == legacy_trace

    def test_checkpointed_run_reaches_log_equality_and_full_delivery(self):
        cluster, monitor, ids, _ = run_reconcile(SmrKind.ASYNC, checkpoint_interval=2)
        assert len(ids) == 4
        for bcast_id in ids.values():
            assert cluster.delivery_fraction(bcast_id) == 1.0, bcast_id
        logs = cluster_smr_logs(cluster)
        assert logs
        for group_id, group_logs in logs.items():
            assert check_agreement_logs(group_logs, require_equality=True) == [], group_id
        monitor.check_smr_prefix_consistency(cluster, require_equality=True)
        monitor.finalize()
        monitor.assert_clean()
        # Every vgroup's members agree on a stable checkpoint seq too.
        checkpoints = cluster.smr_stable_checkpoints()
        assert checkpoints
        for group_id, per_member in checkpoints.items():
            assert len(set(per_member.values())) == 1, (group_id, per_member)


class TestHarnessAgreementUnderSplit:
    """``agreement_violations() == 0`` for both engines around a split."""

    def test_sync_logs_stay_prefix_consistent_when_one_side_proposes(self):
        harness = ReplicaGroupHarness(group_size=6, replica_class=SyncSmrReplica, seed=5)
        majority = harness.addresses[:4]
        minority = harness.addresses[4:]
        harness.propose("replica-0", "noop", {"pre": 1}, op_id="pre")
        harness.run(until=5.0)
        split_id = harness.network.split([majority, minority])
        harness.propose("replica-0", "noop", {"mid": 1}, op_id="mid")
        harness.run(until=10.0)
        harness.network.merge(split_id)
        harness.run(until=15.0)
        # The cut minority lags (it can never recover missed instances on
        # its own) but must not diverge.
        assert harness.agreement_violations() == []
        assert harness.all_correct_decided("pre")

    def test_pbft_view_change_carries_decisions_across_heal(self):
        harness = ReplicaGroupHarness(group_size=4, replica_class=PbftReplica, seed=7)
        quorum_side = harness.addresses[:3]
        cut_side = harness.addresses[3:]
        harness.propose("replica-0", "noop", {"pre": 1}, op_id="pre")
        harness.run(until=5.0)
        split_id = harness.network.split([quorum_side, cut_side])
        # Decided by the quorum side while replica-3 is cut off...
        harness.propose("replica-0", "noop", {"mid": 1}, op_id="mid")
        harness.run(until=10.0)
        # ...and pending on the cut side, forcing a view change after heal.
        harness.propose("replica-3", "noop", {"from-cut": 1}, op_id="from-cut")
        harness.run(until=14.0)
        harness.network.merge(split_id)
        harness.run(until=40.0)
        assert harness.agreement_violations() == []
        # The strengthened view change re-proposes prepared operations, so
        # the cut replica catches up on everything, in order.
        for op_id in ("pre", "mid", "from-cut"):
            assert harness.all_correct_decided(op_id), op_id

    def test_pbft_repropose_bypasses_executed_dedup_without_redelivery(self):
        from repro.smr.base import Operation

        harness = ReplicaGroupHarness(group_size=3, replica_class=PbftReplica, seed=9)
        harness.propose("replica-0", "noop", {"v": 1}, op_id="x")
        harness.run(until=5.0)
        assert harness.all_correct_decided("x")
        decided_before = [len(actor.decided) for actor in harness.correct_actors()]
        primary = harness.actors["replica-0"].replica
        seq_before = primary.next_seq
        # A non-primary holder re-proposes the already-executed operation
        # (the anti-entropy intra-group repair path): the request must not
        # be dropped on the executed-op dedup...
        harness.actors["replica-2"].replica.repropose(
            Operation(kind="noop", body={"v": 1}, proposer="replica-2", op_id="x")
        )
        harness.run(until=12.0)
        assert primary.next_seq > seq_before  # a fresh slot was agreed on
        # ...yet nobody re-delivers, and no view change spins on the
        # re-proposal's pending entry.
        assert [len(actor.decided) for actor in harness.correct_actors()] == decided_before
        assert harness.agreement_violations() == []
        assert all(
            not actor.replica._pending_requests for actor in harness.correct_actors()
        )
