"""Named RNG streams (repro.sim.rng.named_stream) and their call sites.

The ATL001 cleanup routed every default RNG in analysis/workload helpers
through named seeded streams.  These tests pin two properties: a named
stream is byte-identical to the ``random.Random(derive_seed(...))``
construction it replaced (so golden traces and FAULT_MATRIX.json rows
cannot move), and the refactored default arguments are deterministic
across calls and processes.
"""

import random

from repro.analysis.robustness import monte_carlo_vgroup_failure
from repro.group.vgroup import VGroupView
from repro.sim.rng import derive_seed, named_stream
from repro.workloads.byzantine import select_byzantine, select_byzantine_per_group


class TestNamedStream:
    def test_matches_the_construction_it_replaced(self):
        # scenarios.py used random.Random(derive_seed(seed, f"faults.select:{name}"));
        # the named_stream form must draw the identical sequence.
        old = random.Random(derive_seed(7, "faults.select:crash_minority"))
        new = named_stream("faults.select:crash_minority", master_seed=7)
        assert [old.random() for _ in range(32)] == [new.random() for _ in range(32)]

    def test_default_master_seed_is_zero(self):
        assert named_stream("x").random() == named_stream("x", master_seed=0).random()

    def test_distinct_names_give_distinct_streams(self):
        assert named_stream("a").random() != named_stream("b").random()


class TestDefaultStreamDeterminism:
    def test_select_byzantine_default_rng_is_reproducible(self):
        addresses = [f"n{i}" for i in range(40)]
        first = select_byzantine(addresses, count=7)
        second = select_byzantine(addresses, count=7)
        assert first == second
        explicit = select_byzantine(
            addresses, count=7, rng=named_stream("workloads.byzantine.select")
        )
        assert first == explicit

    def test_select_per_group_default_rng_is_reproducible(self):
        views = [
            VGroupView(group_id=f"g{i}", members=tuple(f"n{i}_{j}" for j in range(7)))
            for i in range(4)
        ]
        first = select_byzantine_per_group(views, fraction=0.3)
        second = select_byzantine_per_group(views, fraction=0.3)
        assert first == second and first

    def test_monte_carlo_default_rng_is_reproducible(self):
        first = monte_carlo_vgroup_failure(8, 0.2, trials=2000)
        second = monte_carlo_vgroup_failure(8, 0.2, trials=2000)
        assert first == second
