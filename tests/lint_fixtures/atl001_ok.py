"""ATL001 fixture: the same direct random use, suppressed with reasons."""

import random


def draw():
    # atumlint: allow[ATL001] fixture: exploratory path, byte-reproducibility not required
    rng = random.Random(42)
    seeded = random.Random(7)  # atumlint: allow[ATL001] fixture: inline pragma form
    return rng.random() + seeded.random()
