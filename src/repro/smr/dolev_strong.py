"""Synchronous SMR built on the Dolev-Strong authenticated broadcast.

This is the engine of the paper's *Sync* implementation.  Time is divided into
rounds of fixed duration (1 s or 1.5 s in the paper's experiments).  A sender
broadcasts a value by signing it and sending it to every group member; in each
subsequent round, members relay newly accepted values with their own signature
appended.  After ``f + 1`` rounds every correct member has accepted the same
set of values: if exactly one value was accepted, it is decided, otherwise the
sender was faulty and a default (``None``) decision is produced.

The SMR layer sequences Dolev-Strong instances: every proposed
:class:`~repro.smr.base.Operation` runs its own broadcast instance, and
finished instances are applied in a deterministic order at round boundaries,
so every correct replica observes the same decided log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.keys import KeyRegistry, Signature
from repro.crypto.digest import digest_object
from repro.sim.simulator import Simulator
from repro.smr.base import Operation, SmrConfig, SmrReplica, sync_fault_threshold


@dataclass
class DolevStrongMessage:
    """A relay message of one Dolev-Strong instance."""

    instance_id: str
    sender_of_instance: str
    start_round: int
    value: Any
    signatures: Tuple[Signature, ...]

    @property
    def chain_length(self) -> int:
        return len(self.signatures)


@dataclass
class DolevStrongInstance:
    """Per-replica state of a single Dolev-Strong broadcast instance."""

    instance_id: str
    sender: str
    start_round: int
    fault_threshold: int
    accepted: Dict[str, Any] = field(default_factory=dict)   # digest -> value
    relayed: set = field(default_factory=set)                 # digests relayed
    decided: bool = False
    decision: Any = None

    @property
    def final_round(self) -> int:
        """Round at whose boundary the instance decides (start + f + 1)."""
        return self.start_round + self.fault_threshold + 1

    def decide(self) -> Any:
        """Produce the decision once the final round has been reached."""
        self.decided = True
        if len(self.accepted) == 1:
            self.decision = next(iter(self.accepted.values()))
        else:
            # Zero accepted values: the sender never sent anything we could
            # validate.  More than one: the sender equivocated.  Either way the
            # sender is faulty and all correct replicas agree on the default.
            self.decision = None
        return self.decision


class SyncSmrReplica(SmrReplica):
    """Round-based synchronous BFT SMR replica (Dolev-Strong based)."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        members: Sequence[str],
        registry: KeyRegistry,
        send_fn: Callable[[str, Any, int], None],
        decide_fn: Callable[[Operation], None],
        config: Optional[SmrConfig] = None,
    ) -> None:
        super().__init__(sim, node_id, members, registry, send_fn, decide_fn, config)
        self._instances: Dict[str, DolevStrongInstance] = {}
        self._operations: Dict[str, Operation] = {}
        self._pending_proposals: List[Operation] = []
        self._decided_instances: set = set()
        self._proposal_counter = 0
        self._round_timer_armed = False

    # ------------------------------------------------------------------ rounds

    @property
    def current_round(self) -> int:
        """The index of the current synchronous round (global round clock)."""
        return int(self.sim.now / self.config.round_duration)

    def _next_round_boundary(self) -> float:
        round_duration = self.config.round_duration
        return (self.current_round + 1) * round_duration

    def _has_pending_work(self) -> bool:
        if self._pending_proposals:
            return True
        return any(not instance.decided for instance in self._instances.values())

    def _ensure_round_timer(self) -> None:
        """Arm the round-boundary timer if there is work and it is not armed.

        The timer is only kept alive while instances are in flight so that an
        idle replica does not keep the simulation event queue busy forever.
        """
        if not self.running or self._round_timer_armed:
            return
        if not self._has_pending_work():
            return
        self._round_timer_armed = True
        delay = max(1e-9, self._next_round_boundary() - self.sim.now)
        self.sim.schedule(delay, self._on_round_boundary, tag=f"{self.node_id}:round")

    def _on_round_boundary(self) -> None:
        self._round_timer_armed = False
        if not self.running:
            return
        self._start_pending_proposals()
        self._finalize_due_instances()
        self._ensure_round_timer()

    # --------------------------------------------------------------------- API

    @property
    def fault_threshold(self) -> int:
        return sync_fault_threshold(len(self.members))

    def propose(self, operation: Operation) -> None:
        """Queue an operation; its broadcast instance starts at the next round."""
        if not self.running:
            return
        self._pending_proposals.append(operation)
        self._ensure_round_timer()

    def on_message(self, payload: Any, sender: str) -> None:
        if not self.running or not isinstance(payload, DolevStrongMessage):
            return
        self._handle_relay(payload, sender)
        self._ensure_round_timer()

    def reconfigure(
        self,
        new_members: Sequence[str],
        epoch: Optional[int] = None,
        carry_certificates: bool = True,
    ) -> None:
        super().reconfigure(new_members, epoch=epoch, carry_certificates=carry_certificates)
        # In-flight instances continue with the old signer set; new instances
        # use the new membership.  This mirrors epoch-based reconfiguration.
        # The synchronous engine has no epoch-scoped certificates, so both
        # keyword arguments are accepted for interface parity and ignored.

    # ----------------------------------------------------------------- proposing

    def _start_pending_proposals(self) -> None:
        proposals, self._pending_proposals = self._pending_proposals, []
        for operation in proposals:
            self._start_instance(operation)

    def _start_instance(self, operation: Operation) -> None:
        self._proposal_counter += 1
        instance_id = f"{self.node_id}/{operation.op_id}/{self._proposal_counter}"
        start_round = self.current_round
        instance = DolevStrongInstance(
            instance_id=instance_id,
            sender=self.node_id,
            start_round=start_round,
            fault_threshold=self.fault_threshold,
        )
        self._instances[instance_id] = instance
        self._operations[instance_id] = operation
        value = {"operation_digest": digest_object(operation), "op": operation}
        digest = digest_object(value)
        instance.accepted[digest] = value
        instance.relayed.add(digest)
        signature = self.registry.sign(self.node_id, (instance_id, digest))
        message = DolevStrongMessage(
            instance_id=instance_id,
            sender_of_instance=self.node_id,
            start_round=start_round,
            value=value,
            signatures=(signature,),
        )
        self._broadcast(message)
        self.sim.metrics.increment("smr.sync.instances_started")

    # ------------------------------------------------------------------ relaying

    def _valid_signature_chain(self, message: DolevStrongMessage) -> bool:
        """Check the signature chain: starts at the sender, distinct signers."""
        if not message.signatures:
            return False
        if message.signatures[0].signer != message.sender_of_instance:
            return False
        signers = [signature.signer for signature in message.signatures]
        if len(set(signers)) != len(signers):
            return False
        digest = digest_object(message.value)
        statement = (message.instance_id, digest)
        for signature in message.signatures:
            if not self.registry.verify(signature, statement):
                return False
        return True

    def _handle_relay(self, message: DolevStrongMessage, sender: str) -> None:
        if not self._valid_signature_chain(message):
            self.sim.metrics.increment("smr.sync.invalid_chain")
            return
        instance = self._instances.get(message.instance_id)
        if instance is None:
            instance = DolevStrongInstance(
                instance_id=message.instance_id,
                sender=message.sender_of_instance,
                start_round=message.start_round,
                fault_threshold=self.fault_threshold,
            )
            self._instances[message.instance_id] = instance
        if instance.decided:
            return
        digest = digest_object(message.value)
        if digest not in instance.accepted:
            instance.accepted[digest] = message.value
        if digest in instance.relayed:
            return
        instance.relayed.add(digest)
        # Relay with our signature appended, unless the chain is already long
        # enough that everyone will have accepted by the final round.
        if message.chain_length <= instance.fault_threshold:
            statement = (message.instance_id, digest)
            own_signature = self.registry.sign(self.node_id, statement)
            relay = DolevStrongMessage(
                instance_id=message.instance_id,
                sender_of_instance=message.sender_of_instance,
                start_round=message.start_round,
                value=message.value,
                signatures=message.signatures + (own_signature,),
            )
            self._broadcast(relay)
            self.sim.metrics.increment("smr.sync.relays")

    # ---------------------------------------------------------------- decisions

    def _finalize_due_instances(self) -> None:
        current = self.current_round
        due: List[DolevStrongInstance] = [
            instance
            for instance in self._instances.values()
            if not instance.decided and current >= instance.final_round
        ]
        # Deterministic application order: by (start round, instance id).
        due.sort(key=lambda instance: (instance.start_round, instance.instance_id))
        for instance in due:
            decision = instance.decide()
            self._decided_instances.add(instance.instance_id)
            if decision is None:
                self.sim.metrics.increment("smr.sync.null_decisions")
                continue
            operation = decision.get("op")
            if isinstance(operation, Operation):
                self._commit(operation)

    # ------------------------------------------------------------------ queries

    def instance_count(self) -> int:
        return len(self._instances)


__all__ = ["DolevStrongMessage", "DolevStrongInstance", "SyncSmrReplica"]
