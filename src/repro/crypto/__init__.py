"""Cryptographic substrate.

The paper assumes public-key signatures, MACs and a collision-resistant hash
(SHA-2).  Inside the simulation we use real SHA-256 for digests and a keyed
HMAC construction, mediated by a :class:`KeyRegistry`, to stand in for
public-key signatures: only the key registry can produce a node's signature,
and any holder of the registry can verify it.  This preserves the property the
protocols rely on (a Byzantine node cannot forge another node's signature)
without the cost of real asymmetric cryptography, whose CPU cost is instead
charged to simulated time via :class:`CryptoCostModel`.
"""

from repro.crypto.digest import (
    Digest,
    DIGEST_MODE_COST_ONLY,
    DIGEST_MODE_REAL,
    digest_bytes,
    digest_mode,
    digest_object,
    get_digest_mode,
    set_digest_mode,
)
from repro.crypto.keys import KeyPair, KeyRegistry, Signature, SignatureError
from repro.crypto.certificates import WalkCertificate, CertificateChain
from repro.crypto.cost import CryptoCostModel

__all__ = [
    "digest_bytes",
    "digest_object",
    "digest_mode",
    "get_digest_mode",
    "set_digest_mode",
    "DIGEST_MODE_REAL",
    "DIGEST_MODE_COST_ONLY",
    "Digest",
    "KeyPair",
    "KeyRegistry",
    "Signature",
    "SignatureError",
    "WalkCertificate",
    "CertificateChain",
    "CryptoCostModel",
]
