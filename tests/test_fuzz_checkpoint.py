"""Seeded fuzz/forgery tests for checkpoint and state-transfer frames.

A lagging PBFT replica is the natural target of checkpoint forgery: if any
malformed certificate or tampered state snapshot were installed, a single
Byzantine co-replica could rewrite a correct replica's decided log.  These
tests cut one replica off, decide operations behind its back, and then feed
it hand-crafted and randomly-mutated frames directly — every one must be
rejected and counted, leaving the decided log untouched — before checking
that the *genuine* response still installs.

Deterministic (fixed seeds) like the other fuzz suites, so failures always
reproduce with the printed case.
"""

import random
from dataclasses import replace

from repro.net.latency import LogNormalLatency
from repro.smr import PbftReplica, ReplicaGroupHarness, SmrConfig
from repro.smr.checkpoint import (
    Checkpoint,
    CheckpointAnnounce,
    CheckpointCertificate,
    StateTransferResponse,
    checkpoint_statement,
)


def make_lagging_harness(seed=0, interval=2, decided=4):
    """A 4-replica group where replica-3 missed ``decided`` operations."""
    harness = ReplicaGroupHarness(
        group_size=4,
        replica_class=PbftReplica,
        config=SmrConfig(
            request_timeout=2.0,
            checkpoint_interval=interval,
            # Announces off: the tests drive every frame by hand.
            checkpoint_announce_period=10_000.0,
        ),
        seed=seed,
        latency_model=LogNormalLatency(median=0.02, sigma=0.3),
    )
    split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
    for index in range(decided):
        harness.propose("replica-0", "noop", index, op_id=f"op-{index}")
    harness.run(until=10.0)
    harness.network.merge(split)
    lagging = harness.actors["replica-3"].replica
    serving = harness.actors["replica-0"].replica
    assert len(lagging.decided_log) == 0
    assert len(serving.decided_log) == decided
    assert serving.checkpoints.stable is not None
    return harness, lagging, serving


def rejected(harness):
    return harness.sim.metrics.counter("smr.checkpoint.rejected")


class TestForgedCheckpointVotes:
    def test_bad_signature_vote_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=1)
        digest = serving.checkpoints.stable.state_digest
        statement = checkpoint_statement(0, 4, digest)
        forged_mac = replace(
            harness.registry.sign("replica-0", statement), mac="f" * 64
        )
        before = rejected(harness)
        lagging.on_message(
            Checkpoint(epoch=0, seq=4, state_digest=digest, replica="replica-0",
                       signature=forged_mac),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert lagging.checkpoints.stable is None

    def test_vote_signed_by_a_different_key_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=2)
        digest = serving.checkpoints.stable.state_digest
        statement = checkpoint_statement(0, 4, digest)
        # replica-3 signs but claims the vote is replica-0's.
        wrong_signer = replace(
            harness.registry.sign("replica-3", statement), signer="replica-0"
        )
        before = rejected(harness)
        lagging.on_message(
            Checkpoint(epoch=0, seq=4, state_digest=digest, replica="replica-0",
                       signature=wrong_signer),
            "replica-0",
        )
        assert rejected(harness) == before + 1

    def test_relayed_vote_of_another_replica_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=3)
        digest = serving.checkpoints.stable.state_digest
        statement = checkpoint_statement(0, 4, digest)
        vote = Checkpoint(
            epoch=0, seq=4, state_digest=digest, replica="replica-1",
            signature=harness.registry.sign("replica-1", statement),
        )
        before = rejected(harness)
        lagging.on_message(vote, "replica-2")  # relayed, not from its author
        assert rejected(harness) == before + 1

    def test_non_member_vote_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=4)
        digest = serving.checkpoints.stable.state_digest
        statement = checkpoint_statement(0, 4, digest)
        harness.registry.generate("intruder")
        vote = Checkpoint(
            epoch=0, seq=4, state_digest=digest, replica="intruder",
            signature=harness.registry.sign("intruder", statement),
        )
        before = rejected(harness)
        lagging.on_message(vote, "intruder")
        assert rejected(harness) == before + 1


def forge_certificate(registry, signers, epoch, seq, digest):
    statement = checkpoint_statement(epoch, seq, digest)
    return CheckpointCertificate(
        epoch=epoch,
        seq=seq,
        state_digest=digest,
        signatures=tuple(registry.sign(signer, statement) for signer in signers),
    )


class TestForgedCertificates:
    def test_underquorum_certificate_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=5)
        cert = forge_certificate(
            harness.registry, ["replica-0", "replica-1"], 0, 6, "d" * 64
        )
        before = rejected(harness)
        lagging.on_message(CheckpointAnnounce(epoch=0, certificate=cert), "replica-0")
        assert rejected(harness) == before + 1
        assert lagging.checkpoints.stable is None

    def test_duplicate_signer_certificate_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=6)
        cert = forge_certificate(
            harness.registry, ["replica-0", "replica-0", "replica-1"], 0, 6, "d" * 64
        )
        before = rejected(harness)
        lagging.on_message(CheckpointAnnounce(epoch=0, certificate=cert), "replica-0")
        assert rejected(harness) == before + 1

    def test_non_member_signer_certificate_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=7)
        harness.registry.generate("intruder")
        cert = forge_certificate(
            harness.registry, ["replica-0", "replica-1", "intruder"], 0, 6, "d" * 64
        )
        before = rejected(harness)
        lagging.on_message(CheckpointAnnounce(epoch=0, certificate=cert), "replica-0")
        assert rejected(harness) == before + 1

    def test_statement_mismatch_certificate_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=8)
        # Signatures over seq 4 presented as a certificate for seq 6.
        statement = checkpoint_statement(0, 4, "d" * 64)
        cert = CheckpointCertificate(
            epoch=0,
            seq=6,
            state_digest="d" * 64,
            signatures=tuple(
                harness.registry.sign(s, statement)
                for s in ("replica-0", "replica-1", "replica-2")
            ),
        )
        before = rejected(harness)
        lagging.on_message(CheckpointAnnounce(epoch=0, certificate=cert), "replica-0")
        assert rejected(harness) == before + 1


class TestForgedStateTransfers:
    def test_tampered_operation_body_is_never_installed(self):
        harness, lagging, serving = make_lagging_harness(seed=9)
        cert = serving.checkpoints.stable
        genuine = list(serving.decided_log[: cert.seq])
        tampered = [replace(genuine[0], body="evil")] + genuine[1:]
        before = rejected(harness)
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=tuple(tampered)
            ),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert len(lagging.decided_log) == 0

    def test_reordered_operations_are_never_installed(self):
        harness, lagging, serving = make_lagging_harness(seed=10)
        cert = serving.checkpoints.stable
        genuine = list(serving.decided_log[: cert.seq])
        reordered = [genuine[1], genuine[0]] + genuine[2:]
        before = rejected(harness)
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=tuple(reordered)
            ),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert len(lagging.decided_log) == 0

    def test_stale_base_count_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=11)
        cert = serving.checkpoints.stable
        genuine = tuple(serving.decided_log[1 : cert.seq])
        before = rejected(harness)
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=1, operations=genuine
            ),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert len(lagging.decided_log) == 0

    def test_truncated_snapshot_is_rejected(self):
        harness, lagging, serving = make_lagging_harness(seed=12)
        cert = serving.checkpoints.stable
        genuine = tuple(serving.decided_log[: cert.seq - 1])
        before = rejected(harness)
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=genuine
            ),
            "replica-0",
        )
        assert rejected(harness) == before + 1
        assert len(lagging.decided_log) == 0

    def test_genuine_response_installs_after_forgeries_failed(self):
        harness, lagging, serving = make_lagging_harness(seed=13)
        cert = serving.checkpoints.stable
        genuine = tuple(serving.decided_log[: cert.seq])
        lagging.on_message(
            StateTransferResponse(
                epoch=0,
                certificate=cert,
                base_count=0,
                operations=(replace(genuine[0], body="evil"),) + genuine[1:],
            ),
            "replica-0",
        )
        assert len(lagging.decided_log) == 0
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=genuine
            ),
            "replica-0",
        )
        assert [op.op_id for op in lagging.decided_log] == [
            op.op_id for op in genuine
        ]
        assert lagging.checkpoints.stable is not None


CASES = 120


class TestRandomizedFrameFuzz:
    def test_random_mutations_are_rejected_and_never_installed(self):
        harness, lagging, serving = make_lagging_harness(seed=14)
        cert = serving.checkpoints.stable
        genuine = tuple(serving.decided_log[: cert.seq])
        rng = random.Random(0xCC5)
        mutations = 0
        for case in range(CASES):
            kind = rng.randrange(5)
            if kind == 0:  # corrupt the certified digest
                bad = forge_certificate(
                    harness.registry,
                    ["replica-0", "replica-1", "replica-2"],
                    0,
                    cert.seq,
                    "%064x" % rng.getrandbits(256),
                )
                frame = StateTransferResponse(
                    epoch=0, certificate=bad, base_count=0, operations=genuine
                )
            elif kind == 1:  # drop a signature from the real certificate
                bad = CheckpointCertificate(
                    epoch=cert.epoch,
                    seq=cert.seq,
                    state_digest=cert.state_digest,
                    signatures=tuple(
                        rng.sample(list(cert.signatures), max(0, len(cert.signatures) - 2))
                    ),
                )
                frame = StateTransferResponse(
                    epoch=0, certificate=bad, base_count=0, operations=genuine
                )
            elif kind == 2:  # shuffle / drop / duplicate operations
                operations = list(genuine)
                action = rng.randrange(3)
                if action == 0:
                    rng.shuffle(operations)
                    if operations == list(genuine):
                        operations.reverse()
                elif action == 1:
                    operations.pop(rng.randrange(len(operations)))
                else:
                    operations.append(operations[rng.randrange(len(operations))])
                frame = StateTransferResponse(
                    epoch=0,
                    certificate=cert,
                    base_count=0,
                    operations=tuple(operations),
                )
            elif kind == 3:  # wrong base count (stale low-water-mark)
                frame = StateTransferResponse(
                    epoch=0,
                    certificate=cert,
                    base_count=rng.randrange(1, cert.seq + 3),
                    operations=genuine,
                )
            else:  # tamper one operation's body or proposer
                index = rng.randrange(len(genuine))
                field_name = rng.choice(["body", "proposer"])
                tampered = replace(genuine[index], **{field_name: "forged"})
                frame = StateTransferResponse(
                    epoch=0,
                    certificate=cert,
                    base_count=0,
                    operations=genuine[:index] + (tampered,) + genuine[index + 1 :],
                )
            before = rejected(harness)
            lagging.on_message(frame, "replica-0")
            assert len(lagging.decided_log) == 0, (case, frame)
            assert rejected(harness) == before + 1, (case, frame)
            mutations += 1
        assert mutations == CASES
        # After the whole barrage, the genuine transfer still installs.
        lagging.on_message(
            StateTransferResponse(
                epoch=0, certificate=cert, base_count=0, operations=genuine
            ),
            "replica-0",
        )
        assert [op.op_id for op in lagging.decided_log] == [
            op.op_id for op in genuine
        ]


# ---------------------------------------------------------------------------
# ISSUE 7: epoch-transition forgeries.  The transfer chain that re-anchors an
# old-epoch certificate is itself an attack surface — a Byzantine responder
# can skip links, thin quorums, doctor signatures, or re-anchor a different
# certificate.  Every such frame must be rejected with the precise reason and
# leave the laggard's anchor and log untouched.

from repro.smr.checkpoint import transition_statement


def make_epoch_crossed_harness(seed=20, crossings=1):
    """A lagging harness whose group crossed ``crossings`` reconfigurations.

    Every replica reconfigures (the laggard is still a member, so its epoch
    keeps pace), but the laggard is cut off for the decisions AND for the
    transition votes: it exits the crossings with no anchor and no chain, so
    everything it learns arrives through the frames under test.
    """
    harness, lagging, serving = make_lagging_harness(seed=seed)
    split = harness.network.split([harness.addresses[:3], harness.addresses[3:]])
    for _ in range(crossings):
        for actor in harness.actors.values():
            actor.replica.reconfigure(harness.addresses)
        harness.run(until=harness.sim.now + 5.0)
    harness.network.merge(split)
    assert lagging.epoch == serving.epoch == crossings
    assert lagging.checkpoints.anchor is None
    chain = tuple(serving.checkpoints.transitions)
    assert [record.new_epoch for record in chain] == list(range(1, crossings + 1))
    return harness, lagging, serving, chain


def reason(harness, name):
    return harness.sim.metrics.counter(f"smr.checkpoint.rejected_{name}")


class TestForgedEpochTransitions:
    def test_chain_that_skips_an_epoch_is_rejected(self):
        harness, lagging, serving, chain = make_epoch_crossed_harness(
            seed=21, crossings=2
        )
        cert = serving.checkpoints.anchor
        genuine = tuple(serving.decided_log[: cert.seq])
        before = reason(harness, "skipped_epoch")
        lagging.on_message(
            StateTransferResponse(
                epoch=2, certificate=cert, base_count=0, operations=genuine,
                transitions=chain[1:],  # the epoch-1 link is missing
            ),
            "replica-0",
        )
        assert reason(harness, "skipped_epoch") == before + 1
        assert lagging.checkpoints.anchor is None
        assert len(lagging.decided_log) == 0

    def test_underquorum_transition_record_is_rejected(self):
        harness, lagging, serving, chain = make_epoch_crossed_harness(seed=22)
        top = chain[-1]
        weak = replace(top, signatures=top.signatures[:1])
        before = reason(harness, "transition_under_quorum")
        lagging.on_message(
            CheckpointAnnounce(
                epoch=1, certificate=serving.checkpoints.anchor, transitions=(weak,)
            ),
            "replica-0",
        )
        assert reason(harness, "transition_under_quorum") == before + 1
        assert lagging.checkpoints.anchor is None

    def test_tampered_transition_signature_is_rejected(self):
        harness, lagging, serving, chain = make_epoch_crossed_harness(seed=23)
        top = chain[-1]
        doctored = replace(
            top,
            signatures=(replace(top.signatures[0], mac="f" * 64),)
            + top.signatures[1:],
        )
        before = reason(harness, "transition_bad_signature")
        lagging.on_message(
            CheckpointAnnounce(
                epoch=1,
                certificate=serving.checkpoints.anchor,
                transitions=(doctored,),
            ),
            "replica-0",
        )
        assert reason(harness, "transition_bad_signature") == before + 1
        assert lagging.checkpoints.anchor is None

    def test_chain_reanchoring_a_different_certificate_is_rejected(self):
        harness, lagging, serving, chain = make_epoch_crossed_harness(seed=24)
        cert = serving.checkpoints.anchor
        foreign = forge_certificate(
            harness.registry,
            ["replica-0", "replica-1", "replica-2"],
            0,
            cert.seq,
            "e" * 64,
        )
        before = reason(harness, "transition_mismatch")
        lagging.on_message(
            CheckpointAnnounce(epoch=1, certificate=foreign, transitions=chain),
            "replica-0",
        )
        assert reason(harness, "transition_mismatch") == before + 1
        assert lagging.checkpoints.anchor is None

    def test_intruder_countersigned_record_is_rejected(self):
        harness, lagging, serving, chain = make_epoch_crossed_harness(seed=25)
        harness.registry.generate("intruder")
        top = chain[-1]
        statement = transition_statement(
            top.new_epoch, top.members, top.prev_members, top.certificate
        )
        forged = replace(
            top,
            signatures=top.signatures[:2]
            + (harness.registry.sign("intruder", statement),),
        )
        before = reason(harness, "bad_transition")
        lagging.on_message(
            CheckpointAnnounce(
                epoch=1, certificate=serving.checkpoints.anchor, transitions=(forged,)
            ),
            "replica-0",
        )
        assert reason(harness, "bad_transition") == before + 1
        assert lagging.checkpoints.anchor is None

    def test_genuine_chain_installs_after_forgeries(self):
        harness, lagging, serving, chain = make_epoch_crossed_harness(
            seed=26, crossings=2
        )
        cert = serving.checkpoints.anchor
        genuine = tuple(serving.decided_log[: cert.seq])
        lagging.on_message(
            StateTransferResponse(
                epoch=2, certificate=cert, base_count=0, operations=genuine,
                transitions=chain[:1],
            ),
            "replica-0",
        )
        assert lagging.checkpoints.anchor is None
        assert len(lagging.decided_log) == 0
        adopted = harness.sim.metrics.counter("smr.checkpoint.anchors_adopted")
        lagging.on_message(
            StateTransferResponse(
                epoch=2, certificate=cert, base_count=0, operations=genuine,
                transitions=chain,
            ),
            "replica-0",
        )
        assert [op.op_id for op in lagging.decided_log] == [
            op.op_id for op in genuine
        ]
        assert (
            harness.sim.metrics.counter("smr.checkpoint.anchors_adopted")
            == adopted + 1
        )

    def test_random_transition_chain_mutations_are_rejected(self):
        harness, lagging, serving, chain = make_epoch_crossed_harness(
            seed=27, crossings=2
        )
        cert = serving.checkpoints.anchor
        genuine = tuple(serving.decided_log[: cert.seq])
        rng = random.Random(0xE9)
        for case in range(60):
            kind = rng.randrange(4)
            records = list(chain)
            if kind == 0:  # drop a link
                records.pop(rng.randrange(len(records)))
            elif kind == 1:  # thin a quorum
                index = rng.randrange(len(records))
                records[index] = replace(
                    records[index],
                    signatures=tuple(
                        rng.sample(list(records[index].signatures), 2)
                    ),
                )
            elif kind == 2:  # flip one signature's MAC
                index = rng.randrange(len(records))
                signatures = list(records[index].signatures)
                position = rng.randrange(len(signatures))
                signatures[position] = replace(
                    signatures[position], mac="%064x" % rng.getrandbits(256)
                )
                records[index] = replace(
                    records[index], signatures=tuple(signatures)
                )
            else:  # re-anchor a foreign digest inside one link
                index = rng.randrange(len(records))
                records[index] = replace(
                    records[index],
                    certificate=forge_certificate(
                        harness.registry,
                        ["replica-0", "replica-1", "replica-2"],
                        0,
                        cert.seq,
                        "%064x" % rng.getrandbits(256),
                    ),
                )
            before = rejected(harness)
            lagging.on_message(
                StateTransferResponse(
                    epoch=2, certificate=cert, base_count=0, operations=genuine,
                    transitions=tuple(records),
                ),
                "replica-0",
            )
            assert len(lagging.decided_log) == 0, (case, kind)
            assert lagging.checkpoints.anchor is None, (case, kind)
            assert rejected(harness) == before + 1, (case, kind)
        # After the whole barrage, the genuine chain still installs.
        lagging.on_message(
            StateTransferResponse(
                epoch=2, certificate=cert, base_count=0, operations=genuine,
                transitions=chain,
            ),
            "replica-0",
        )
        assert [op.op_id for op in lagging.decided_log] == [
            op.op_id for op in genuine
        ]


# ---------------------------------------------------------------------------
# ISSUE 7: application-snapshot fuzz.  Snapshots ride into recovering nodes
# under a certified digest; mutations — stale-digest tampering, recomputed
# digests over forged content, truncated or holey stream prefixes — must all
# reject-and-count without touching the target node's live state.

MB = 1024 * 1024


class TestRandomizedSnapshotFuzz:
    def make_share(self, seed=30):
        from repro.apps.ashare import AShareCluster
        from repro.core.cluster import AtumCluster
        from repro.core.config import AtumParameters

        params = AtumParameters(
            hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5,
            expected_system_size=30,
        )
        atum = AtumCluster(params, seed=seed)
        atum.build_static([f"n{i}" for i in range(18)])
        share = AShareCluster(atum, replication_feedback=False)
        share.put("n0", "dataset", size_bytes=8 * MB, num_chunks=4)
        share.put("n1", "notes", size_bytes=2 * MB, num_chunks=2)
        atum.run(until=60.0)
        return atum, share

    def test_ashare_snapshot_mutations_always_reject(self):
        from repro.crypto.digest import digest_object

        atum, share = self.make_share()
        snapshot = share.snapshot("n0")
        digest = share.snapshot_digest("n0")
        assert len(snapshot["records"]) == 2
        target_before = share.snapshot_digest("n9")
        rng = random.Random(0xA5)
        for case in range(40):
            kind = rng.randrange(4)
            if kind == 0:  # reorder records, keep the stale certified digest
                mutated = dict(
                    snapshot, records=tuple(reversed(snapshot["records"]))
                )
                expected = digest
            elif kind == 1:  # forged chunk digests under a recomputed digest
                records = [dict(entry) for entry in snapshot["records"]]
                index = rng.randrange(len(records))
                records[index] = dict(
                    records[index],
                    chunk_digests=tuple(
                        "%064x" % rng.getrandbits(256)
                        for _ in range(records[index]["num_chunks"])
                    ),
                )
                mutated = dict(snapshot, records=tuple(records))
                expected = digest_object(mutated)
            elif kind == 2:  # drop a record, keep the certified digest
                records = list(snapshot["records"])
                records.pop(rng.randrange(len(records)))
                mutated = dict(snapshot, records=tuple(records))
                expected = digest
            else:  # wrong application frame entirely
                mutated = {"app": "astream", "records": snapshot["records"]}
                expected = (
                    digest_object(mutated) if rng.random() < 0.5 else digest
                )
            before = atum.sim.metrics.counter("ashare.snapshot_rejected")
            assert not share.restore("n9", mutated, expected_digest=expected), (
                case,
                kind,
            )
            assert (
                atum.sim.metrics.counter("ashare.snapshot_rejected") == before + 1
            )
            assert share.snapshot_digest("n9") == target_before, (case, kind)
        # The genuine snapshot still installs after the barrage.
        assert share.restore("n9", snapshot, expected_digest=digest)
        assert share.snapshot_digest("n9") == digest

    def test_astream_prefix_mutations_always_reject(self):
        from repro.apps.astream import AStreamSession
        from repro.core.cluster import AtumCluster
        from repro.core.config import AtumParameters, SmrKind
        from repro.crypto.digest import digest_object

        params = AtumParameters(
            hc=3, rwl=5, gmax=6, gmin=3, smr_kind=SmrKind.SYNC,
            round_duration=0.5, expected_system_size=30,
        )
        atum = AtumCluster(params, seed=31)
        atum.build_static([f"n{i}" for i in range(20)])
        session = AStreamSession(
            atum,
            source="n0",
            forward_policy="single",
            chunk_bytes=250_000,
            rate_bytes_per_s=1_000_000,
            pull_timeout=1.0,
        )
        session.stream(duration_s=0.5)
        atum.run(until=60.0)
        snapshot = session.snapshot("n5")
        digest = session.snapshot_digest("n5")
        assert len(snapshot["received"]) >= 2
        rng = random.Random(0x57)
        for case in range(40):
            kind = rng.randrange(4)
            if kind == 0:  # truncated prefix under the certified digest
                cut = rng.randrange(len(snapshot["received"]))
                mutated = dict(
                    snapshot, received=tuple(snapshot["received"][:cut])
                )
                expected = digest
            elif kind == 1:  # holey prefix under a recomputed digest
                mutated = dict(
                    snapshot, received=tuple(snapshot["received"][1:])
                )
                expected = digest_object(mutated)
            elif kind == 2:  # forged chunk digests under a recomputed digest
                mutated = dict(
                    snapshot,
                    digests=tuple(
                        (index, "%064x" % rng.getrandbits(256))
                        for index, _ in snapshot["digests"]
                    ),
                )
                expected = digest_object(mutated)
            else:  # a different stream's snapshot
                mutated = dict(snapshot, stream="stolen-stream")
                expected = digest_object(mutated)
            before = atum.sim.metrics.counter("astream.snapshot_rejected")
            assert not session.restore(
                "n7", mutated, expected_digest=expected
            ), (case, kind)
            assert (
                atum.sim.metrics.counter("astream.snapshot_rejected")
                == before + 1
            )
        session.states["n7"].received_chunks.clear()
        session.states["n7"].known_digests.clear()
        assert session.restore("n7", snapshot, expected_digest=digest)
        assert session.snapshot_digest("n7") == digest
