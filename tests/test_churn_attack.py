"""Tests for the adaptive join-leave (churn) attack and AE-under-churn.

The ROADMAP's two churn-adversity gaps: (1) an adaptive coalition that
strategically leaves and re-joins trying to concentrate in one vgroup —
random-walk placement plus shuffling must keep it at or below every
vgroup's eviction/agreement threshold; (2) the anti-entropy repair layer
racing continuous membership churn — zero invariant violations and a
bounded repair store.
"""

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters
from repro.faults import FaultPlan, InvariantMonitor, NodeFault, apply_plan
from repro.faults.scenarios import SCENARIOS, run_scenario
from repro.group.antientropy import AntiEntropyConfig


class TestRejoinBehaviour:
    def test_node_fault_accepts_rejoin_attack(self):
        fault = NodeFault(address="n0", behaviour="rejoin_attack", attack_period=2.0)
        assert fault.behaviour == "rejoin_attack"

    def test_attackers_strategically_leave_and_rejoin(self):
        params = AtumParameters(hc=3, rwl=5, gmax=8, gmin=4, round_duration=0.5)
        cluster = AtumCluster(params, seed=5)
        monitor = InvariantMonitor()
        cluster.attach_monitor(monitor)
        cluster.build_static([f"n{i}" for i in range(24)])
        # Two coalition members in different vgroups: at least one is
        # misplaced relative to the rally point, so moves must happen.
        groups = sorted(cluster.engine.groups.values(), key=lambda v: v.group_id)
        attackers = [sorted(groups[0].members)[0], sorted(groups[1].members)[0]]
        plan = FaultPlan(
            nodes=tuple(
                NodeFault(address=a, behaviour="rejoin_attack", start=0.0,
                          stop=40.0, attack_period=2.0)
                for a in attackers
            )
        )
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=60.0)
        cluster.run_until_membership_quiescent(max_time=60.0)
        metrics = cluster.sim.metrics
        assert metrics.counter("faults.rejoin_leaves") > 0
        assert metrics.counter("faults.rejoin_joins") > 0
        # Concentration was sampled throughout the attack window.
        assert metrics.histogram("faults.rejoin_group_fraction").count > 0
        assert metrics.histogram("faults.rejoin_threshold_excess").count > 0
        monitor.finalize()
        monitor.assert_clean()

    def test_attacker_is_silent_on_the_protocol(self):
        params = AtumParameters(hc=3, rwl=5, gmax=8, gmin=4, round_duration=0.5)
        cluster = AtumCluster(params, seed=9)
        cluster.build_static([f"n{i}" for i in range(16)])
        victim = sorted(cluster.nodes)[0]
        cluster.make_byzantine([victim], mode="rejoin_attack")
        bcast = cluster.broadcast(sorted(cluster.nodes)[1], "x")
        cluster.run(until=20.0)
        # The attacker neither delivers nor counts as correct.
        assert not cluster.nodes[victim].has_delivered(bcast)
        assert not cluster.nodes[victim].is_correct
        assert cluster.delivery_fraction(bcast) == 1.0


class TestRejoinAttackScenario:
    @pytest.mark.parametrize("seed", [7, 11])
    def test_attack_never_outgrows_the_minority_threshold(self, seed):
        row = run_scenario(seed, "broadcast/rejoin_attack")
        assert row["violations"] == 0
        # The attack actually ran: strategic moves happened and placement
        # was sampled.
        assert row["counters"]["faults.rejoin_leaves"] > 0
        assert row["counters"]["faults.rejoin_joins"] > 0
        assert row["rejoin_max_group_fraction"] is not None
        # The paper's bound: the coalition never outgrew any vgroup's
        # eviction/agreement threshold (excess over (g-1)//2 stays <= 0),
        # which also keeps it below every strict majority.
        assert row["rejoin_max_threshold_excess"] <= 0
        assert row["attack_bound_met"] is True
        assert row["delivery_bound_met"]

    def test_scenario_runs_in_the_papers_group_size_regime(self):
        scenario = SCENARIOS["broadcast/rejoin_attack"]
        assert scenario.gmin >= 6
        assert scenario.attack_threshold == 0.0


class TestAntiEntropyUnderChurn:
    @pytest.mark.parametrize("seed", [7, 11])
    def test_repair_races_churn_without_violations(self, seed):
        row = run_scenario(seed, "churn/antientropy")
        assert row["violations"] == 0
        # Churn completed and broadcasts reconciled above the bound even
        # though vgroups split/merged/shuffled under the repair layer.
        assert row["completion_ratio"] >= 0.9
        assert row["mean_delivery_fraction"] >= 0.9
        assert row["delivery_bound_met"]
        # The settled-broadcast GC actually ran: the repair store does not
        # grow without bound under sustained traffic (the ROADMAP item).
        assert row["counters"]["ae.store_gc_dropped"] > 0

    def test_settled_store_gc_bounds_the_repair_store(self):
        params = AtumParameters(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5)
        cluster = AtumCluster(
            params,
            seed=17,
            antientropy=AntiEntropyConfig(gc_settled_age=5.0),
        )
        cluster.build_static([f"n{i}" for i in range(12)])
        for index in range(6):
            cluster.sim.schedule(
                0.5 * index, lambda i=index: cluster.broadcast("n0", f"b{i}")
            )
        cluster.run(until=30.0)
        # Every payload is long settled: the stores drained completely and
        # the repair backoff/watchdog state went with them.
        for node in cluster.nodes.values():
            assert node.antientropy.store == {}
            assert node.antientropy._resend_backoff._state == {}
            assert node.antientropy._repropose_backoff._state == {}
            assert node.antientropy._storm == {}
        assert cluster.sim.metrics.counter("ae.store_gc_dropped") > 0

    def test_gc_disabled_keeps_the_old_retention(self):
        params = AtumParameters(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5)
        cluster = AtumCluster(
            params,
            seed=19,
            antientropy=AntiEntropyConfig(gc_settled_age=None),
        )
        cluster.build_static([f"n{i}" for i in range(12)])
        bcast = cluster.broadcast("n0", "keep-me")
        cluster.run(until=30.0)
        holders = [
            node for node in cluster.nodes.values() if bcast in node.antientropy.store
        ]
        assert len(holders) == len(cluster.nodes)
        assert cluster.sim.metrics.counter("ae.store_gc_dropped") == 0
