"""Figure 12: AStream second-tier latency for a 1 MB/s stream.

Streams one second of data (1 MB/s, 250 KB chunks) in systems of 20 and 50
nodes, with the tier-one forward callback configured to gossip on a single or
on two H-graph cycles.  The reported number is the latency of the second tier
(data chunks through the spanning forest), which the paper measures in the
hundreds of milliseconds; using two cycles for the metadata lowers it
slightly, at the cost of higher tier-one traffic.
"""

from repro.analysis import format_table, latency_summary
from repro.apps.astream import AStreamSession
from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters, SmrKind


def _stream_once(num_nodes: int, policy: str, seed: int, duration: float):
    params = AtumParameters.for_system_size(num_nodes, SmrKind.SYNC, round_duration=1.0)
    atum = AtumCluster(params, seed=seed)
    addresses = [f"n{i}" for i in range(num_nodes)]
    atum.build_static(addresses)
    session = AStreamSession(
        atum,
        source="n0",
        forward_policy=policy,
        chunk_bytes=250_000,
        rate_bytes_per_s=1_000_000,
        pull_timeout=1.0,
    )
    chunk_count = session.stream(duration_s=duration)
    atum.run(until=atum.sim.now + 90.0)
    fractions = [session.delivery_fraction(i) for i in range(chunk_count)]
    return session.tier2_latencies(), min(fractions)


def _run(scale):
    duration = 1.0 * scale
    rows = []
    for num_nodes in (20, 50):
        for policy in ("single", "double"):
            latencies, min_fraction = _stream_once(num_nodes, policy, seed=num_nodes, duration=duration)
            summary = latency_summary(latencies)
            rows.append(
                {
                    "system_size": num_nodes,
                    "cycles": policy,
                    "tier2_median_ms": round(summary["median"] * 1000.0, 1),
                    "tier2_p90_ms": round(summary["p90"] * 1000.0, 1),
                    "delivery": round(min_fraction, 3),
                }
            )
    return rows


def test_fig12_astream_latency(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 12: AStream tier-2 latency, 1 MB/s stream"))

    by_key = {(row["system_size"], row["cycles"]): row for row in rows}
    # Every chunk reaches every correct node.
    assert all(row["delivery"] == 1.0 for row in rows)
    # Second-tier latency stays in the sub-second range (paper: 100-900 ms).
    assert all(row["tier2_median_ms"] < 2000.0 for row in rows)
    # The larger system has higher tier-2 latency (more forest levels), for
    # the single-cycle configuration.
    assert by_key[(50, "single")]["tier2_median_ms"] >= by_key[(20, "single")]["tier2_median_ms"]
