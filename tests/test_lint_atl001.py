"""ATL001: direct random.* use outside sim/rng.py."""

from lint_utils import lint_fixture, rules_of


def test_flags_module_call_and_from_imported_random():
    findings = lint_fixture("atl001_bad.py", rules=["ATL001"])
    assert rules_of(findings) == ["ATL001", "ATL001"]
    assert any("random.Random" in f.message for f in findings)
    assert any("random.random" in f.message for f in findings)
    assert all("named stream" in f.message for f in findings)


def test_rng_home_is_exempt():
    from lint_utils import SRC
    from repro.lint import run_lint
    from lint_utils import REPO_ROOT

    findings = run_lint([SRC / "sim" / "rng.py"], root=REPO_ROOT, rule_ids=["ATL001"])
    assert findings == []


def test_reasoned_pragmas_suppress_everything():
    assert lint_fixture("atl001_ok.py") == []
