"""AShare: a file sharing service on top of Atum (paper section 4.2).

AShare separates *data* (file content, stored as chunked replicas at a random
subset of nodes) from *metadata* (the mapping between files and nodes, sizes,
owners and chunk digests, replicated at every node inside the *metadata
index*).  Atum provides the messaging and membership layer: every metadata
update is an Atum broadcast, so every node keeps a consistent index.

Protection mechanisms (section 4.2.2):

* **Randomized replication with a feedback loop** -- when a file has fewer
  than ``rho`` replicas, every node that does not yet store it replicates it
  with probability ``(rho - c) / n``; completed replications are announced
  with a broadcast, which re-triggers the algorithm until ``rho`` replicas
  exist.
* **Integrity checks** -- files are transferred in chunks; each chunk's SHA-2
  digest is part of the metadata, corrupt chunks are detected and re-pulled
  from another replica.

File content is represented symbolically (sizes and digests, not actual
bytes): the simulation needs transfer times and integrity-check outcomes, not
gigabytes of RAM.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.apps.transfer import TransferModel
from repro.core.cluster import AtumCluster
from repro.core.node import BroadcastMessage
from repro.crypto.digest import digest_object


def chunk_digest(owner: str, name: str, chunk_index: int, corrupted: bool = False) -> str:
    """Digest of one chunk of a file.

    Content is synthetic: the digest is derived from the file identity and the
    chunk index.  A corrupted replica yields a different digest, which is how
    integrity checks detect it.
    """
    marker = "corrupted" if corrupted else "pristine"
    return digest_object({"owner": owner, "name": name, "chunk": chunk_index, "state": marker})


@dataclass
class FileRecord:
    """One entry of the metadata index.

    Attributes:
        owner: Owner of the file (namespaces are per-owner, section 4.2.1).
        name: File name within the owner's namespace.
        size_bytes: Total file size.
        num_chunks: Number of transfer chunks.
        chunk_digests: Digest of every chunk (the ``d`` of a PUT).
        replicas: Addresses of nodes currently announcing a replica.
    """

    owner: str
    name: str
    size_bytes: int
    num_chunks: int
    chunk_digests: Tuple[str, ...]
    replicas: Set[str] = field(default_factory=set)

    @property
    def file_id(self) -> Tuple[str, str]:
        return (self.owner, self.name)

    @property
    def chunk_size(self) -> int:
        return max(1, self.size_bytes // max(1, self.num_chunks))

    def chunk_sizes(self) -> List[int]:
        base = self.size_bytes // self.num_chunks
        sizes = [base] * self.num_chunks
        sizes[-1] += self.size_bytes - base * self.num_chunks
        return sizes


class MetadataIndex:
    """The per-node metadata index (soft state, complete copy at every node).

    The paper implements it as a key-value store on SQLite; here it is an
    in-memory structure with the same query surface (lookup, replica tracking,
    substring search over owners and names).
    """

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, str], FileRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def put(self, record: FileRecord) -> None:
        self._records[record.file_id] = record

    def get(self, owner: str, name: str) -> Optional[FileRecord]:
        return self._records.get((owner, name))

    def delete(self, owner: str, name: str) -> None:
        self._records.pop((owner, name), None)

    def add_replica(self, owner: str, name: str, holder: str) -> None:
        record = self._records.get((owner, name))
        if record is not None:
            record.replicas.add(holder)

    def remove_replica_holder(self, holder: str) -> None:
        """Forget every replica announced by a departed node."""
        for record in self._records.values():
            record.replicas.discard(holder)

    def replica_count(self, owner: str, name: str) -> int:
        record = self._records.get((owner, name))
        return len(record.replicas) if record else 0

    def search(self, term: str) -> List[FileRecord]:
        """Substring search over owner and file names (the SEARCH operation)."""
        needle = term.lower()
        return [
            record
            for record in self._records.values()
            if needle in record.owner.lower() or needle in record.name.lower()
        ]

    def all_records(self) -> List[FileRecord]:
        return list(self._records.values())


@dataclass
class _StoredReplica:
    """A replica held by a node; Byzantine holders corrupt their replicas."""

    owner: str
    name: str
    corrupted: bool = False


class AShareCluster:
    """AShare deployed over an existing Atum cluster.

    Args:
        atum: The underlying Atum cluster (its nodes become AShare nodes).
        rho: Target replica count per file (a fraction of system size in the
            paper, e.g. 0.1 to 0.3 of N).
        transfer: Bulk-transfer cost model (shared with the NFS baseline).
        byzantine_corrupt_replicas: Whether Byzantine nodes corrupt every
            replica they store (the attack of Figures 10-11).
    """

    def __init__(
        self,
        atum: AtumCluster,
        rho: int = 8,
        transfer: Optional[TransferModel] = None,
        byzantine_corrupt_replicas: bool = True,
        replication_feedback: bool = True,
    ) -> None:
        self.atum = atum
        self.rho = rho
        self.transfer = transfer or TransferModel()
        self.byzantine_corrupt_replicas = byzantine_corrupt_replicas
        self.replication_feedback = replication_feedback
        self.indexes: Dict[str, MetadataIndex] = {}
        self.stored: Dict[str, Dict[Tuple[str, str], _StoredReplica]] = {}
        self._get_counter = itertools.count(1)
        self._rng = atum.sim.rng.stream("ashare")
        for address, node in atum.nodes.items():
            self.indexes[address] = MetadataIndex()
            self.stored[address] = {}
            node.deliver_fn = self._make_deliver(address, node.deliver_fn)  # atumlint: allow[ATL009] application-tier delivery decoration; observability belongs in repro.core.middleware

    # ------------------------------------------------------------------ helpers

    @property
    def sim(self):
        return self.atum.sim

    def index_of(self, address: str) -> MetadataIndex:
        return self.indexes[address]

    def is_byzantine(self, address: str) -> bool:
        node = self.atum.nodes.get(address)
        return node is not None and not node.is_correct

    def _make_deliver(
        self, address: str, previous: Optional[Callable[[BroadcastMessage], None]]
    ) -> Callable[[BroadcastMessage], None]:
        def deliver(message: BroadcastMessage) -> None:
            if previous is not None:
                previous(message)
            payload = message.payload
            if isinstance(payload, dict) and payload.get("app") == "ashare":
                self._apply_metadata_update(address, payload)

        return deliver

    # ----------------------------------------------------------------- interface

    def put(
        self,
        owner: str,
        name: str,
        size_bytes: int,
        num_chunks: int = 10,
    ) -> FileRecord:
        """PUT: register a file and start replicating it (section 4.2.2)."""
        digests = tuple(chunk_digest(owner, name, index) for index in range(num_chunks))
        record = FileRecord(
            owner=owner,
            name=name,
            size_bytes=size_bytes,
            num_chunks=num_chunks,
            chunk_digests=digests,
            replicas={owner},
        )
        # The owner stores the original copy (possibly corrupted if Byzantine).
        self.stored[owner][record.file_id] = _StoredReplica(
            owner=owner, name=name, corrupted=self._corrupts(owner)
        )
        self.atum.broadcast(
            owner,
            {
                "app": "ashare",
                "op": "put",
                "owner": owner,
                "name": name,
                "size_bytes": size_bytes,
                "num_chunks": num_chunks,
                "chunk_digests": list(digests),
            },
            size_bytes=256 + 32 * num_chunks,
        )
        return record

    def delete(self, owner: str, name: str) -> None:
        """DELETE: remove the file and all its replicas."""
        self.atum.broadcast(
            owner,
            {"app": "ashare", "op": "delete", "owner": owner, "name": name},
            size_bytes=128,
        )

    def search(self, requester: str, term: str) -> List[FileRecord]:
        """SEARCH: query the requester's local index."""
        return self.indexes[requester].search(term)

    def get(
        self,
        reader: str,
        owner: str,
        name: str,
        replicate: bool = False,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> Optional[float]:
        """GET: read a file via parallel chunked pulls with integrity checks.

        Returns the read latency in seconds (also recorded in the metric
        ``ashare.get_latency``), or ``None`` if the file is unknown or has no
        reachable replica.  Completion is also scheduled on the simulator, so
        replication announcements happen at the right simulated time.
        """
        index = self.indexes[reader]
        record = index.get(owner, name)
        if record is None:
            self.sim.metrics.increment("ashare.get_missing")
            return None
        sources = [address for address in sorted(record.replicas) if address != reader]
        if not sources:
            self.sim.metrics.increment("ashare.get_no_replica")
            return None
        latency = self._read_latency(reader, record, sources)
        self.sim.metrics.observe("ashare.get_latency", latency)
        self.sim.metrics.observe(
            "ashare.get_latency_per_mb", self.transfer.latency_per_mb(latency, record.size_bytes)
        )

        def complete() -> None:
            if replicate:
                self.stored[reader][record.file_id] = _StoredReplica(
                    owner=owner, name=name, corrupted=self._corrupts(reader)
                )
                node = self.atum.nodes.get(reader)
                if node is not None and node.is_member:
                    self.atum.broadcast(
                        reader,
                        {
                            "app": "ashare",
                            "op": "replica",
                            "owner": owner,
                            "name": name,
                            "holder": reader,
                        },
                        size_bytes=128,
                    )
            if on_complete is not None:
                on_complete(latency)

        self.sim.schedule(latency, complete, tag="ashare.get")
        return latency

    # ----------------------------------------------------------------- internals

    def _corrupts(self, address: str) -> bool:
        return self.byzantine_corrupt_replicas and self.is_byzantine(address)

    def _read_latency(self, reader: str, record: FileRecord, sources: Sequence[str]) -> float:
        """Latency of a chunked parallel read from the given replica holders."""
        chunk_sizes = record.chunk_sizes()
        connections = max(1, min(len(sources), record.num_chunks))
        chosen = list(sources)[:connections]
        corrupted_chunks = 0
        for chunk_index in range(record.num_chunks):
            holder = chosen[chunk_index % len(chosen)]
            stored = self.stored.get(holder, {}).get(record.file_id)
            holder_corrupted = stored.corrupted if stored is not None else self._corrupts(holder)
            if holder_corrupted:
                corrupted_chunks += 1
        return self.transfer.chunked_read_time(
            chunk_sizes, parallel_connections=connections, corrupted_chunks=corrupted_chunks
        )

    def _apply_metadata_update(self, address: str, payload: Dict[str, Any]) -> None:
        index = self.indexes[address]
        operation = payload.get("op")
        if operation == "put":
            record = FileRecord(
                owner=payload["owner"],
                name=payload["name"],
                size_bytes=payload["size_bytes"],
                num_chunks=payload["num_chunks"],
                chunk_digests=tuple(payload["chunk_digests"]),
                replicas={payload["owner"]},
            )
            index.put(record)
            self._maybe_replicate(address, record.owner, record.name)
        elif operation == "replica":
            index.add_replica(payload["owner"], payload["name"], payload["holder"])
            self._maybe_replicate(address, payload["owner"], payload["name"])
        elif operation == "delete":
            index.delete(payload["owner"], payload["name"])
            self.stored[address].pop((payload["owner"], payload["name"]), None)

    def _maybe_replicate(self, address: str, owner: str, name: str) -> None:
        """The randomized replication feedback loop (Figure 5)."""
        if not self.replication_feedback:
            return
        if self.is_byzantine(address):
            return
        index = self.indexes[address]
        record = index.get(owner, name)
        if record is None or address in record.replicas:
            return
        if (owner, name) in self.stored[address]:
            return
        count = index.replica_count(owner, name)
        if count >= self.rho:
            return
        system_size = max(1, self.atum.system_size)
        probability = (self.rho - count) / system_size
        if self._rng.random() < probability:
            self.sim.metrics.increment("ashare.replications_started")
            self.get(address, owner, name, replicate=True)

    # ------------------------------------------------------------------ queries

    def replica_count(self, owner: str, name: str, as_seen_by: Optional[str] = None) -> int:
        viewer = as_seen_by or owner
        return self.indexes[viewer].replica_count(owner, name)

    def seed_replicas(self, owner: str, name: str, holders: Sequence[str]) -> None:
        """Directly install replicas and index entries (experiment setup helper).

        Used by benchmarks that need a pre-replicated corpus (e.g. 500 files at
        8-20 replicas each) without replaying the replication feedback loop.
        """
        record_template = None
        for address, index in self.indexes.items():
            record = index.get(owner, name)
            if record is not None:
                record_template = record
                break
        if record_template is None:
            raise KeyError(f"file ({owner}, {name}) is not in any index; PUT it first")
        for holder in holders:
            self.stored.setdefault(holder, {})[(owner, name)] = _StoredReplica(
                owner=owner, name=name, corrupted=self._corrupts(holder)
            )
            for index in self.indexes.values():
                index.add_replica(owner, name, holder)

    # ---------------------------------------------------------------- snapshots

    def snapshot(self, address: str) -> Dict[str, Any]:
        """A deterministic, order-normalised copy of one node's AShare state.

        AShare state is a pure function of the delivered broadcast prefix
        (plus the node's own replication decisions), so a checkpoint whose
        certified digest covers the op log transitively certifies this
        snapshot; :meth:`restore` installs it on a recovering node instead
        of replaying every metadata update since genesis.
        """
        index = self.indexes[address]
        records = tuple(
            {
                "owner": record.owner,
                "name": record.name,
                "size_bytes": record.size_bytes,
                "num_chunks": record.num_chunks,
                "chunk_digests": tuple(record.chunk_digests),
                "replicas": tuple(sorted(record.replicas)),
            }
            for record in sorted(index.all_records(), key=lambda r: r.file_id)
        )
        stored = tuple(
            {"owner": replica.owner, "name": replica.name, "corrupted": replica.corrupted}
            for _, replica in sorted(self.stored.get(address, {}).items())
        )
        return {"app": "ashare", "records": records, "stored": stored}

    def snapshot_digest(self, address: str) -> str:
        """Certified digest of :meth:`snapshot` (what a transfer must match)."""
        return digest_object(self.snapshot(address))

    def restore(
        self,
        address: str,
        snapshot: Dict[str, Any],
        expected_digest: Optional[str] = None,
    ) -> bool:
        """Install a snapshot on ``address``; reject-and-count on mismatch.

        A snapshot is rejected (``ashare.snapshot_rejected``) when its
        digest differs from ``expected_digest`` (the digest certified by
        the checkpoint the transfer rode in on), when it is structurally
        malformed, or when any record's chunk digests disagree with the
        metadata the PUT would have announced — a tampered snapshot can
        never reach the index.  Returns True iff the state was installed.
        """

        def reject() -> bool:
            self.sim.metrics.increment("ashare.snapshot_rejected")
            return False

        if not isinstance(snapshot, dict) or snapshot.get("app") != "ashare":
            return reject()
        if expected_digest is not None and digest_object(snapshot) != expected_digest:
            return reject()
        try:
            records = []
            for entry in snapshot["records"]:
                digests = tuple(entry["chunk_digests"])
                if len(digests) != int(entry["num_chunks"]):
                    return reject()
                if digests != tuple(
                    chunk_digest(entry["owner"], entry["name"], chunk_index)
                    for chunk_index in range(len(digests))
                ):
                    return reject()
                records.append(
                    FileRecord(
                        owner=entry["owner"],
                        name=entry["name"],
                        size_bytes=int(entry["size_bytes"]),
                        num_chunks=int(entry["num_chunks"]),
                        chunk_digests=digests,
                        replicas=set(entry["replicas"]),
                    )
                )
            stored = {
                (entry["owner"], entry["name"]): _StoredReplica(
                    owner=entry["owner"],
                    name=entry["name"],
                    corrupted=bool(entry["corrupted"]),
                )
                for entry in snapshot["stored"]
            }
        except (KeyError, TypeError, ValueError):
            return reject()
        index = MetadataIndex()
        for record in records:
            index.put(record)
        self.indexes[address] = index
        self.stored[address] = stored
        self.sim.metrics.increment("ashare.snapshots_restored")
        return True


__all__ = [
    "chunk_digest",
    "FileRecord",
    "MetadataIndex",
    "AShareCluster",
]
