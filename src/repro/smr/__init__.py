"""BFT state machine replication protocols used inside volatile groups.

Two interchangeable engines are provided, matching the paper's two Atum
implementations:

* :class:`repro.smr.dolev_strong.SyncSmrReplica` -- a synchronous, round-based
  engine built on the Dolev-Strong authenticated Byzantine broadcast.  It
  tolerates ``f = (g - 1) // 2`` faults in a group of ``g`` replicas.
* :class:`repro.smr.pbft.PbftReplica` -- an eventually-synchronous engine in
  the style of PBFT (pre-prepare / prepare / commit with view changes).  It
  tolerates ``f = (g - 1) // 3`` faults.

Both engines expose the same interface (:class:`repro.smr.base.SmrReplica`), so
the group layer is agnostic to the choice -- exactly as Atum's design intends.
"""

from repro.smr.base import (
    SmrConfig,
    SmrReplica,
    Operation,
    sync_fault_threshold,
    async_fault_threshold,
)
from repro.smr.checkpoint import (
    Checkpoint,
    CheckpointAnnounce,
    CheckpointCertificate,
    CheckpointManager,
    StateTransferRequest,
    StateTransferResponse,
)
from repro.smr.dolev_strong import DolevStrongInstance, SyncSmrReplica
from repro.smr.pbft import PbftReplica
from repro.smr.harness import ReplicaGroupHarness

__all__ = [
    "Checkpoint",
    "CheckpointAnnounce",
    "CheckpointCertificate",
    "CheckpointManager",
    "StateTransferRequest",
    "StateTransferResponse",
    "SmrConfig",
    "SmrReplica",
    "Operation",
    "sync_fault_threshold",
    "async_fault_threshold",
    "DolevStrongInstance",
    "SyncSmrReplica",
    "PbftReplica",
    "ReplicaGroupHarness",
]
