"""Regression for the swallowed-checker-error bug (atumlint ATL004).

``InvariantMonitor.finalize`` used to catch ``engine.validate()`` errors,
record a violation, and silently continue — a broken membership engine
outside fault replay looked like a clean run.  Now the error is always
counted (``invariants.check_errors``) and re-raised unless the monitor was
explicitly configured with ``tolerate_check_errors=True`` (fault-scenario
replay, where a crashed checker must surface as a matrix-row violation,
not kill the sweep).
"""

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters
from repro.faults import InvariantMonitor
from repro.faults.invariants import InvariantConfig


def build_cluster(monitor, nodes=12):
    params = AtumParameters(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5)
    cluster = AtumCluster(params, seed=9)
    cluster.attach_monitor(monitor)
    cluster.build_static([f"n{i}" for i in range(nodes)])
    return cluster


def break_validate(cluster):
    def boom():
        raise RuntimeError("validate exploded")

    cluster.engine.validate = boom


class TestCheckerErrorHandling:
    def test_default_config_counts_and_reraises(self):
        monitor = InvariantMonitor()
        cluster = build_cluster(monitor)
        break_validate(cluster)
        with pytest.raises(RuntimeError, match="validate exploded"):
            monitor.finalize()
        assert cluster.sim.metrics.counter("invariants.check_errors") == 1.0
        kinds = [v.kind for v in monitor.violations]
        assert "structure" in kinds

    def test_tolerant_config_records_violation_without_raising(self):
        monitor = InvariantMonitor(InvariantConfig(tolerate_check_errors=True))
        cluster = build_cluster(monitor)
        break_validate(cluster)
        violations = monitor.finalize()
        assert cluster.sim.metrics.counter("invariants.check_errors") == 1.0
        structural = [v for v in violations if v.kind == "structure"]
        assert structural and "validate exploded" in structural[0].detail

    def test_healthy_engine_counts_nothing(self):
        monitor = InvariantMonitor()
        cluster = build_cluster(monitor)
        monitor.finalize()
        assert cluster.sim.metrics.counter("invariants.check_errors") == 0.0
