"""ATL006 fixture: metric name literals that are not in the registry."""


def report(metrics):
    metrics.increment("invariants.check_error")  # typo: registered name has a trailing s
    metrics.counters["no.such.metric"] += 1
    metrics.observe("also.not.registered", 1.0)
