"""ATL002: wall-clock reads outside benchmarks/ and sim/perf.py."""

from lint_utils import REPO_ROOT, lint_fixture, rules_of
from repro.lint import run_lint


def test_flags_time_perfcounter_and_datetime_now():
    findings = lint_fixture("atl002_bad.py", rules=["ATL002"])
    assert rules_of(findings) == ["ATL002", "ATL002", "ATL002"]
    messages = "\n".join(f.message for f in findings)
    assert "time.time" in messages
    assert "time.perf_counter" in messages
    assert "datetime.now" in messages
    assert "sim.now" in messages


def test_sim_perf_is_exempt():
    perf = REPO_ROOT / "src" / "repro" / "sim" / "perf.py"
    assert run_lint([perf], root=REPO_ROOT, rule_ids=["ATL002"]) == []


def test_reasoned_pragmas_suppress_everything():
    assert lint_fixture("atl002_ok.py") == []
