"""Runtime invariant checking for Atum's robustness claims.

The paper's safety guarantees (section 3.1) reduce to a handful of
observable invariants.  :class:`InvariantMonitor` attaches to an
:class:`~repro.core.cluster.AtumCluster` and checks them *while a scenario
runs* rather than after the fact:

* **No forged group message accepted** — every group message accepted by a
  correct node was contributed by real (ever-)members of the claimed source
  vgroup, reached the majority of that vgroup's actual size, and includes at
  least one correct sender (a Byzantine minority alone can never push a
  message past the majority rule).
* **Agreement** — all correct nodes that deliver a broadcast deliver the
  *same payload* (equivocation never wins); for bare SMR groups,
  :func:`check_agreement_logs` asserts the PBFT / Dolev-Strong harness
  outputs are prefix-consistent.
* **No wrongful eviction / no re-admission** — a correct, responsive node is
  never evicted, and an evicted identity is never re-accepted into any
  vgroup.
* **Group-size bounds** — every installed view respects the logarithmic
  grouping bounds (``gmin``/``gmax`` with the documented merge transient),
  and view epochs never move backwards.
* **Directory convergence** — after a split-brain heal, the merge decision
  the cluster enforced equals the one recomputed from the recorded per-side
  directories, and no address evicted on either side remains a member
  (see :mod:`repro.overlay.directory`).

Checks are pure observation: they draw no randomness, schedule no events and
never mutate protocol state, so an attached monitor cannot change a run's
event trace.  Violations accumulate in :attr:`InvariantMonitor.violations`;
:meth:`assert_clean` raises with a readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.core.middleware import Middleware, MiddlewareContext
from repro.crypto.digest import digest_object
from repro.group.vgroup import VGroupView, majority_threshold


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant violation."""

    kind: str
    subject: str
    time: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[t={self.time:.3f}] {self.kind}({self.subject}): {self.detail}"


@dataclass
class InvariantConfig:
    """Tunables of the monitor.

    Attributes:
        size_slack: Extra members a view may transiently hold above ``gmax``
            (a merge installs up to ``gmax + gmin - 1`` members before the
            follow-up split); ``None`` uses the engine's ``gmin``.
        check_claimed_size: Verify the claimed sender-group size of accepted
            group messages against the source vgroup's actual size.
        check_final_bounds: At :meth:`InvariantMonitor.finalize`, require all
            groups back inside ``[gmin, gmax]``.
        flag_correct_evictions: Record a violation when a correct,
            non-exempt, non-partitioned node is evicted.
        max_violations: Stop recording beyond this many violations.
        tolerate_check_errors: Keep running when a checker itself errors
            (``engine.validate()`` raising at :meth:`finalize`).  Fault-
            scenario replay sets this so a broken engine surfaces as a
            ``structure`` violation in the matrix row; everywhere else the
            error is counted (``invariants.check_errors``) and re-raised —
            a crashed checker outside replay is a bug, not an observation.
    """

    size_slack: Optional[int] = None
    check_claimed_size: bool = True
    check_final_bounds: bool = True
    flag_correct_evictions: bool = True
    max_violations: int = 200
    tolerate_check_errors: bool = False


class InvariantMonitor(Middleware):
    """Observes a cluster and records violations of the paper's invariants.

    A pure-observation :class:`~repro.core.middleware.Middleware`:
    ``attach_monitor`` adds it to the cluster's middleware chain, whose
    pipelines feed it view changes, evictions, departures and both delivery
    channels (broadcast deliveries and accepted group messages).

    Usage::

        monitor = InvariantMonitor()
        cluster.attach_monitor(monitor)
        ...run a (faulty) scenario...
        monitor.finalize()
        monitor.assert_clean()
    """

    def __init__(self, config: Optional[InvariantConfig] = None) -> None:
        self.config = config or InvariantConfig()
        self.violations: List[InvariantViolation] = []
        self.checks_run = 0
        self._cluster = None
        self._exempt: Set[str] = set()
        # Evictions are asynchronous: the decision is observed immediately
        # (``_pending_evictions``), but the identity only becomes banned for
        # re-admission once the eviction's leave actually removes the node
        # (``_evicted``) — until then it legitimately appears in views.
        self._pending_evictions: Set[str] = set()
        self._evicted: Set[str] = set()
        self._eviction_decisions = 0
        self._group_epochs: Dict[str, int] = {}
        self._ever_members: Dict[str, Set[str]] = {}
        # Smallest size each group ever had: the reference for the claimed
        # sender-group size of accepted messages.  Comparing against the
        # *current* size would false-positive when a merge grows the group
        # while honestly-sized shares are still in flight.
        self._min_sizes: Dict[str, int] = {}
        self._delivered_digests: Dict[str, str] = {}

    # ----------------------------------------------------------------- wiring

    def setup(self, cluster) -> None:
        """Middleware hook: the hosting chain was installed on ``cluster``."""
        self.bind(cluster)

    def bind(self, cluster) -> None:
        """Snapshot ``cluster``'s membership history as the audit baseline.

        No per-node wiring happens here: deliveries and accepted group
        messages arrive through the chain's ``on_deliver`` pipeline, which
        the cluster distributes to every node (present and future).
        """
        self._cluster = cluster
        for view in cluster.engine.groups.values():
            self._group_epochs[view.group_id] = view.epoch
            self._ever_members.setdefault(view.group_id, set()).update(view.members)
            self._track_min_size(view)

    def exempt(self, addresses) -> None:
        """Exclude ``addresses`` from the wrongful-eviction check.

        Fault plans exempt every address they partition or crash: such nodes
        legitimately miss heartbeats, and evicting them is the *correct*
        reaction, exactly as the paper treats unresponsive nodes as failed.
        """
        self._exempt.update(addresses)

    # --------------------------------------------------------- middleware hooks

    def on_deliver(self, ctx: MiddlewareContext) -> None:
        if ctx.channel == "group":
            self._audit_accept(ctx.address, ctx.payload, ctx.senders)
        else:
            self._record_delivery(ctx.node, ctx.payload)

    def on_view_change(self, ctx: MiddlewareContext) -> None:
        self.on_view_changed(ctx.view)

    def on_eviction(self, ctx: MiddlewareContext) -> None:
        self.record_eviction(ctx.address)

    def on_node_left(self, ctx: MiddlewareContext) -> None:
        self.record_node_left(ctx.address)

    # ------------------------------------------------------------ engine hooks

    def on_view_changed(self, view: VGroupView) -> None:
        """Check one installed vgroup view (called on every reconfiguration)."""
        self.checks_run += 1
        engine = self._cluster.engine
        gmin, gmax = engine.config.gmin, engine.config.gmax
        slack = self.config.size_slack if self.config.size_slack is not None else gmin
        group_id = view.group_id

        if view.size < 1:
            self._violation("group_size", group_id, "installed an empty view")
        elif view.size > gmax + slack:
            self._violation(
                "group_size",
                group_id,
                f"size {view.size} exceeds gmax={gmax} beyond the merge transient (+{slack})",
            )

        previous_epoch = self._group_epochs.get(group_id)
        if previous_epoch is not None and view.epoch < previous_epoch:
            self._violation(
                "epoch_regression",
                group_id,
                f"epoch moved backwards: {previous_epoch} -> {view.epoch}",
            )
        self._group_epochs[group_id] = view.epoch

        if self._evicted:
            readmitted = self._evicted.intersection(view.members)
            for address in sorted(readmitted):
                self._violation(
                    "evicted_readmitted",
                    address,
                    f"evicted identity re-accepted into {group_id}",
                )
        self._ever_members.setdefault(group_id, set()).update(view.members)
        self._track_min_size(view)

    def _track_min_size(self, view: VGroupView) -> None:
        previous = self._min_sizes.get(view.group_id)
        if previous is None or view.size < previous:
            self._min_sizes[view.group_id] = view.size

    def record_node_left(self, address: str) -> None:
        """A node actually left the system; pending evictions become final."""
        if address in self._pending_evictions:
            self._pending_evictions.discard(address)
            self._evicted.add(address)

    def record_eviction(self, address: str) -> None:
        """Record an eviction decided by the cluster's majority-suspicion rule."""
        self._eviction_decisions += 1
        self._pending_evictions.add(address)
        if not self.config.flag_correct_evictions:
            return
        if address in self._exempt:
            return
        cluster = self._cluster
        node = cluster.nodes.get(address)
        if node is None or not node.is_correct:
            return
        if cluster.network.is_partitioned(address):
            return
        self._violation(
            "correct_evicted",
            address,
            "a correct, responsive node was evicted (Byzantine eviction attack succeeded)",
        )

    # ------------------------------------------------------------- node hooks

    def _audit_accept(self, address: str, envelope, senders: Set[str]) -> None:
        """Audit one accepted group message at a correct node."""
        node = self._cluster.nodes.get(address)
        if node is None or not node.is_correct:
            return
        self.checks_run += 1
        source_group = envelope.source_group
        known = self._ever_members.get(source_group)
        if known is None:
            # Solo views (non-member senders) and groups the monitor never saw
            # are outside the membership history; nothing to audit against.
            return
        strangers = set(senders) - known
        if strangers:
            self._violation(
                "forged_sender",
                node.address,
                f"group message {envelope.gm_id} accepted with non-member senders "
                f"{sorted(strangers)} of group {source_group}",
            )
        if self.config.check_claimed_size:
            # The claimed sender-group size must be plausible: shares from an
            # honest sender carry the group's size at send time, which is
            # never below the smallest size the group ever had.  A forger
            # claiming a smaller size (to shrink the acceptance majority)
            # yields a sender count below the historical-minimum majority.
            min_size = self._min_sizes.get(source_group)
            if min_size is not None and len(senders) < majority_threshold(min_size):
                self._violation(
                    "forged_majority",
                    node.address,
                    f"group message {envelope.gm_id} accepted with {len(senders)} senders, "
                    f"below the majority of {source_group}'s smallest-ever size {min_size} "
                    f"(claimed {envelope.sender_group_size})",
                )
        if not any(self._is_correct(sender) for sender in senders):
            self._violation(
                "forged_all_byzantine",
                node.address,
                f"group message {envelope.gm_id} accepted from exclusively Byzantine "
                f"senders {sorted(senders)}",
            )

    def _record_delivery(self, node, message) -> None:
        """Check broadcast-payload agreement across correct nodes."""
        if not node.is_correct:
            return
        digest = digest_object(message.payload)
        previous = self._delivered_digests.get(message.bcast_id)
        if previous is None:
            self._delivered_digests[message.bcast_id] = digest
        elif previous != digest:
            self._violation(
                "broadcast_mismatch",
                node.address,
                f"broadcast {message.bcast_id} delivered with payload digest {digest[:12]} "
                f"but another correct node delivered {previous[:12]} (equivocation won)",
            )

    # ------------------------------------------------------------- SMR checks

    def check_smr_prefix_consistency(
        self, cluster=None, require_equality: bool = False
    ) -> None:
        """Assert per-vgroup SMR decided logs are prefix-consistent.

        Sound for the asynchronous (PBFT) engine under static membership:
        PBFT executes in gap-free sequence order, so a replica that missed
        decisions (partitioned, on the losing side of a split) *lags* but
        never diverges, and view changes carry prepared operations so
        decided prefixes survive a heal.  The synchronous engine decides
        instances independently at round boundaries and offers no such
        total-order guarantee under message loss — do not run this check
        against Sync scenarios with drops.

        With ``require_equality`` the check demands eventual per-vgroup log
        **equality**: a quiesced scenario must leave every correct member of
        a vgroup with the *same* decided log, not merely a consistent
        prefix.  That is only achievable — and only demanded — when the
        liveness-restoring recovery machinery is on: PBFT checkpointing and
        state transfer (:mod:`repro.smr.checkpoint`), which lets an isolated
        then healed replica close its log gap even with no pending requests
        in the system.
        """
        cluster = cluster if cluster is not None else self._cluster
        for group_id, logs in sorted(cluster_smr_logs(cluster).items()):
            self.checks_run += 1
            for mismatch in check_agreement_logs(
                logs, require_equality=require_equality
            ):
                self._violation("smr_divergence", group_id, mismatch)

    # ---------------------------------------------------------------- results

    def finalize(self) -> List[InvariantViolation]:
        """End-of-run checks: structural validity and settled size bounds."""
        engine = self._cluster.engine
        try:
            engine.validate()
        except Exception as exc:
            # Counted, never silently swallowed (atumlint ATL004): the
            # error is always visible in the metrics and the violation
            # list, and propagates unless fault replay opted into
            # tolerating it.
            self._violation("structure", "engine", str(exc))
            self._cluster.sim.metrics.increment("invariants.check_errors")
            if not self.config.tolerate_check_errors:
                raise
        for address in sorted(self._evicted):
            if address in engine.node_group:
                self._violation(
                    "evicted_readmitted", address, "evicted identity is a member at finalize"
                )
        self._check_directory_reconciliations(engine)
        if self.config.check_final_bounds:
            gmin, gmax = engine.config.gmin, engine.config.gmax
            for group_id, view in engine.groups.items():
                if view.size > gmax:
                    self._violation(
                        "final_group_size", group_id, f"settled at size {view.size} > gmax={gmax}"
                    )
                elif view.size < gmin and len(engine.groups) > 1:
                    self._violation(
                        "final_group_size", group_id, f"settled at size {view.size} < gmin={gmin}"
                    )
        return self.violations

    def _check_directory_reconciliations(self, engine) -> None:
        """Replay split-brain merges recorded by the cluster.

        Two invariants per reconciliation (see
        :mod:`repro.overlay.directory`):

        * **directory_divergence** — the merge decision the cluster enforced
          must equal the one recomputed from the recorded per-side
          directories (the merge is a pure function of the side sets, so a
          mismatch means a side's log and the enforced outcome disagree).
        * **evicted_readmitted_across_sides** — an address evicted on either
          side must not be a member after the heal; a cross-side deferral
          that never gets enforced at merge would surface here.
        """
        reconciliations = getattr(self._cluster, "_directory_reconciliations", None)
        if not reconciliations:
            return
        from repro.overlay.directory import SideDirectory, merge_directories

        for record in reconciliations:
            self.checks_run += 1
            sides = [
                SideDirectory(
                    side_index=snapshot["side_index"],
                    members=frozenset(snapshot["members"]),
                    joined=set(snapshot["joined"]),
                    left=set(snapshot["left"]),
                    evicted=set(snapshot["evicted"]),
                )
                for snapshot in record["sides"]
            ]
            recomputed = merge_directories(sides)
            decision = record["decision"]
            if (
                recomputed.evicted != decision.evicted
                or recomputed.admitted != decision.admitted
                or recomputed.revoked != decision.revoked
            ):
                self._violation(
                    "directory_divergence",
                    "merge",
                    f"enforced merge decision {decision} differs from the decision "
                    f"recomputed over the recorded side directories {recomputed}",
                )
            for address in sorted(decision.evicted):
                if address in engine.node_group:
                    self._violation(
                        "evicted_readmitted_across_sides",
                        address,
                        "evicted on one split side but still a member after the heal",
                    )

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` with a readable report unless violation-free."""
        if self.violations:
            report = "\n".join(str(violation) for violation in self.violations[:20])
            raise AssertionError(
                f"{len(self.violations)} invariant violation(s) detected:\n{report}"
            )

    def summary(self) -> Dict[str, Any]:
        """Compact outcome for scenario rows and shard snapshots."""
        by_kind: Dict[str, int] = {}
        for violation in self.violations:
            by_kind[violation.kind] = by_kind.get(violation.kind, 0) + 1
        return {
            "violations": len(self.violations),
            "checks_run": self.checks_run,
            "by_kind": by_kind,
            "evictions_observed": self._eviction_decisions,
        }

    # ----------------------------------------------------------------- helpers

    def _is_correct(self, address: str) -> bool:
        node = self._cluster.nodes.get(address)
        # Engine-granularity nodes (growth workloads join addresses that have
        # no actor object) are correct by construction.
        return True if node is None else node.is_correct

    def _violation(self, kind: str, subject: str, detail: str) -> None:
        if len(self.violations) >= self.config.max_violations:
            return
        now = self._cluster.sim.now if self._cluster is not None else 0.0
        self.violations.append(
            InvariantViolation(kind=kind, subject=subject, time=now, detail=detail)
        )


def cluster_smr_logs(cluster) -> Dict[str, List[List[str]]]:
    """Per-vgroup decided-operation logs of correct member nodes.

    Groups each correct member node's ``replica.decided_log`` (as op-id
    sequences) under its current vgroup, for prefix-consistency checking
    with :func:`check_agreement_logs`.  Meaningful for static-membership
    scenarios: a node that switched vgroups mid-run carries its old log
    into the new group.
    """
    logs: Dict[str, List[List[str]]] = {}
    for node in cluster.nodes.values():
        if not node.is_correct or not node.is_member or node.replica is None:
            continue
        group_id = node.group_id()
        if group_id is None:
            continue
        logs.setdefault(group_id, []).append(
            [operation.op_id for operation in node.replica.decided_log]
        )
    return logs


def check_agreement_logs(
    logs: Sequence[Sequence[str]], require_equality: bool = False
) -> List[str]:
    """Prefix-consistency (optionally equality) of per-replica decided logs.

    The harness-level agreement invariant: any two correct replicas of one
    SMR group must have decided the same operations in the same order up to
    the length of the shorter log (a lagging replica is fine, a *diverging*
    one is a safety violation).  Returns human-readable mismatch
    descriptions (empty = consistent).

    ``require_equality`` upgrades the check from safety to liveness: any
    length difference is a violation too.  Use it only for quiesced runs of
    scenarios whose recovery machinery (PBFT checkpointing + state
    transfer) promises to close log gaps, never for mid-run snapshots where
    lag is legitimate in-flight state.
    """
    mismatches: List[str] = []
    for left_index in range(len(logs)):
        for right_index in range(left_index + 1, len(logs)):
            left, right = logs[left_index], logs[right_index]
            diverged = False
            for position in range(min(len(left), len(right))):
                if left[position] != right[position]:
                    mismatches.append(
                        f"replicas {left_index} and {right_index} diverge at decision "
                        f"{position}: {left[position]!r} != {right[position]!r}"
                    )
                    diverged = True
                    break
            if require_equality and not diverged and len(left) != len(right):
                mismatches.append(
                    f"replicas {left_index} and {right_index} settled at different "
                    f"log lengths with equality required: {len(left)} != {len(right)}"
                )
    return mismatches


__all__ = [
    "InvariantMonitor",
    "InvariantConfig",
    "InvariantViolation",
    "check_agreement_logs",
    "cluster_smr_logs",
]
