"""ATL001 fixture: direct random use that must be flagged."""

import random
from random import Random


def draw():
    rng = Random(42)
    return rng.random() + random.random()
