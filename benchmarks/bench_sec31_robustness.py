"""Section 3.1: robustness analysis of volatile groups.

Regenerates the worked examples of the group-size trade-off (g = 4 versus
g = 20 at 5% faults) and the claim that k = 4 keeps all vgroups robust with
probability ~0.999 under 6% simultaneous arbitrary faults.
"""

from repro.analysis import (
    format_table,
    monte_carlo_vgroup_failure,
    optimal_group_size_table,
    vgroup_failure_probability,
)
from repro.analysis.robustness import logarithmic_group_size


def _run():
    examples = []
    for group_size in (4, 8, 12, 20):
        analytic = vgroup_failure_probability(group_size, 0.05, synchronous=True)
        estimated = monte_carlo_vgroup_failure(group_size, 0.05, trials=50_000)
        examples.append(
            {
                "group_size": group_size,
                "fault_probability": 0.05,
                "analytic_failure_prob": analytic,
                "monte_carlo_failure_prob": estimated,
            }
        )
    k_rows = optimal_group_size_table(system_size=2000, failure_probability=0.06)
    return examples, k_rows


def test_sec31_robustness(benchmark):
    examples, k_rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(format_table(examples, title="Vgroup failure probability at p=0.05 (paper: g=4 -> 0.014, g=20 -> 1.1e-8)"))
    print()
    print(format_table(k_rows, title="All-vgroups-robust probability at 6% faults, N=2000"))

    by_size = {row["group_size"]: row for row in examples}
    assert abs(by_size[4]["analytic_failure_prob"] - 0.014) < 0.002
    assert by_size[20]["analytic_failure_prob"] < 1e-7
    # k = 4 (the paper's recommended trade-off) keeps all vgroups robust w.h.p.
    k4 = next(row for row in k_rows if row["k"] == 4.0)
    assert k4["all_robust_probability"] > 0.99
    assert logarithmic_group_size(2000, 4) == k4["group_size"]
