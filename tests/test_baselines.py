"""Tests for the baseline systems (classic gossip, whole-system SMR, NFS)."""

import pytest

from repro.baselines import (
    ClassicGossipSimulation,
    GlobalSmrBaseline,
    GossipConfig,
    NfsServerModel,
    global_smr_latency,
)


class TestClassicGossip:
    def test_everyone_is_reached(self):
        simulation = ClassicGossipSimulation(GossipConfig(num_nodes=200, fanout=10))
        times = simulation.run_broadcast()
        assert len(times) == 200

    def test_latency_grows_with_rounds(self):
        simulation = ClassicGossipSimulation(GossipConfig(num_nodes=200, fanout=10, round_duration=1.5))
        latencies = simulation.delivery_latencies()
        assert min(latencies) == 0.0
        assert max(latencies) % 1.5 == pytest.approx(0.0)

    def test_dissemination_is_logarithmic(self):
        simulation = ClassicGossipSimulation(GossipConfig(num_nodes=850, fanout=15))
        rounds = simulation.rounds_to_full_coverage()
        assert rounds <= 6

    def test_larger_fanout_fewer_rounds(self):
        small = ClassicGossipSimulation(GossipConfig(num_nodes=500, fanout=2), seed=1)
        large = ClassicGossipSimulation(GossipConfig(num_nodes=500, fanout=20), seed=1)
        assert large.rounds_to_full_coverage() <= small.rounds_to_full_coverage()

    def test_faster_than_atum_sync_would_be(self):
        # The gossip baseline has no BFT phase, so its max latency should be
        # well below the ~8 rounds Atum Sync needs (Figure 8's ordering).
        simulation = ClassicGossipSimulation(GossipConfig(num_nodes=850, fanout=15, round_duration=1.5))
        assert max(simulation.delivery_latencies()) < 8 * 1.5


class TestGlobalSmr:
    def test_paper_configuration_latency(self):
        # 850 nodes, 50 tolerated faults, 1.5 s rounds -> 76.5 s.
        assert global_smr_latency(850, 50, 1.5) == pytest.approx(76.5)

    def test_default_faults_derived_from_size(self):
        assert global_smr_latency(9, round_duration=1.0) == pytest.approx(5.0)

    def test_latencies_one_per_node(self):
        baseline = GlobalSmrBaseline(num_nodes=100, tolerated_faults=10, round_duration=1.5)
        latencies = baseline.delivery_latencies()
        assert len(latencies) == 100
        assert all(latency == pytest.approx(16.5) for latency in latencies)

    def test_small_simulation_consistent_with_analytic(self):
        baseline = GlobalSmrBaseline(num_nodes=7, round_duration=0.5)
        simulated = baseline.simulate_small(num_nodes=7)
        analytic = global_smr_latency(7, round_duration=0.5)
        # The simulation includes the wait for the first round boundary, so it
        # may exceed the analytic value by up to two rounds.
        assert analytic <= simulated <= analytic + 2 * 0.5

    def test_whole_system_smr_much_slower_than_gossip(self):
        smr = global_smr_latency(850, 50, 1.5)
        gossip = ClassicGossipSimulation(GossipConfig(num_nodes=850, fanout=15, round_duration=1.5))
        assert smr > max(gossip.delivery_latencies()) * 5


class TestNfs:
    def test_read_latency_grows_with_size(self):
        server = NfsServerModel()
        server.store("small", 2 * 1024 * 1024)
        server.store("large", 512 * 1024 * 1024)
        assert server.read_latency("large") > server.read_latency("small")

    def test_latency_per_mb_decreases_with_size(self):
        server = NfsServerModel()
        server.store("small", 2 * 1024 * 1024)
        server.store("large", 2 * 1024 * 1024 * 1024)
        assert server.read_latency_per_mb("large") < server.read_latency_per_mb("small")

    def test_unknown_file_raises(self):
        server = NfsServerModel()
        with pytest.raises(KeyError):
            server.read_latency("ghost")

    def test_negative_size_rejected(self):
        server = NfsServerModel()
        with pytest.raises(ValueError):
            server.store("bad", -1)
