"""ATL006 support: metrics registry generation, docs/METRICS.md, stale checks."""

from lint_utils import REPO_ROOT, SRC
from repro.lint.metrics_registry import METRICS
from repro.lint.metrics_scan import (
    MATRIX_MODULE,
    registry_diff,
    render_doc,
    render_registry,
    scan_metrics,
)


def fresh_scan():
    return scan_metrics([SRC], REPO_ROOT)


class TestRegistryFreshness:
    def test_registry_matches_a_fresh_scan_in_both_directions(self):
        missing, orphaned = registry_diff(fresh_scan(), METRICS)
        assert missing == [], "metric used in code but absent from the registry"
        assert orphaned == [], "registry entry no longer used anywhere"

    def test_regenerating_the_registry_is_a_noop(self):
        committed = (SRC / "lint" / "metrics_registry.py").read_text(encoding="utf-8")
        assert render_registry(fresh_scan()) == committed

    def test_regenerating_the_doc_is_a_noop(self):
        committed = (REPO_ROOT / "docs" / "METRICS.md").read_text(encoding="utf-8")
        assert render_doc(fresh_scan()) == committed


class TestRegistryContents:
    def test_matrix_columns_are_marked(self):
        scanned = fresh_scan()
        matrix_names = [n for n, info in scanned.items() if info.matrix_column]
        assert matrix_names, "scenarios.py reads metric literals into matrix rows"
        for name in matrix_names:
            assert MATRIX_MODULE in scanned[name].modules
            assert METRICS[name]["matrix_column"] is True

    def test_registry_records_kind_and_owning_modules(self):
        entry = METRICS["invariants.check_errors"]
        assert entry["kind"] == "counter"
        assert any("faults/invariants.py" in m for m in entry["modules"])

    def test_doc_lists_every_registered_name(self):
        doc = (REPO_ROOT / "docs" / "METRICS.md").read_text(encoding="utf-8")
        for name in METRICS:
            assert f"`{name}`" in doc


class TestRegistryDiff:
    def test_detects_missing_and_orphaned(self):
        scanned = {"a.used": object(), "b.new": object()}
        registered = {"a.used": {}, "c.gone": {}}
        missing, orphaned = registry_diff(scanned, registered)
        assert missing == ["b.new"]
        assert orphaned == ["c.gone"]
