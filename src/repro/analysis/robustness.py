"""Robustness analysis of volatile groups (paper section 3.1).

A vgroup of size ``g`` running the synchronous engine tolerates
``f = (g - 1) // 2`` faults; the asynchronous engine tolerates
``f = (g - 1) // 3``.  If each node is independently faulty with probability
``p``, the number of faults in a vgroup follows a binomial distribution
``B(g, p)`` and the vgroup *fails* when the number of faults exceeds ``f``.

The paper's worked example: with ``p = 0.05``, a 4-node vgroup fails with
probability ~0.014 while a 20-node vgroup fails with probability ~1.1e-8; and
with ``k = 4`` (so ``g = 4 log2 N``), even 6% simultaneous faults leave all
vgroups robust with probability ~0.999.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from scipy import stats

from repro.sim.rng import named_stream
from repro.smr.base import async_fault_threshold, sync_fault_threshold


def fault_threshold(group_size: int, synchronous: bool = True) -> int:
    """Faults tolerated by a vgroup of the given size."""
    if synchronous:
        return sync_fault_threshold(group_size)
    return async_fault_threshold(group_size)


def vgroup_failure_probability(
    group_size: int, failure_probability: float, synchronous: bool = True
) -> float:
    """Probability that a vgroup of ``group_size`` exceeds its fault threshold.

    ``Pr[X > f]`` with ``X ~ B(g, p)``.
    """
    if not 0.0 <= failure_probability <= 1.0:
        raise ValueError("failure_probability must be in [0, 1]")
    threshold = fault_threshold(group_size, synchronous)
    return float(stats.binom.sf(threshold, group_size, failure_probability))


def all_vgroups_robust_probability(
    system_size: int,
    group_size: int,
    failure_probability: float,
    synchronous: bool = True,
) -> float:
    """Probability that *every* vgroup of the system stays robust.

    The system has roughly ``system_size / group_size`` vgroups; vgroup
    compositions are independent uniform samples thanks to random walk
    shuffling, so failures are treated as independent across vgroups.
    """
    if group_size < 1 or system_size < 1:
        raise ValueError("sizes must be positive")
    group_count = max(1, round(system_size / group_size))
    per_group_failure = vgroup_failure_probability(
        group_size, failure_probability, synchronous
    )
    return float((1.0 - per_group_failure) ** group_count)


def logarithmic_group_size(system_size: int, k: int = 4) -> int:
    """The logarithmic-grouping target ``g = k * log2(N)``."""
    return max(1, int(round(k * math.log2(max(2, system_size)))))


def monte_carlo_vgroup_failure(
    group_size: int,
    failure_probability: float,
    synchronous: bool = True,
    trials: int = 100_000,
    rng: Optional[random.Random] = None,
) -> float:
    """Monte-Carlo estimate of :func:`vgroup_failure_probability` (cross-check)."""
    rng = rng or named_stream("analysis.robustness.monte_carlo")
    threshold = fault_threshold(group_size, synchronous)
    failures = 0
    for _ in range(trials):
        faulty = sum(1 for _ in range(group_size) if rng.random() < failure_probability)
        if faulty > threshold:
            failures += 1
    return failures / trials


def scenario_robustness_row(
    system_size: int,
    average_group_size: float,
    fault_fraction: float,
    synchronous: bool = True,
) -> Dict[str, float]:
    """Theoretical robustness figures for one adversarial-scenario row.

    Used by :mod:`repro.faults.scenarios` to put the paper's analytical
    failure probabilities (section 3.1) next to each empirical outcome: if a
    scenario's observed invariant violations are zero while the theory says
    all vgroups stay robust with high probability, the run corroborates the
    analysis; a violation in a regime the theory calls safe is a bug.
    """
    group_size = max(1, int(round(average_group_size)))
    return {
        "fault_fraction": float(fault_fraction),
        "fault_threshold": float(fault_threshold(group_size, synchronous)),
        "vgroup_failure_probability": vgroup_failure_probability(
            group_size, fault_fraction, synchronous
        ),
        "all_robust_probability": all_vgroups_robust_probability(
            system_size, group_size, fault_fraction, synchronous
        ),
    }


def catchup_latency_bound(
    group_size: int,
    byzantine_responders: int,
    base_timeout: float,
    backoff_factor: float,
    max_timeout: float,
    jitter: float = 0.0,
) -> Dict[str, float]:
    """Worst-case catch-up latency under adversarial state-transfer servers.

    A recovering replica fetches checkpointed state from the signers of the
    stable certificate, rotating responders on each retry and quarantining
    peers that serve garbage or stale certificates.  With ``b`` adversarial
    responders among ``group_size - 1`` candidate servers, responder
    rotation guarantees a correct server is queried after at most ``b``
    failed attempts, because rotation never re-queries a peer before every
    other candidate had a turn.  Each failed attempt ``i`` costs at most its
    request-layer timeout ``min(max_timeout, base_timeout * factor**i)``
    (a garbage or stale reply costs *less* — it is rejected on arrival and
    rotates immediately — so the all-stonewall adversary is the worst case),
    plus the jitter margin the retry scheduler may add.

    Returns the worst-case number of attempts and the summed latency bound;
    scenario rows put this analytical bound next to the empirically observed
    ``smr.checkpoint.catchup_latency`` so the matrix can fail when an
    adversary pushes recovery past what rotation theory promises.
    """
    if byzantine_responders < 0 or group_size < 2:
        raise ValueError("need a positive candidate set and non-negative adversaries")
    candidates = group_size - 1
    adversaries = min(byzantine_responders, candidates - 1)
    worst_attempts = adversaries + 1
    latency = 0.0
    for attempt in range(adversaries):
        timeout = min(max_timeout, base_timeout * backoff_factor**attempt)
        latency += timeout * (1.0 + jitter)
    return {
        "candidate_servers": float(candidates),
        "byzantine_responders": float(adversaries),
        "worst_case_attempts": float(worst_attempts),
        "worst_case_wait": latency,
    }


def optimal_group_size_table(
    system_size: int,
    failure_probability: float,
    k_values: tuple = (3, 4, 5, 6, 7),
    synchronous: bool = True,
) -> List[Dict[str, float]]:
    """Probability of all vgroups being robust for several values of ``k``.

    Reproduces the trade-off discussion of section 3.1: larger ``k`` (larger
    vgroups) buys robustness at the cost of SMR overhead.
    """
    rows: List[Dict[str, float]] = []
    for k in k_values:
        group_size = logarithmic_group_size(system_size, k)
        rows.append(
            {
                "k": float(k),
                "group_size": float(group_size),
                "all_robust_probability": all_vgroups_robust_probability(
                    system_size, group_size, failure_probability, synchronous
                ),
            }
        )
    return rows


__all__ = [
    "fault_threshold",
    "vgroup_failure_probability",
    "all_vgroups_robust_probability",
    "scenario_robustness_row",
    "catchup_latency_bound",
    "logarithmic_group_size",
    "monte_carlo_vgroup_failure",
    "optimal_group_size_table",
]
