"""Tests for split-brain membership reconciliation (repro.overlay.directory).

Unit-level: the pure merge function and the per-side bookkeeping of
:class:`SplitBrainCoordinator`, including the ISSUE-7 multi-split regime:
decider sets that span an already-healed overlapping split, and the
order-independence of cascaded heals over three overlapping splits.
Cluster-level wiring (per-side recording during a real split, merge
enforcement at heal, and the invariant monitor's replay of the recorded
directories) is exercised through the ``broadcast/split_brain_directory``
scenario in ``test_faults.py``.
"""

import itertools

import pytest

from repro.overlay.directory import (
    MergeDecision,
    SideDirectory,
    SplitBrainCoordinator,
    merge_directories,
)
from repro.sim.simulator import Simulator


def side(index, members, joined=(), left=(), evicted=()):
    directory = SideDirectory(side_index=index, members=frozenset(members))
    for address in joined:
        directory.record(0.0, "join", address)
    for address in left:
        directory.record(0.0, "leave", address)
    for address in evicted:
        directory.record(0.0, "evict", address)
    return directory


class TestMergeDirectories:
    def test_evicted_on_either_side_stays_evicted(self):
        decision = merge_directories(
            [side(0, ["a", "b"], evicted=["x"]), side(1, ["c", "d"], evicted=["y"])]
        )
        assert decision.evicted == frozenset({"x", "y"})
        assert decision.admitted == frozenset()
        assert decision.revoked == frozenset()

    def test_join_survives_when_no_side_evicted_it(self):
        decision = merge_directories(
            [side(0, ["a"], joined=["j"]), side(1, ["b"])]
        )
        assert decision.admitted == frozenset({"j"})
        assert decision.revoked == frozenset()

    def test_join_revoked_when_other_side_evicted_the_joiner(self):
        # The canonical rejoin attack: evicted on side 0, rejoins through
        # side 1 while the split hides the eviction.  Re-validation at
        # merge rolls the join back — eviction is a safety decision.
        decision = merge_directories(
            [side(0, ["a", "b"], evicted=["m"]), side(1, ["c", "d"], joined=["m"])]
        )
        assert decision.evicted == frozenset({"m"})
        assert decision.revoked == frozenset({"m"})
        assert decision.admitted == frozenset()

    def test_merge_is_order_independent(self):
        sides = [
            side(0, ["a"], joined=["j"], evicted=["x"]),
            side(1, ["b"], joined=["m"], evicted=["m"]),
            side(2, ["c"], evicted=["j2"]),
        ]
        forward = merge_directories(sides)
        backward = merge_directories(list(reversed(sides)))
        assert forward == backward

    def test_deferred_evictions_count_as_evictions(self):
        # A cross-side eviction is recorded as "evict_deferred" but must
        # carry the same weight at merge as an executed one.
        directory = side(0, ["a", "b"])
        directory.record(1.0, "evict_deferred", "z")
        decision = merge_directories([directory, side(1, ["c"], joined=["z"])])
        assert decision.evicted == frozenset({"z"})
        assert decision.revoked == frozenset({"z"})

    def test_leaves_do_not_affect_the_merge_sets(self):
        decision = merge_directories([side(0, ["a"], left=["a"]), side(1, ["b"])])
        assert decision == MergeDecision(
            evicted=frozenset(), admitted=frozenset(), revoked=frozenset()
        )


class TestSplitBrainCoordinator:
    def build(self):
        sim = Simulator(seed=1)
        coordinator = SplitBrainCoordinator(
            sim, sides=[("a0", "a1", "a2"), ("b0", "b1", "b2")]
        )
        return sim, coordinator

    def test_construction_counts_the_split_and_maps_sides(self):
        sim, coordinator = self.build()
        assert sim.metrics.counter("directory.splits") == 1
        assert coordinator.side_of("a1") == 0
        assert coordinator.side_of("b2") == 1
        assert coordinator.side_of("outsider") is None

    def test_join_binds_the_joiner_to_the_host_side(self):
        sim, coordinator = self.build()
        assert coordinator.record_join("j", host_side=1) == 1
        assert coordinator.side_of("j") == 1
        assert "j" in coordinator.sides[1].joined
        assert sim.metrics.counter("directory.joins_recorded") == 1
        # A join hosted entirely outside the split is split-irrelevant.
        assert coordinator.record_join("k", host_side=None) is None
        assert coordinator.side_of("k") is None

    def test_same_side_eviction_executes_immediately(self):
        sim, coordinator = self.build()
        assert coordinator.record_eviction(["a0", "a1"], "a2") is True
        assert "a2" in coordinator.sides[0].evicted
        assert sim.metrics.counter("directory.evictions_deferred") == 0

    def test_cross_side_eviction_is_deferred_but_recorded(self):
        sim, coordinator = self.build()
        assert coordinator.record_eviction(["a0", "a1"], "b0") is False
        assert "b0" in coordinator.sides[0].evicted  # deciding side's record
        assert sim.metrics.counter("directory.evictions_deferred") == 1
        # ... and the merge still enforces it.
        assert "b0" in coordinator.merge().evicted

    def test_eviction_with_outside_parties_executes(self):
        sim, coordinator = self.build()
        # Target outside the split: nothing to defer.
        assert coordinator.record_eviction(["a0"], "outsider") is True
        # Deciders outside the split: the target side records it.
        assert coordinator.record_eviction(["outsider"], "b1") is True
        assert "b1" in coordinator.sides[1].evicted

    def test_merge_is_idempotent(self):
        sim, coordinator = self.build()
        coordinator.record_eviction(["a0", "a1"], "b0")
        first = coordinator.merge()
        second = coordinator.merge()
        assert first is second
        assert sim.metrics.counter("directory.merges") == 1

    def test_snapshots_round_trip_through_the_invariant_replay(self):
        # The invariant monitor rebuilds SideDirectory objects from the
        # recorded snapshots and recomputes the merge; the recomputation
        # over a snapshot must equal the live decision.
        sim, coordinator = self.build()
        coordinator.record_join("m", host_side=1)
        coordinator.record_eviction(["a0", "a1"], "m")  # cross-side: deferred
        live = coordinator.merge()
        rebuilt = [
            SideDirectory(
                side_index=snapshot["side_index"],
                members=frozenset(snapshot["members"]),
                joined=set(snapshot["joined"]),
                left=set(snapshot["left"]),
                evicted=set(snapshot["evicted"]),
            )
            for snapshot in coordinator.side_snapshots()
        ]
        assert merge_directories(rebuilt) == live
        assert live.revoked == frozenset({"m"})


class TestEvictionDecidersSpanningSides:
    """Regression for the stale-decider bug (ISSUE 7 satellite).

    ``record_eviction`` used to bind the whole decider set to the side of
    the *first* sorted decider with a known side — a majority assembled
    from reports straddling an already-healed overlapping split was then
    mis-read as cross-side and deferred forever, even when most deciders
    shared the target's side and could genuinely observe it.
    """

    def test_stale_offside_decider_cannot_veto_an_onside_majority(self):
        sim = Simulator(seed=1)
        coordinator = SplitBrainCoordinator(
            sim, sides=[("a0", "a1", "a2"), ("b0", "b1", "b2")]
        )
        # "a0" sorts first, so the old code bound the majority to side 0
        # and deferred; b1/b2 share the target's side and must win.
        assert coordinator.record_eviction(["a0", "b1", "b2"], "b0") is True
        assert "b0" in coordinator.sides[1].evicted
        assert sim.metrics.counter("directory.evictions_deferred") == 0

    def test_true_cross_side_eviction_records_on_every_deciding_side(self):
        sim = Simulator(seed=1)
        coordinator = SplitBrainCoordinator(
            sim, sides=[("a0", "a1"), ("b0", "b1"), ("c0", "c1")]
        )
        assert coordinator.record_eviction(["a0", "b0"], "c0") is False
        # Both deciding sides carry the conviction into the merge; the
        # target's own side never convicted it.
        assert "c0" in coordinator.sides[0].evicted
        assert "c0" in coordinator.sides[1].evicted
        assert "c0" not in coordinator.sides[2].evicted
        assert sim.metrics.counter("directory.evictions_deferred") == 1


class TestOverlappingHealOrderIndependence:
    """Property test (ISSUE 7): merge decisions of 3 overlapping splits are
    byte-identical under every heal permutation.

    Mirrors the cluster contract exactly: membership events fan out to every
    active coordinator, and when one split heals, its enforced evictions
    reach the *remaining* coordinators only as leaves — which never feed a
    merge decision.
    """

    # Eight nodes cut three different ways: by half, by quarter-pairing,
    # and by parity — every pair of splits overlaps.
    SPLITS = {
        0: [("n0", "n1", "n2", "n3"), ("n4", "n5", "n6", "n7")],
        1: [("n0", "n1", "n4", "n5"), ("n2", "n3", "n6", "n7")],
        2: [("n0", "n2", "n4", "n6"), ("n1", "n3", "n5", "n7")],
    }

    def run_heals(self, order):
        sim = Simulator(seed=1)
        active = {
            split_id: SplitBrainCoordinator(sim, sides)
            for split_id, sides in self.SPLITS.items()
        }
        # A join lands on whichever side hosts its group, per split.
        for split_id, host_side in ((0, 1), (1, 0), (2, None)):
            active[split_id].record_join("j", host_side)
        # Every eviction majority is offered to every active coordinator
        # (no short-circuit), exactly as the cluster does.
        for deciders, target in (
            (["n4", "n5", "n6"], "n7"),  # same-side everywhere: executes
            (["n4", "n5", "n6"], "n0"),  # split 0 defers; 1 and 2 execute
            (["n0", "n1"], "j"),  # cross-side on split 0: join revoked
        ):
            for coordinator in active.values():
                coordinator.record_eviction(deciders, target)
        decisions = {}
        for split_id in order:
            coordinator = active.pop(split_id)
            decision = coordinator.merge()
            decisions[split_id] = decision
            for address in sorted(decision.evicted):
                for other in active.values():
                    other.record_leave(address)
        return decisions

    def test_decisions_identical_under_every_heal_permutation(self):
        baseline = self.run_heals((0, 1, 2))
        baseline_bytes = {
            split_id: repr(
                (
                    tuple(sorted(decision.evicted)),
                    tuple(sorted(decision.admitted)),
                    tuple(sorted(decision.revoked)),
                )
            ).encode()
            for split_id, decision in baseline.items()
        }
        # The scenario is not vacuous: it exercises deferral and revocation.
        assert "j" in baseline[0].revoked
        assert "n0" in baseline[0].evicted
        for order in itertools.permutations(self.SPLITS):
            decisions = self.run_heals(order)
            assert decisions == baseline
            for split_id, decision in decisions.items():
                encoded = repr(
                    (
                        tuple(sorted(decision.evicted)),
                        tuple(sorted(decision.admitted)),
                        tuple(sorted(decision.revoked)),
                    )
                ).encode()
                assert encoded == baseline_bytes[split_id]
