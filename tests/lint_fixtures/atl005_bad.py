"""ATL005 fixture: attribute write missing from (inherited) __slots__."""


class Base:
    __slots__ = ("alpha",)

    def __init__(self):
        self.alpha = 0


class Leaf(Base):
    __slots__ = ("beta",)

    def __init__(self):
        super().__init__()
        self.alpha = 1  # inherited slot: fine
        self.beta = 2
        self.gamma = 3  # not declared anywhere in the chain
