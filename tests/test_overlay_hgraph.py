"""Tests for the H-graph overlay structure, including hypothesis property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.hgraph import HGraph, HGraphError


class TestConstruction:
    def test_bootstrap_single_vertex_self_loops(self):
        graph = HGraph.bootstrap("v0", cycles=3)
        assert graph.vertices == {"v0"}
        for cycle in range(3):
            assert graph.successor("v0", cycle) == "v0"
            assert graph.predecessor("v0", cycle) == "v0"
        graph.validate()

    def test_random_graph_is_valid(self):
        rng = random.Random(1)
        vertices = [f"v{i}" for i in range(20)]
        graph = HGraph.random(vertices, cycles=4, rng=rng)
        graph.validate()
        assert graph.vertices == set(vertices)

    def test_random_graph_empty_vertices_rejected(self):
        with pytest.raises(HGraphError):
            HGraph.random([], cycles=2, rng=random.Random(0))

    def test_zero_cycles_rejected(self):
        with pytest.raises(HGraphError):
            HGraph(0)


class TestStructure:
    def test_constant_degree(self):
        rng = random.Random(2)
        graph = HGraph.random([f"v{i}" for i in range(30)], cycles=5, rng=rng)
        for vertex in graph.vertices:
            assert graph.degree(vertex) == 2 * 5

    def test_neighbors_excludes_self(self):
        graph = HGraph.bootstrap("v0", cycles=2)
        assert graph.neighbors("v0") == set()

    def test_neighbors_bounded_by_two_per_cycle(self):
        rng = random.Random(3)
        graph = HGraph.random([f"v{i}" for i in range(40)], cycles=3, rng=rng)
        for vertex in graph.vertices:
            assert len(graph.neighbors(vertex)) <= 2 * 3

    def test_diameter_is_logarithmic(self):
        rng = random.Random(4)
        graph = HGraph.random([f"v{i}" for i in range(256)], cycles=4, rng=rng)
        # 256 vertices with 4 cycles: the diameter should be far below N.
        assert graph.estimated_diameter() <= 10

    def test_unknown_vertex_raises(self):
        graph = HGraph.bootstrap("v0", cycles=2)
        with pytest.raises(HGraphError):
            graph.neighbors("ghost")


class TestMutations:
    def test_insert_after_preserves_cycles(self):
        rng = random.Random(5)
        graph = HGraph.random([f"v{i}" for i in range(8)], cycles=3, rng=rng)
        graph.insert_vertex("new", ["v0", "v1", "v2"])
        graph.validate()
        assert "new" in graph
        assert graph.successor("v0", 0) == "new"

    def test_insert_wrong_arity_rejected(self):
        graph = HGraph.bootstrap("v0", cycles=3)
        with pytest.raises(HGraphError):
            graph.insert_vertex("new", ["v0"])

    def test_insert_duplicate_rejected(self):
        graph = HGraph.bootstrap("v0", cycles=1)
        graph.insert_vertex("a", ["v0"])
        with pytest.raises(HGraphError):
            graph.insert_vertex("a", ["v0"])

    def test_remove_closes_gaps(self):
        rng = random.Random(6)
        graph = HGraph.random([f"v{i}" for i in range(10)], cycles=2, rng=rng)
        predecessors = {c: graph.predecessor("v3", c) for c in range(2)}
        successors = {c: graph.successor("v3", c) for c in range(2)}
        graph.remove("v3")
        graph.validate()
        assert "v3" not in graph
        for cycle in range(2):
            # Predecessor and successor of the removed vertex become neighbours,
            # unless the removed vertex sat between them already (tiny cycles).
            assert graph.successor(predecessors[cycle], cycle) == successors[cycle]

    def test_cannot_remove_last_vertex(self):
        graph = HGraph.bootstrap("v0", cycles=2)
        with pytest.raises(HGraphError):
            graph.remove("v0")

    def test_growth_from_bootstrap(self):
        graph = HGraph.bootstrap("g0", cycles=3)
        for index in range(1, 12):
            existing = sorted(graph.vertices)
            rng = random.Random(index)
            insertion_points = [rng.choice(existing) for _ in range(3)]
            graph.insert_vertex(f"g{index}", insertion_points)
        graph.validate()
        assert len(graph) == 12


@settings(max_examples=30, deadline=None)
@given(
    n_vertices=st.integers(min_value=2, max_value=40),
    cycles=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
    mutations=st.lists(st.integers(min_value=0, max_value=10_000), max_size=12),
)
def test_property_random_mutations_keep_hamiltonian_invariant(n_vertices, cycles, seed, mutations):
    """Random insert/remove sequences keep every cycle Hamiltonian."""
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(n_vertices)]
    graph = HGraph.random(vertices, cycles, rng)
    counter = n_vertices
    for choice in mutations:
        if choice % 2 == 0 or len(graph) <= 2:
            # Insert a new vertex at pseudo-random positions.
            existing = sorted(graph.vertices)
            insertion_points = [existing[(choice + c) % len(existing)] for c in range(cycles)]
            graph.insert_vertex(f"v{counter}", insertion_points)
            counter += 1
        else:
            victim = sorted(graph.vertices)[choice % len(graph)]
            graph.remove(victim)
        graph.validate()


@settings(max_examples=20, deadline=None)
@given(
    n_vertices=st.integers(min_value=2, max_value=60),
    cycles=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_every_vertex_has_degree_2hc(n_vertices, cycles, seed):
    rng = random.Random(seed)
    graph = HGraph.random([f"v{i}" for i in range(n_vertices)], cycles, rng)
    for vertex in graph.vertices:
        assert graph.degree(vertex) == 2 * cycles


class TestNeighborTableCache:
    """The per-vertex neighbour tables must never serve stale topology."""

    def build(self, n=16, hc=3, seed=7):
        return HGraph.random([f"v{i}" for i in range(n)], hc, random.Random(seed))

    def expected_tables(self, graph, vertex):
        pairs = tuple(
            (graph.predecessor(vertex, c), graph.successor(vertex, c))
            for c in range(graph.hc)
        )
        links = tuple(
            link
            for c in range(graph.hc)
            for link in ((c, graph.successor(vertex, c)), (c, graph.predecessor(vertex, c)))
        )
        gossip = []
        for pred, succ in pairs:
            for neighbor in (pred, succ):
                if neighbor != vertex and neighbor not in gossip:
                    gossip.append(neighbor)
        return pairs, links, tuple(gossip)

    def assert_tables_fresh(self, graph, vertex):
        pairs, links, gossip = self.expected_tables(graph, vertex)
        assert graph.cycle_pairs(vertex) == pairs
        assert graph.incident_links(vertex) == links
        assert graph.gossip_neighbors(vertex) == gossip
        assert graph.neighbors(vertex) == {n for _, n in links} - {vertex}

    def test_tables_match_direct_queries(self):
        graph = self.build()
        for vertex in graph.vertices:
            self.assert_tables_fresh(graph, vertex)

    def test_insert_after_invalidates_affected_vertices(self):
        graph = self.build()
        anchor = "v0"
        old_successor = graph.successor(anchor, 1)
        # Warm every cache, then splice a new vertex into cycle 1.
        for vertex in graph.vertices:
            graph.gossip_neighbors(vertex)
        version = graph.topology_version
        graph.insert_after("fresh", anchor, 1)
        assert graph.topology_version == version + 1
        assert graph.successor(anchor, 1) == "fresh"
        assert graph.predecessor("fresh", 1) == anchor
        assert graph.successor("fresh", 1) == old_successor
        # The spliced-around vertices serve fresh tables ("fresh" itself is
        # only on cycle 1 until the remaining insert_after calls land, so its
        # full table is not yet well defined).
        for vertex in (anchor, old_successor):
            self.assert_tables_fresh(graph, vertex)

    def test_remove_invalidates_ring_neighbours(self):
        graph = self.build()
        victim = "v5"
        ring = {victim}
        for cycle in range(graph.hc):
            ring.add(graph.predecessor(victim, cycle))
            ring.add(graph.successor(victim, cycle))
        for vertex in graph.vertices:
            graph.incident_links(vertex)
        graph.remove(victim)
        assert victim not in graph
        with pytest.raises(HGraphError):
            graph.cycle_pairs(victim)
        for vertex in ring - {victim}:
            self.assert_tables_fresh(graph, vertex)
        graph.validate()

    def test_split_style_insert_vertex_invalidates_every_cycle(self):
        """insert_vertex (the split path) must refresh all insertion points."""
        graph = self.build(n=12, hc=4)
        anchors = [graph.predecessor("v3", cycle) for cycle in range(graph.hc)]
        for vertex in graph.vertices:
            graph.gossip_neighbors(vertex)
        graph.insert_vertex("split-born", anchors)
        graph.validate()
        self.assert_tables_fresh(graph, "split-born")
        for anchor in set(anchors):
            self.assert_tables_fresh(graph, anchor)

    def test_derived_cache_dropped_with_vertex_table(self):
        graph = self.build()
        cache = graph.derived_cache("v1")
        cache["marker"] = object()
        anchor = graph.predecessor("v1", 0)
        graph.insert_after("newbie", anchor, 0)
        if graph.predecessor("v1", 0) == "newbie":
            # v1's table was invalidated: the derived cache starts empty.
            assert "marker" not in graph.derived_cache("v1")
        # Untouched vertices keep their derived entries.
        far = next(
            v for v in graph.vertices
            if v not in ("v1", "newbie", anchor) and "marker" not in graph.derived_cache(v)
        )
        graph.derived_cache(far)["keep"] = 1
        assert graph.derived_cache(far)["keep"] == 1
