"""Byzantine fault injection helpers.

The paper injects faults by modifying node behaviour (section 6.1.3): in the
synchronous deployment, Byzantine nodes keep sending heartbeats (so they are
not evicted) but otherwise do not participate, and periodically propose to
evict correct nodes; in the asynchronous deployment faulty nodes simply stay
quiet.  The node-level behaviours themselves ("silent", "evict_attack",
"equivocate", crash-recover) live in :class:`repro.core.node.AtumNode` and
:mod:`repro.faults.behaviours`; this module selects *which* nodes misbehave.

Both selectors enforce the paper's standing assumption that Byzantine nodes
are a strict minority — globally for :func:`select_byzantine`, per vgroup
for :func:`select_byzantine_per_group` — because every safety argument
(group-message majorities, SMR quorums, eviction votes) collapses once a
majority colludes.  Pass ``allow_majority=True`` only when deliberately
stepping outside the paper's fault model.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence

from repro.sim.rng import named_stream


def _reject_majority(count: int, population: int, allow_majority: bool, scope: str) -> None:
    if allow_majority or count == 0:
        return
    if 2 * count >= population:
        raise ValueError(
            f"selecting {count} Byzantine nodes out of {population} {scope} breaks the "
            f"paper's strict-minority assumption; pass allow_majority=True to force it"
        )


def select_byzantine(
    addresses: Sequence[str],
    count: Optional[int] = None,
    fraction: Optional[float] = None,
    rng: Optional[random.Random] = None,
    allow_majority: bool = False,
) -> List[str]:
    """Select a random subset of addresses to behave Byzantine.

    Exactly one of ``count`` or ``fraction`` must be given.  The selection is
    uniform, matching the paper's random placement of faulty nodes (random
    walk shuffling is precisely what makes this the worst an adversary can do
    without a join-leave attack).

    ``fraction`` rounds *down*: ``round`` could turn a one-third fraction
    into a Byzantine majority on small clusters (5 nodes at 0.5 would give
    banker's-rounded surprises), and the paper's adversary controls *at
    most* the stated fraction.  Selections amounting to half or more of the
    addresses are rejected unless ``allow_majority=True``.
    """
    if (count is None) == (fraction is None):
        raise ValueError("specify exactly one of count or fraction")
    if fraction is not None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        count = int(math.floor(fraction * len(addresses)))
    assert count is not None
    if count > len(addresses):
        raise ValueError("cannot select more Byzantine nodes than addresses")
    _reject_majority(count, len(addresses), allow_majority, "addresses")
    rng = rng or named_stream("workloads.byzantine.select")
    return sorted(rng.sample(list(addresses), count))


def select_byzantine_per_group(
    views: Iterable,
    fraction: float,
    rng: Optional[random.Random] = None,
) -> List[str]:
    """Select Byzantine nodes capped to a strict minority of *every* vgroup.

    A globally uniform selection can, by chance, hand the adversary a
    majority inside one unlucky vgroup — exactly the event the paper's
    analysis (section 3.1) bounds the probability of.  Adversarial scenario
    runs that must stay inside the fault model (so that zero invariant
    violations is the *expected* outcome) use this placement instead: per
    vgroup, ``floor(fraction * size)`` members capped at ``(size - 1) // 2``.

    ``views`` is an iterable of :class:`~repro.group.vgroup.VGroupView`
    (anything with ``group_id`` and ``members``); iteration order is
    normalised by ``group_id`` so the selection depends only on the views
    and the RNG state.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = rng or named_stream("workloads.byzantine.select_per_group")
    chosen: List[str] = []
    for view in sorted(views, key=lambda v: v.group_id):
        size = len(view.members)
        quota = min(int(math.floor(fraction * size)), (size - 1) // 2)
        if quota <= 0:
            continue
        chosen.extend(rng.sample(list(view.members), quota))
    return sorted(chosen)


__all__ = ["select_byzantine", "select_byzantine_per_group"]
