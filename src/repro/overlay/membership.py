"""The membership engine: joins, leaves, shuffling, splits and merges.

This engine is the vgroup-granularity heart of Atum.  It owns the
authoritative mapping of nodes to vgroups and the H-graph overlay, and it
executes the membership protocols of sections 3.2 and 3.3 as timed operations
on the simulator:

* **join** -- agreement at the contact vgroup, a random walk to select the
  hosting vgroup, agreement and state transfer there, followed by random walk
  shuffling and (if the vgroup outgrew ``gmax``) a split;
* **leave / eviction** -- agreement at the leaving node's vgroup, neighbour
  notification, then shuffling, or a merge if the vgroup shrank below
  ``gmin``;
* **random walk shuffling** -- after any membership change, the affected
  vgroup exchanges its members against uniformly sampled nodes from the whole
  system; exchanges whose chosen partner vgroup is already busy with another
  reconfiguration are *suppressed* (the effect measured in Figure 13);
* **logarithmic grouping** -- splits and merges keep every vgroup's size
  between ``gmin`` and ``gmax``.

Each protocol step is charged simulated time through a
:class:`repro.group.cost.GroupCostModel`, and vgroups process one
reconfiguration at a time (reconfigurations of the same vgroup serialize),
which is what limits the sustainable churn rate measured in Figure 7.

The engine deliberately works at vgroup granularity rather than simulating
every inter-node packet: growth and churn experiments involve more than a
thousand nodes, where packet-level simulation in Python would be prohibitive.
The node-level protocols (SMR, group messages, gossip) are implemented in
full elsewhere and calibrate this engine's cost model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.group.cost import GroupCostModel
from repro.group.vgroup import VGroupView
from repro.overlay.hgraph import HGraph
from repro.overlay.random_walk import WalkMode, structural_walk
from repro.sim.simulator import Simulator


class MembershipError(RuntimeError):
    """Raised on invalid membership operations (unknown node, double join...)."""


@dataclass
class MembershipConfig:
    """Overlay and grouping parameters of the membership engine.

    Attributes:
        hc: Number of H-graph cycles.
        rwl: Random walk length.
        gmax: Maximum vgroup size before a split.
        gmin: Minimum vgroup size before a merge (paper default: gmax / 2).
        walk_mode: Reply scheme of random walks (backward phase for Sync,
            certificates for Async).
        shuffle_enabled: Whether random walk shuffling runs after joins and
            leaves (disabling it is used in tests and ablations).
    """

    hc: int = 5
    rwl: int = 10
    gmax: int = 14
    gmin: int = 7
    walk_mode: WalkMode = WalkMode.BACKWARD_PHASE
    shuffle_enabled: bool = True

    def __post_init__(self) -> None:
        if self.gmin < 1 or self.gmax < self.gmin:
            raise ValueError(f"invalid group size bounds: gmin={self.gmin}, gmax={self.gmax}")
        if self.hc < 1 or self.rwl < 1:
            raise ValueError("hc and rwl must be at least 1")


@dataclass
class _OperationStats:
    """Bookkeeping for one in-flight join/leave operation."""

    kind: str
    node: str
    started_at: float
    completed_at: Optional[float] = None


class MembershipEngine:
    """Vgroup-granularity membership state and protocols."""

    def __init__(
        self,
        sim: Simulator,
        config: MembershipConfig,
        cost: Optional[GroupCostModel] = None,
        on_view_changed: Optional[Callable[[VGroupView], None]] = None,
        on_group_removed: Optional[Callable[[str], None]] = None,
        on_node_left: Optional[Callable[[str], None]] = None,
        on_join_completed: Optional[Callable[[str, str], None]] = None,
        cost_perturbation: Optional[Callable[[str, float], float]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.cost = cost or GroupCostModel()
        self.on_view_changed = on_view_changed
        self.on_group_removed = on_group_removed
        self.on_node_left = on_node_left
        self.on_join_completed = on_join_completed
        # Optional fault hook: maps ``(group_id, duration) -> duration`` and
        # lets fault plans model slow/straggler vgroups whose agreements take
        # longer than the cost model predicts.  ``None`` (the default) leaves
        # every reservation untouched, so unfaulted runs are byte-identical.
        self.cost_perturbation = cost_perturbation

        self.groups: Dict[str, VGroupView] = {}
        self.node_group: Dict[str, str] = {}
        self.graph: Optional[HGraph] = None
        # Indexed view of ``groups``: the group ids in creation order (dict
        # insertion order minus removals — removals never re-add ids, so this
        # list always equals ``list(self.groups)``).  Hot paths that used to
        # rebuild that list per random draw (walk relays, walk fallbacks,
        # contact selection) index into it directly instead.
        self._group_ids: List[str] = []

        self._busy_until: Dict[str, float] = {}
        self._relay_busy_until: Dict[str, float] = {}
        self._node_busy_until: Dict[str, float] = {}
        self._shuffling_groups: Set[str] = set()
        self._group_counter = itertools.count(1)
        self._rng = sim.rng.stream("membership")
        self._pending_ops: Dict[str, _OperationStats] = {}
        self._op_counter = itertools.count(1)

    # ------------------------------------------------------------------ queries

    @property
    def system_size(self) -> int:
        return len(self.node_group)

    @property
    def group_count(self) -> int:
        return len(self.groups)

    def group_of(self, node: str) -> VGroupView:
        group_id = self.node_group.get(node)
        if group_id is None:
            raise MembershipError(f"node {node!r} is not a member of the system")
        return self.groups[group_id]

    def view(self, group_id: str) -> VGroupView:
        if group_id not in self.groups:
            raise MembershipError(f"unknown vgroup {group_id!r}")
        return self.groups[group_id]

    def neighbor_views(self, group_id: str) -> List[VGroupView]:
        if self.graph is None:
            return []
        return [self.groups[g] for g in self.graph.neighbors(group_id) if g in self.groups]

    def pending_operations(self) -> int:
        return len(self._pending_ops)

    def has_pending_operation(self, node: str) -> bool:
        """Whether a join/leave operation for ``node`` is currently in flight."""
        return any(stats.node == node for stats in self._pending_ops.values())

    def average_group_size(self) -> float:
        if not self.groups:
            return 0.0
        return self.system_size / len(self.groups)

    def validate(self) -> None:
        """Check the cross-structure invariants (used by tests).

        * Every node belongs to exactly one vgroup, and that vgroup's view
          contains it.
        * Group views and the H-graph have the same vertex set.
        * Every H-graph cycle is a single Hamiltonian cycle.
        """
        for node, group_id in self.node_group.items():
            if group_id not in self.groups:
                raise MembershipError(f"node {node} points to missing group {group_id}")
            if node not in self.groups[group_id].member_set:
                raise MembershipError(f"group {group_id} does not contain {node}")
        for group_id, view in self.groups.items():
            for member in view.members:
                if self.node_group.get(member) != group_id:
                    raise MembershipError(
                        f"member {member} of {group_id} maps to {self.node_group.get(member)}"
                    )
        if self.graph is not None:
            if self.graph.vertices != set(self.groups):
                raise MembershipError("H-graph vertex set differs from the group set")
            self.graph.validate()

    # ------------------------------------------------------------- construction

    def bootstrap(self, node: str) -> VGroupView:
        """Create a brand new system containing only ``node`` (section 3.3.1)."""
        if self.groups:
            raise MembershipError("bootstrap on a non-empty system")
        group_id = self._new_group_id()
        view = VGroupView.create(group_id, [node])
        self.groups[group_id] = view
        self._group_ids.append(group_id)
        self.node_group[node] = group_id
        self.graph = HGraph.bootstrap(group_id, self.config.hc)
        self._notify_view(view)
        self._record_size()
        return view

    def build_static(self, nodes: Sequence[str], target_group_size: Optional[int] = None) -> None:
        """Directly construct a system of ``nodes`` without replaying growth.

        Nodes are partitioned into vgroups of roughly ``target_group_size``
        (defaulting to the midpoint of ``gmin`` and ``gmax``), and a random
        H-graph is built over the vgroups.  This mirrors the state an Atum
        deployment reaches after growing to that size, and is used by the
        latency and application experiments.
        """
        if self.groups:
            raise MembershipError("build_static on a non-empty system")
        if not nodes:
            raise MembershipError("build_static needs at least one node")
        size = target_group_size or max(self.config.gmin, (self.config.gmin + self.config.gmax) // 2)
        size = max(1, min(size, self.config.gmax))
        shuffled = list(nodes)
        self._rng.shuffle(shuffled)
        chunks: List[List[str]] = [shuffled[i : i + size] for i in range(0, len(shuffled), size)]
        # Avoid a trailing chunk below gmin by folding it into the previous one
        # (unless it is the only chunk).
        if len(chunks) > 1 and len(chunks[-1]) < self.config.gmin:
            chunks[-2].extend(chunks.pop())
            # The fold can push the merged chunk past gmax (size ≤ gmax plus a
            # trailing remainder up to gmin-1), and build_static never re-runs
            # _maybe_split — so without rebalancing the system would *start*
            # with an oversized vgroup.  Split the merged chunk back into two
            # halves whenever both halves reach gmin; each half is then at
            # most ceil((gmax + gmin - 1) / 2) ≤ gmax.  Only a configuration
            # with gmax < 2*gmin can leave the merged chunk unsplittable, and
            # then no partition of that remainder satisfies [gmin, gmax] at
            # all, so the single oversized group is the minimal violation.
            merged = chunks[-1]
            if len(merged) > self.config.gmax and len(merged) >= 2 * self.config.gmin:
                half = len(merged) // 2
                chunks[-1] = merged[:half]
                chunks.append(merged[half:])
        for chunk in chunks:
            group_id = self._new_group_id()
            view = VGroupView.create(group_id, chunk)
            self.groups[group_id] = view
            self._group_ids.append(group_id)
            for member in chunk:
                self.node_group[member] = group_id
        self.graph = HGraph.random(list(self._group_ids), self.config.hc, self._rng)
        for view in self.groups.values():
            self._notify_view(view)
        self._record_size()

    # ---------------------------------------------------------------- operations

    def join(self, node: str, contact_node: Optional[str] = None) -> None:
        """Start a join operation for ``node`` (section 3.3.2).

        The operation runs asynchronously on the simulator; its completion is
        observable through the metrics (``membership.join_latency``) and the
        ``on_join_completed`` callback.
        """
        if node in self.node_group:
            raise MembershipError(f"node {node!r} is already a member")
        if not self.groups:
            self.bootstrap(node)
            return
        if contact_node is not None and contact_node in self.node_group:
            contact_group = self.node_group[contact_node]
        else:
            contact_group = self._rng.choice(self._group_ids)
        op_id = f"join-{next(self._op_counter)}"
        self._pending_ops[op_id] = _OperationStats(kind="join", node=node, started_at=self.sim.now)
        self.sim.metrics.increment("membership.joins_started")
        self._join_phase_contact(op_id, node, contact_group)

    def leave(self, node: str, eviction: bool = False) -> None:
        """Start a leave (or eviction) operation for ``node`` (section 3.3.3)."""
        if node not in self.node_group:
            raise MembershipError(f"node {node!r} is not a member")
        op_id = f"leave-{next(self._op_counter)}"
        self._pending_ops[op_id] = _OperationStats(kind="leave", node=node, started_at=self.sim.now)
        self.sim.metrics.increment(
            "membership.evictions_started" if eviction else "membership.leaves_started"
        )
        self._leave_phase_agree(op_id, node)

    # ------------------------------------------------------------ join internals

    def _join_phase_contact(self, op_id: str, node: str, contact_group: str) -> None:
        """Phase 1: the contact vgroup agrees on the join request."""
        contact_group = self._existing_or_random(contact_group)
        if contact_group is None:
            self._abort(op_id)
            return
        view = self.groups[contact_group]
        duration = self.cost.join_agreement_latency(view.size)
        done = self._reserve(contact_group, duration)
        self._at(done, lambda: self._join_phase_walk(op_id, node, contact_group))

    def _join_phase_walk(self, op_id: str, node: str, contact_group: str) -> None:
        """Phase 2: a random walk from the contact vgroup selects the host."""
        walk_latency = self.cost.random_walk_latency(
            self.config.rwl,
            max(1, int(round(self.average_group_size()))),
            backward_phase=self.config.walk_mode is WalkMode.BACKWARD_PHASE,
        )
        self._charge_walk_relays(1)
        self.sim.metrics.increment("membership.walks_started")
        self._at(
            self.sim.now + walk_latency,
            lambda: self._join_phase_place(op_id, node, contact_group),
        )

    def _join_phase_place(self, op_id: str, node: str, contact_group: str) -> None:
        """Phase 3: agreement and state transfer at the selected vgroup."""
        host_group = self._walk_select(contact_group)
        if host_group is None:
            self._abort(op_id)
            return
        view = self.groups[host_group]
        duration = self.cost.agreement_latency(view.size) + self.cost.state_transfer_latency(
            self.config.hc, view.size
        )
        done = self._reserve(host_group, duration)
        self._at(done, lambda: self._join_phase_install(op_id, node, host_group))

    def _join_phase_install(self, op_id: str, node: str, host_group: str) -> None:
        """Phase 4: install the new member, notify neighbours, then shuffle."""
        host_group = self._existing_or_random(host_group)
        if host_group is None:
            self._abort(op_id)
            return
        if node in self.node_group:
            # The node joined through a concurrent path (should not happen).
            self._abort(op_id)
            return
        new_view = self.groups[host_group].add(node)
        self._install_view(new_view)
        self.node_group[node] = host_group
        self._record_size()
        self._complete(op_id)
        if self.on_join_completed is not None:
            self.on_join_completed(node, host_group)
        after_shuffle = lambda: self._maybe_split(host_group)
        if self.config.shuffle_enabled:
            self._shuffle(host_group, then=after_shuffle)
        else:
            after_shuffle()

    # ----------------------------------------------------------- leave internals

    def _leave_phase_agree(self, op_id: str, node: str) -> None:
        group_id = self.node_group.get(node)
        if group_id is None or group_id not in self.groups:
            self._abort(op_id)
            return
        view = self.groups[group_id]
        duration = self.cost.agreement_latency(view.size)
        done = self._reserve(group_id, duration)
        self._at(done, lambda: self._leave_phase_remove(op_id, node, group_id))

    def _leave_phase_remove(self, op_id: str, node: str, group_id: str) -> None:
        if group_id not in self.groups or self.node_group.get(node) != group_id:
            self._abort(op_id)
            return
        view = self.groups[group_id]
        new_view = view.remove(node)
        del self.node_group[node]
        if self.on_node_left is not None:
            self.on_node_left(node)
        if new_view.size == 0:
            # The last member of the last vgroup left: tear the system down,
            # or (if other vgroups exist) drop the empty vgroup from the overlay.
            self._remove_group(group_id)
            self._record_size()
            self._complete(op_id)
            return
        self._install_view(new_view)
        self._record_size()
        self._complete(op_id)
        if new_view.size < self.config.gmin and len(self.groups) > 1:
            self._merge(group_id)
        elif self.config.shuffle_enabled:
            self._shuffle(group_id, then=lambda: None)

    # --------------------------------------------------------- shuffling internals

    def _shuffle(self, group_id: str, then: Callable[[], None]) -> None:
        """Random walk shuffling: exchange the vgroup's members against random nodes.

        One random walk is started per member; walks proceed in parallel.  When
        a walk completes, the exchange is attempted: if the selected partner
        vgroup is itself reconfiguring (joining, leaving, splitting, merging or
        shuffling) or the chosen partner node already participates in another
        exchange, the exchange is suppressed (this is the effect Figure 13
        measures under aggressive growth).
        """
        if group_id not in self.groups:
            then()
            return
        view = self.groups[group_id]
        walk_latency = self.cost.random_walk_latency(
            self.config.rwl,
            max(1, int(round(self.average_group_size()))),
            backward_phase=self.config.walk_mode is WalkMode.BACKWARD_PHASE,
        )
        members = list(view.members)
        remaining = {"count": len(members)}

        def finish_one() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self._shuffling_groups.discard(group_id)
                then()

        if not members:
            then()
            return
        # The shuffling vgroup agrees on the whole batch of exchanges at once;
        # it is reserved once for that agreement and marked as shuffling so
        # that concurrent shuffles do not pick it as an exchange partner.
        self._shuffling_groups.add(group_id)
        batch_duration = self.cost.agreement_latency(view.size)
        self._reserve(group_id, batch_duration, earliest=self.sim.now + walk_latency)
        # One random walk per member: the vgroups relaying those walks spend a
        # slice of their capacity forwarding them (a major cost under churn).
        self._charge_walk_relays(len(members))
        for member in members:
            self._at(
                self.sim.now + walk_latency,
                lambda m=member: (self._attempt_exchange(group_id, m), finish_one()),
            )

    def _attempt_exchange(self, group_id: str, member: str) -> None:
        self.sim.metrics.increment("membership.exchanges_attempted")
        now = self.sim.now
        if group_id not in self.groups or self.node_group.get(member) != group_id:
            self.sim.metrics.increment("membership.exchanges_suppressed")
            return
        if self._node_busy_until.get(member, 0.0) > now:
            self.sim.metrics.increment("membership.exchanges_suppressed")
            return
        partner_group = self._walk_select(group_id)
        if partner_group is None or partner_group == group_id:
            self.sim.metrics.increment("membership.exchanges_suppressed")
            return
        if partner_group in self._shuffling_groups or self._busy_until.get(partner_group, 0.0) > now:
            # The chosen exchange partner vgroup already participates in
            # another reconfiguration: the exchange is suppressed (Figure 13).
            self.sim.metrics.increment("membership.exchanges_suppressed")
            return
        partner_view = self.groups[partner_group]
        if partner_view.size == 0:
            self.sim.metrics.increment("membership.exchanges_suppressed")
            return
        candidates = [
            node
            for node in partner_view.members
            if self._node_busy_until.get(node, 0.0) <= now
        ]
        if not candidates:
            self.sim.metrics.increment("membership.exchanges_suppressed")
            return
        partner_member = self._rng.choice(candidates)
        # Swap the two nodes between the two vgroups.  Both nodes are busy for
        # the duration of the two vgroups' (concurrent) agreements on the swap.
        own_view = self.groups[group_id]
        new_own = own_view.remove(member).add(partner_member)
        new_partner = partner_view.remove(partner_member).add(member)
        self._install_view(new_own)
        self._install_view(new_partner)
        self.node_group[member] = partner_group
        self.node_group[partner_member] = group_id
        exchange_duration = self.cost.agreement_latency(new_partner.size)
        self._node_busy_until[member] = now + exchange_duration
        self._node_busy_until[partner_member] = now + exchange_duration
        self.sim.metrics.increment("membership.exchanges_completed")

    # ---------------------------------------------------- logarithmic grouping

    def _maybe_split(self, group_id: str) -> None:
        if group_id not in self.groups:
            return
        view = self.groups[group_id]
        if view.size <= self.config.gmax:
            return
        assert self.graph is not None
        self.sim.metrics.increment("membership.splits")
        members = list(view.members)
        self._rng.shuffle(members)
        half = len(members) // 2
        staying, moving = members[:half], members[half:]
        new_group_id = self._new_group_id()
        new_view = VGroupView.create(new_group_id, moving)
        reduced_view = view.with_members(staying)
        self.groups[new_group_id] = new_view
        self._group_ids.append(new_group_id)
        self._install_view(reduced_view)
        for member in moving:
            self.node_group[member] = new_group_id
        # One random walk per cycle selects where to splice the new vgroup in.
        insertion_points: List[str] = []
        for _cycle in range(self.config.hc):
            target = self._walk_select(group_id)
            insertion_points.append(target if target is not None else group_id)
        self.graph.insert_vertex(new_group_id, insertion_points)
        self._notify_view(new_view)
        self._reserve(group_id, self.cost.agreement_latency(view.size))
        self._reserve(new_group_id, self.cost.agreement_latency(new_view.size))

    def _merge(self, group_id: str) -> None:
        """Merge an undersized vgroup into a random neighbouring vgroup."""
        if group_id not in self.groups or self.graph is None:
            return
        neighbors = [g for g in self.graph.neighbors(group_id) if g in self.groups]
        if not neighbors:
            return
        self.sim.metrics.increment("membership.merges")
        moving = list(self.groups[group_id].members)
        # Prefer a neighbour the merge fits into without exceeding gmax:
        # under heavy eviction churn several undersized vgroups can merge
        # concurrently, and a blind random choice lets them pile onto one
        # target far past the split transient.  When every neighbour would
        # overflow, take the smallest so the overshoot stays minimal.
        fitting = [
            g for g in neighbors if self.groups[g].size + len(moving) <= self.config.gmax
        ]
        if fitting:
            target = self._rng.choice(fitting)
        else:
            target = min(neighbors, key=lambda g: (self.groups[g].size, g))
        merged_view = self.groups[target].with_members(
            list(self.groups[target].members) + moving
        )
        self._install_view(merged_view)
        for member in moving:
            self.node_group[member] = target
        self._remove_group(group_id)
        duration = self.cost.agreement_latency(merged_view.size)
        done = self._reserve(target, duration)
        after_shuffle = lambda: self._maybe_split(target)
        if self.config.shuffle_enabled:
            self._at(done, lambda: self._shuffle(target, then=after_shuffle))
        else:
            self._at(done, after_shuffle)

    def enforce_bounds(self) -> int:
        """Re-establish ``[gmin, gmax]`` after a runtime bounds change.

        The engine reads ``self.config`` live, but splits and merges are only
        *triggered* by joins, leaves and shuffles — so when a policy narrows
        ``gmax`` (or raises ``gmin``) through the ParameterBus, existing
        vgroups can sit outside the new bounds indefinitely.  This walks the
        groups in deterministic (sorted id) order, splitting every oversized
        vgroup until none exceeds ``gmax`` and merging undersized ones, and
        returns the number of reconfigurations started.  Merges may cascade
        through the usual asynchronous ``_merge`` → shuffle → ``_maybe_split``
        path; the transient overshoot stays within the invariant monitor's
        live slack.
        """
        started = 0
        for _round in range(32):  # halving converges fast; guard stays cold
            oversized = [
                group_id
                for group_id in sorted(self.groups)
                if self.groups[group_id].size > self.config.gmax
            ]
            if not oversized:
                break
            for group_id in oversized:
                if group_id in self.groups:
                    self._maybe_split(group_id)
                    started += 1
        if len(self.groups) > 1:
            for group_id in sorted(self.groups):
                view = self.groups.get(group_id)
                if view is None or len(self.groups) <= 1:
                    continue
                if view.size < self.config.gmin:
                    self._merge(group_id)
                    started += 1
        return started

    # ------------------------------------------------------------------ helpers

    def _new_group_id(self) -> str:
        return f"vg-{next(self._group_counter)}"

    def _charge_walk_relays(self, walk_count: int) -> None:
        """Charge the vgroups that relay ``walk_count`` random walks.

        Each walk traverses ``rwl`` vgroups chosen (approximately) uniformly;
        every traversed vgroup spends :meth:`GroupCostModel.walk_relay_occupancy`
        of its serial capacity forwarding the walk.  This is what makes long
        random walks expensive under churn (Figure 7's rwl sensitivity).
        """
        if not self.groups:
            return
        group_ids = self._group_ids
        group_size = max(1, int(round(self.average_group_size())))
        occupancy = self.cost.walk_relay_occupancy(group_size)
        if occupancy <= 0:
            return
        hops = walk_count * self.config.rwl
        for _ in range(hops):
            relay = group_ids[self._rng.randrange(len(group_ids))]
            self._reserve_relay(relay, occupancy)

    def _at(self, time: float, callback: Callable[[], None]) -> None:
        self.sim.schedule_at(max(time, self.sim.now), callback, tag="membership")

    def _reserve(self, group_id: str, duration: float, earliest: Optional[float] = None) -> float:
        """Serialize reconfigurations of a vgroup; returns the completion time.

        Reconfigurations also queue behind any walk-relaying work the vgroup
        has pending (:meth:`_reserve_relay`), so relayed walks consume real
        capacity even though they do not mark the vgroup as reconfiguring.
        """
        if self.cost_perturbation is not None:
            duration = self.cost_perturbation(group_id, duration)
        start = max(
            self.sim.now if earliest is None else earliest,
            self._busy_until.get(group_id, 0.0),
            self._relay_busy_until.get(group_id, 0.0),
        )
        completion = start + duration
        self._busy_until[group_id] = completion
        return completion

    def _reserve_relay(self, group_id: str, duration: float) -> float:
        """Charge walk-relaying work to a vgroup without flagging it as busy.

        Relaying a random walk consumes the vgroup's serial capacity but does
        not constitute a reconfiguration, so it must not cause shuffle
        exchanges that pick this vgroup as a partner to be suppressed.
        """
        if self.cost_perturbation is not None:
            duration = self.cost_perturbation(group_id, duration)
        start = max(
            self.sim.now,
            self._busy_until.get(group_id, 0.0),
            self._relay_busy_until.get(group_id, 0.0),
        )
        completion = start + duration
        self._relay_busy_until[group_id] = completion
        return completion

    def _existing_or_random(self, group_id: str) -> Optional[str]:
        if group_id in self.groups:
            return group_id
        if not self.groups:
            return None
        return self._rng.choice(self._group_ids)

    def _walk_select(self, start_group: str) -> Optional[str]:
        """Select a vgroup via a structural random walk from ``start_group``."""
        if self.graph is None or not self.groups:
            return None
        start = start_group if start_group in self.groups else self._rng.choice(self._group_ids)
        if len(self.groups) == 1:
            return start
        outcome = structural_walk(self.graph, start, self.config.rwl, self._rng)
        selected = outcome.selected
        if selected not in self.groups:
            return self._rng.choice(self._group_ids)
        return selected

    def _install_view(self, view: VGroupView) -> None:
        self.groups[view.group_id] = view
        self._notify_view(view)

    def _notify_view(self, view: VGroupView) -> None:
        if self.on_view_changed is not None:
            self.on_view_changed(view)

    def _remove_group(self, group_id: str) -> None:
        if group_id in self.groups:
            self._group_ids.remove(group_id)
        self.groups.pop(group_id, None)
        self._busy_until.pop(group_id, None)
        self._relay_busy_until.pop(group_id, None)
        if self.graph is not None and group_id in self.graph:
            if len(self.graph) > 1:
                self.graph.remove(group_id)
            else:
                # The overlay is empty once its last vgroup disappears.
                self.graph = None
        if self.on_group_removed is not None:
            self.on_group_removed(group_id)

    def _record_size(self) -> None:
        self.sim.metrics.record_point("membership.system_size", self.sim.now, self.system_size)
        self.sim.metrics.record_point("membership.group_count", self.sim.now, self.group_count)

    def _complete(self, op_id: str) -> None:
        stats = self._pending_ops.pop(op_id, None)
        if stats is None:
            return
        stats.completed_at = self.sim.now
        latency = stats.completed_at - stats.started_at
        self.sim.metrics.increment(f"membership.{stats.kind}s_completed")
        self.sim.metrics.observe(f"membership.{stats.kind}_latency", latency)

    def _abort(self, op_id: str) -> None:
        stats = self._pending_ops.pop(op_id, None)
        if stats is not None:
            self.sim.metrics.increment(f"membership.{stats.kind}s_aborted")


__all__ = ["MembershipEngine", "MembershipConfig", "MembershipError"]
