"""ATL009 fixture: hook wiring through the middleware pipeline passes."""


class Engine:
    """An object invoking its *own* callback attribute is not pipeline wiring."""

    def __init__(self):
        self.on_node_left = None

    def remove(self, node):
        if self.on_node_left is not None:
            self.on_node_left(node)


def compose(cluster, injector, monitor, chain_cls):
    chain = chain_cls(injector, monitor, scenario="fixture")
    cluster.install_middleware(chain)


def plain_delivery(node, handler):
    # A fresh deliver_fn that does not read the previous one is app wiring,
    # not observer wrap-chaining.
    node.deliver_fn = handler


def waived_decoration(node, make_tiered):
    node.deliver_fn = make_tiered(node.deliver_fn)  # atumlint: allow[ATL009] fixture: application-tier delivery decoration
