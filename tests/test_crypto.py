"""Unit tests for the crypto substrate."""

import json

import pytest

from repro.crypto import (
    DIGEST_MODE_COST_ONLY,
    DIGEST_MODE_REAL,
    CertificateChain,
    CryptoCostModel,
    KeyRegistry,
    SignatureError,
    digest_bytes,
    digest_mode,
    digest_object,
    get_digest_mode,
)
from repro.crypto.certificates import make_certificate
from repro.crypto.digest import _canonical, canonical_encode, clear_digest_memo


class TestDigests:
    def test_digest_bytes_deterministic(self):
        assert digest_bytes(b"abc") == digest_bytes(b"abc")
        assert digest_bytes(b"abc") != digest_bytes(b"abd")

    def test_digest_object_is_order_insensitive_for_dicts(self):
        assert digest_object({"a": 1, "b": 2}) == digest_object({"b": 2, "a": 1})

    def test_digest_object_differs_for_different_content(self):
        assert digest_object({"a": 1}) != digest_object({"a": 2})

    def test_digest_handles_nested_structures(self):
        obj = {"list": [1, 2, {"x": (3, 4)}], "set": {"b", "a"}, "bytes": b"\x00\x01"}
        assert isinstance(digest_object(obj), str)
        assert digest_object(obj) == digest_object(obj)

    def test_digest_dataclass(self):
        from dataclasses import dataclass

        @dataclass
        class Point:
            x: int
            y: int

        assert digest_object(Point(1, 2)) == digest_object(Point(1, 2))
        assert digest_object(Point(1, 2)) != digest_object(Point(2, 1))

    def test_mixed_type_set_does_not_raise(self):
        """Regression: sorting a canonicalised mixed-type set used to raise
        TypeError (e.g. int vs str).  It must digest deterministically now."""
        obj = {"set": {1, "one", (2, 3), frozenset({"x"})}}
        first = digest_object(obj)
        second = digest_object({"set": {frozenset({"x"}), (2, 3), "one", 1}})
        assert first == second
        # The reference canonicaliser tolerates mixed sets too.
        assert _canonical(obj) == _canonical(obj)

    def test_fast_encoder_matches_reference_canonical(self):
        """canonical_encode must equal json.dumps over the reference transform."""
        from dataclasses import dataclass, field

        @dataclass
        class Inner:
            values: tuple
            blob: bytes

        @dataclass
        class Outer:
            name: str
            inner: Inner
            table: dict = field(default_factory=dict)

        @dataclass(frozen=True)
        class Tag:
            name: str

        @dataclass(frozen=True)
        class Tagged:
            tags: frozenset

        samples = [
            {"b": 2, "a": {1, 2, 3}, "c": [None, True, 1.5, b"\xff"]},
            Outer("x", Inner((1, "two"), b"\x00"), {"k": Inner((0,), b"")}),
            [Outer("y", Inner((), b"z"), {})],
            {"nested": {"deep": [{"set": {"a", "b"}}]}},
            # Dataclasses inside a set under a dataclass keep their __dc__
            # marker (asdict never recursed into sets).
            Tagged(frozenset({Tag("a"), Tag("b")})),
            {"top": {Tag("c")}},
        ]
        for obj in samples:
            reference = json.dumps(_canonical(obj), sort_keys=True, default=str)
            assert canonical_encode(obj) == reference

        @dataclass(frozen=True)
        class OtherTag:
            name: str

        # Distinct dataclass types with equal fields must not collide, even
        # nested in sets beneath a dataclass.
        assert digest_object(Tagged(frozenset({Tag("a")}))) != digest_object(
            Tagged(frozenset({OtherTag("a")}))
        )

    def test_identity_memo_returns_stable_digests(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Frozen:
            a: int
            b: str

        clear_digest_memo()
        payload = Frozen(1, "x")
        first = digest_object(payload)
        assert digest_object(payload) == first  # memo hit
        assert digest_object(Frozen(1, "x")) == first  # equal value, fresh object
        assert digest_object(Frozen(2, "x")) != first

    def test_memo_skips_outer_immutables_with_mutable_interiors(self):
        """Regression: a frozen dataclass or tuple holding a mutable value
        must not be memoised by identity — mutating the interior must change
        the digest."""
        from dataclasses import dataclass
        from typing import Any

        @dataclass(frozen=True)
        class Operation:
            kind: str
            body: Any

        clear_digest_memo()
        op = Operation("broadcast", {"k": 1})
        before = digest_object(op)
        op.body["k"] = 999
        after = digest_object(op)
        assert before != after
        assert after == digest_object(Operation("broadcast", {"k": 999}))

        boxed = ([1, 2],)
        first = digest_object(boxed)
        boxed[0].append(3)
        assert digest_object(boxed) != first

    def test_frozen_dataclass_with_initvar_digests(self):
        """Regression: InitVar pseudo-fields have no instance attribute and
        must not be touched by the memo-eligibility walk."""
        from dataclasses import InitVar, dataclass, field

        @dataclass(frozen=True)
        class WithInit:
            a: int
            b: InitVar[int]
            total: int = field(default=0)

            def __post_init__(self, b):
                object.__setattr__(self, "total", self.a + b)

        clear_digest_memo()
        first = digest_object(WithInit(1, 2))
        assert first == digest_object(WithInit(1, 2))
        assert first != digest_object(WithInit(1, 3))


class TestDigestModes:
    # The suite must pass regardless of the ambient ATUM_DIGEST_MODE, so
    # every test pins the mode it asserts about.

    def test_mode_roundtrip_restores_ambient(self):
        ambient = get_digest_mode()
        with digest_mode(DIGEST_MODE_REAL):
            assert get_digest_mode() == DIGEST_MODE_REAL
            with digest_mode(DIGEST_MODE_COST_ONLY):
                assert get_digest_mode() == DIGEST_MODE_COST_ONLY
            assert get_digest_mode() == DIGEST_MODE_REAL
        assert get_digest_mode() == ambient

    def test_cost_only_mode_skips_sha256_but_keeps_equality(self):
        with digest_mode(DIGEST_MODE_COST_ONLY):
            a = digest_object({"op": "transfer", "amount": 7})
            b = digest_object({"amount": 7, "op": "transfer"})
            c = digest_object({"op": "transfer", "amount": 8})
            assert a.startswith("cm:")
            assert a == b
            assert a != c

    def test_modes_produce_distinct_tokens(self):
        with digest_mode(DIGEST_MODE_REAL):
            real = digest_object({"x": 1})
        with digest_mode(DIGEST_MODE_COST_ONLY):
            cheap = digest_object({"x": 1})
        assert real != cheap

    def test_signatures_roundtrip_in_cost_only_mode(self):
        with digest_mode(DIGEST_MODE_COST_ONLY):
            registry = KeyRegistry()
            signature = registry.sign("alice", {"msg": "hello"})
            assert registry.verify(signature, {"msg": "hello"})
            assert not registry.verify(signature, {"msg": "bye"})

    def test_signatures_survive_mode_switch(self):
        """Regression: switching digest mode mid-run must not invalidate
        signatures/certificates created under the previous mode."""
        registry = KeyRegistry()
        real_sig = registry.sign("alice", {"msg": "hello"})
        chain = None
        with digest_mode(DIGEST_MODE_COST_ONLY):
            # Real-mode signature still verifies in cost-only mode...
            assert registry.verify(real_sig, {"msg": "hello"})
            assert not registry.verify(real_sig, {"msg": "bye"})
            cheap_sig = registry.sign("alice", {"msg": "hello"})
            members = ["m0", "m1", "m2"]
            for member in members:
                registry.generate(member)
            chain = CertificateChain(walk_id="w")
            chain.append(
                make_certificate(
                    registry,
                    walk_id="w",
                    hop=0,
                    issuer="G0",
                    issuer_members=members,
                    next_hop="G1",
                    signers=members,
                )
            )
        # ...and cost-only signatures/certificates verify back in real mode.
        assert registry.verify(cheap_sig, {"msg": "hello"})
        assert not registry.verify(cheap_sig, {"msg": "bye"})
        assert chain.verify(registry, origin_group="G0")

    def test_cost_model_install_helpers(self):
        CryptoCostModel.install_cost_only_digests()
        try:
            assert CryptoCostModel.digests_are_cost_only()
        finally:
            CryptoCostModel.install_real_digests()
        assert not CryptoCostModel.digests_are_cost_only()


class TestSignatures:
    def test_sign_and_verify(self):
        registry = KeyRegistry()
        signature = registry.sign("alice", {"msg": "hello"})
        assert registry.verify(signature, {"msg": "hello"})

    def test_verify_fails_on_tampered_content(self):
        registry = KeyRegistry()
        signature = registry.sign("alice", {"msg": "hello"})
        assert not registry.verify(signature, {"msg": "bye"})

    def test_verify_fails_for_unknown_signer(self):
        registry_a = KeyRegistry("domain-a")
        registry_b = KeyRegistry("domain-b")
        signature = registry_a.sign("alice", "payload")
        assert not registry_b.verify(signature, "payload")

    def test_forged_signer_name_rejected(self):
        registry = KeyRegistry()
        registry.generate("alice")
        registry.generate("mallory")
        # Mallory signs but claims to be alice by swapping the signer field.
        mallory_signature = registry.sign("mallory", "payload")
        forged = type(mallory_signature)(
            signer="alice", digest=mallory_signature.digest, mac=mallory_signature.mac
        )
        assert not registry.verify(forged, "payload")

    def test_verify_or_raise(self):
        registry = KeyRegistry()
        signature = registry.sign("alice", "x")
        registry.verify_or_raise(signature, "x")
        with pytest.raises(SignatureError):
            registry.verify_or_raise(signature, "y")

    def test_pairwise_mac_differs_by_peer(self):
        registry = KeyRegistry()
        assert registry.mac("alice", "bob", "m") != registry.mac("alice", "carol", "m")


class TestCertificateChains:
    def _chain(self, registry, hops, quorum_per_hop=3, walk_id="walk-1"):
        chain = CertificateChain(walk_id=walk_id)
        previous = "G0"
        for hop in range(hops):
            issuer = previous
            next_hop = f"G{hop + 1}"
            members = [f"{issuer}-member-{i}" for i in range(quorum_per_hop + 1)]
            for member in members:
                registry.generate(member)
            chain.append(
                make_certificate(
                    registry,
                    walk_id=walk_id,
                    hop=hop,
                    issuer=issuer,
                    issuer_members=members,
                    next_hop=next_hop,
                    signers=members[:quorum_per_hop],
                )
            )
            previous = next_hop
        return chain

    def test_valid_chain_verifies(self):
        registry = KeyRegistry()
        chain = self._chain(registry, hops=5)
        assert chain.verify(registry, origin_group="G0")
        assert chain.selected_group == "G5"

    def test_chain_with_broken_linkage_fails(self):
        registry = KeyRegistry()
        chain = self._chain(registry, hops=3)
        # Remove the middle certificate: linkage broken.
        del chain.certificates[1]
        assert not chain.verify(registry, origin_group="G0")

    def test_corrupted_certificate_statement_fails_verification(self):
        # Wire corruption of a certificate: any bit-flip in the signed
        # statement changes its canonical digest, so every signature check
        # against the tampered statement fails and the chain is rejected.
        from dataclasses import replace

        registry = KeyRegistry()
        chain = self._chain(registry, hops=3)
        original = chain.certificates[1]
        chain.certificates[1] = replace(
            original, issuer_members=tuple(original.issuer_members) + ("bitflip",)
        )
        assert not chain.verify(registry, origin_group="G0")
        # Restoring the original statement restores verification.
        chain.certificates[1] = original
        assert chain.verify(registry, origin_group="G0")

    def test_corrupted_signature_bytes_fail_verification(self):
        from dataclasses import replace

        registry = KeyRegistry()
        chain = self._chain(registry, hops=1, quorum_per_hop=2)
        certificate = chain.certificates[0]
        # Flip the digest carried inside every signature: no quorum remains.
        tampered = tuple(
            replace(signature, digest="00" + signature.digest[2:])
            for signature in certificate.signatures
        )
        chain.certificates[0] = replace(certificate, signatures=tampered)
        assert not chain.verify(registry, origin_group="G0")

    def test_chain_without_majority_fails(self):
        registry = KeyRegistry()
        chain = CertificateChain(walk_id="w")
        members = ["m0", "m1", "m2", "m3"]
        for member in members:
            registry.generate(member)
        chain.append(
            make_certificate(
                registry,
                walk_id="w",
                hop=0,
                issuer="G0",
                issuer_members=members,
                next_hop="G1",
                signers=members[:2],  # only 2 of 4: not a majority
            )
        )
        assert not chain.verify(registry, origin_group="G0")

    def test_chain_verifies_in_cost_only_mode(self):
        with digest_mode(DIGEST_MODE_COST_ONLY):
            registry = KeyRegistry()
            chain = self._chain(registry, hops=4)
            assert chain.verify(registry, origin_group="G0")
            # Structural checks still run in the fast path.
            del chain.certificates[1]
            assert not chain.verify(registry, origin_group="G0")

    def test_forged_signature_rejected_in_cost_only_mode(self):
        """cost_only mode must change wall-clock only: a fabricated signature
        (correct digest, no valid MAC) still fails verification."""
        from repro.crypto.keys import Signature
        from repro.crypto.digest import digest_object

        with digest_mode(DIGEST_MODE_COST_ONLY):
            registry = KeyRegistry()
            chain = CertificateChain(walk_id="w")
            members = ["m0", "m1", "m2"]
            for member in members:
                registry.generate(member)
            chain.append(
                make_certificate(
                    registry,
                    walk_id="w",
                    hop=0,
                    issuer="G0",
                    issuer_members=members,
                    next_hop="G1",
                    signers=[],
                )
            )
            statement = chain.certificates[0].statement()
            forged = tuple(
                Signature(signer=m, digest=digest_object(statement), mac="")
                for m in members
            )
            chain.certificates[0] = type(chain.certificates[0])(
                walk_id="w",
                hop=0,
                issuer="G0",
                issuer_members=tuple(members),
                next_hop="G1",
                signatures=forged,
            )
            assert not chain.verify(registry, origin_group="G0")

    def test_duplicate_signatures_do_not_form_a_quorum(self):
        """A majority requires distinct signers: the same valid signature
        repeated must count once."""
        registry = KeyRegistry()
        members = ["m0", "m1", "m2"]
        for member in members:
            registry.generate(member)
        certificate = make_certificate(
            registry,
            walk_id="w",
            hop=0,
            issuer="G0",
            issuer_members=members,
            next_hop="G1",
            signers=["m0"],
        )
        duplicated = type(certificate)(
            walk_id="w",
            hop=0,
            issuer="G0",
            issuer_members=tuple(members),
            next_hop="G1",
            signatures=certificate.signatures * 3,
        )
        chain = CertificateChain(walk_id="w")
        chain.append(duplicated)
        assert not chain.verify(registry, origin_group="G0")

    def test_chain_size_grows_linearly(self):
        registry = KeyRegistry()
        short = self._chain(registry, hops=2, walk_id="short")
        long = self._chain(registry, hops=10, walk_id="long")
        assert long.size_bytes() == 5 * short.size_bytes()

    def test_empty_chain_selected_group_raises(self):
        with pytest.raises(ValueError):
            CertificateChain(walk_id="w").selected_group


class TestCostModel:
    def test_hash_cost_scales_with_size(self):
        model = CryptoCostModel()
        assert model.hash_cost(2048) == pytest.approx(2 * model.hash_cost(1024))

    def test_hash_cost_parallelism(self):
        model = CryptoCostModel()
        assert model.hash_cost(1 << 20, threads=4) == pytest.approx(
            model.hash_cost(1 << 20) / 4
        )

    def test_certificate_chain_cost(self):
        model = CryptoCostModel()
        assert model.certificate_chain_verify_cost(10, 3) == pytest.approx(
            model.verify_cost(30)
        )
