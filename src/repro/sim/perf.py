"""Kernel performance measurement: events/sec of the simulation hot paths.

This module is the repo's perf trajectory anchor.  It measures two workload
shapes on the *current* kernel and writes ``BENCH_kernel.json`` so each PR can
be compared against the recorded pre-optimisation baseline:

* ``events`` — pure event-queue churn: self-rescheduling timer chains with a
  steady fraction of cancellations.  Measures the scheduler proper (heap,
  event handles, run loop).
* ``mixed`` — the shape of a message-dense benchmark: event churn plus a
  per-event histogram observation, periodic payload digests (both repeated
  and fresh payloads) and periodic percentile queries.  Measures the combined
  kernel + metrics + digest hot path that dominates the figure benchmarks.

Workloads are seeded and deterministic in their *event structure*; only the
wall clock varies between hosts.  ``BASELINE_EVENTS_PER_SEC`` records the
throughput of the pre-optimisation kernel (dataclass-ordered heap, asdict
digests, re-sorting histograms) measured at the seed commit on the reference
container; the kernel-speed benchmark asserts the current kernel beats it by
``TARGET_SPEEDUP``.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.crypto.digest import digest_object
from repro.sim.simulator import Simulator

#: Pre-PR kernel throughput on the two scenarios, measured at commit cdb1ae1
#: (seed kernel) with this same module's workloads on the reference container.
BASELINE_EVENTS_PER_SEC: Dict[str, float] = {
    "events": 301441.0,
    "mixed": 35548.0,
}

#: The speedup the optimised kernel is held to on the ``mixed`` scenario.
TARGET_SPEEDUP = 3.0


@dataclass(frozen=True)
class _PerfPayload:
    """Representative broadcast payload digested by the mixed scenario."""

    origin: str
    index: int
    body: str


def _seed_event_chains(
    sim: Simulator,
    chains: int,
    events_per_chain: int,
    cancel_every: int,
    on_event: Optional[Callable[[int, float], None]] = None,
) -> None:
    """Schedule ``chains`` self-rescheduling timer chains on ``sim``."""
    remaining = {}
    state = {"count": 0}

    def make_tick(chain_id: int, rng) -> Callable[[], None]:
        def tick() -> None:
            left = remaining[chain_id]
            if left <= 0:
                return
            remaining[chain_id] = left - 1
            delay = 0.0001 + rng.random() * 0.01
            sim.schedule(delay, tick, tag="perf.tick")
            if cancel_every and left % cancel_every == 0:
                extra = sim.schedule(delay * 2.0, tick, tag="perf.extra")
                sim.cancel(extra)
            if on_event is not None:
                state["count"] += 1
                on_event(state["count"], delay)

        return tick

    for chain in range(chains):
        remaining[chain] = events_per_chain
        rng = sim.rng.stream(f"perf-chain-{chain}")
        sim.schedule(rng.random() * 0.001, make_tick(chain, rng), tag="perf.seed")


def measure_events(
    seed: int = 7,
    chains: int = 64,
    events_per_chain: int = 1500,
    cancel_every: int = 7,
) -> Dict[str, float]:
    """Pure event-queue throughput (events/sec)."""
    sim = Simulator(seed=seed)
    _seed_event_chains(sim, chains, events_per_chain, cancel_every)
    start = time.perf_counter()
    sim.run_until_idle()
    elapsed = time.perf_counter() - start
    return {
        "processed": float(sim.processed_events),
        "seconds": elapsed,
        "events_per_sec": sim.processed_events / elapsed,
    }


def measure_mixed(
    seed: int = 7,
    chains: int = 48,
    events_per_chain: int = 1200,
) -> Dict[str, float]:
    """Throughput of the combined kernel + metrics + digest hot path."""
    sim = Simulator(seed=seed)
    hist = sim.metrics.histogram("perf.latency")
    payloads = [
        _PerfPayload(origin=f"n{i}", index=i, body="x" * 64) for i in range(32)
    ]

    def on_event(count: int, delay: float) -> None:
        hist.record(delay)
        if count % 10 == 0:
            # Re-digest of an in-flight payload object (memoisable).
            digest_object(payloads[count % len(payloads)])
        if count % 25 == 0:
            # Fresh, never-seen payload (exercises the canonical encoder).
            digest_object(
                _PerfPayload(origin="fresh", index=count, body="y" * 64)
            )
        if count % 200 == 0:
            hist.percentile(99)

    _seed_event_chains(sim, chains, events_per_chain, cancel_every=7, on_event=on_event)
    start = time.perf_counter()
    sim.run_until_idle()
    elapsed = time.perf_counter() - start
    return {
        "processed": float(sim.processed_events),
        "seconds": elapsed,
        "events_per_sec": sim.processed_events / elapsed,
    }


def _best_of(measure: Callable[[], Dict[str, float]], repeats: int) -> Dict[str, float]:
    best: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        result = measure()
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    assert best is not None
    return best


def run_kernel_benchmark(repeats: int = 3) -> Dict[str, object]:
    """Measure both scenarios and compare against the recorded baseline."""
    events = _best_of(measure_events, repeats)
    mixed = _best_of(measure_mixed, repeats)
    report: Dict[str, object] = {
        "python": sys.version.split()[0],
        "scenarios": {
            "events": {
                "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC["events"],
                "current_events_per_sec": round(events["events_per_sec"], 1),
                "speedup": round(
                    events["events_per_sec"] / BASELINE_EVENTS_PER_SEC["events"], 3
                ),
                "processed": events["processed"],
                "seconds": round(events["seconds"], 4),
            },
            "mixed": {
                "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC["mixed"],
                "current_events_per_sec": round(mixed["events_per_sec"], 1),
                "speedup": round(
                    mixed["events_per_sec"] / BASELINE_EVENTS_PER_SEC["mixed"], 3
                ),
                "processed": mixed["processed"],
                "seconds": round(mixed["seconds"], 4),
            },
        },
        "target_speedup": TARGET_SPEEDUP,
    }
    return report


def write_report(path: str = "BENCH_kernel.json", repeats: int = 3) -> Dict[str, object]:
    """Run the kernel benchmark and persist the report to ``path``."""
    report = run_kernel_benchmark(repeats=repeats)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    report = write_report()
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "BASELINE_EVENTS_PER_SEC",
    "TARGET_SPEEDUP",
    "measure_events",
    "measure_mixed",
    "run_kernel_benchmark",
    "write_report",
]
