"""Seeded property/fuzz tests for the canonical digest encoder and the
FaultPlan validation logic.

Both test families are generator-based but fully deterministic (fixed seeds,
no time or environment dependence), so they are CI-stable: a failure always
reproduces with the printed case.
"""

import copy
import math
import random
from dataclasses import dataclass

import pytest

from repro.crypto.digest import (
    DIGEST_MODE_COST_ONLY,
    DIGEST_MODE_REAL,
    canonical_encode,
    digest_mode,
    digest_object,
    digest_object_in_mode,
)
from repro.faults.plan import LinkFault, NodeFault, Partition, NODE_BEHAVIOURS


# ------------------------------------------------------------ payload fuzzer


@dataclass(frozen=True)
class FrozenLeaf:
    name: str
    value: int


@dataclass
class MutableLeaf:
    items: list
    tag: str


_SCALARS = (
    lambda rng: rng.randrange(-1_000_000, 1_000_000),
    lambda rng: round(rng.uniform(-1e6, 1e6), 6),
    lambda rng: "".join(rng.choice("abcdefgh é中") for _ in range(rng.randrange(0, 12))),
    lambda rng: rng.random() < 0.5,
    lambda rng: None,
    lambda rng: bytes(rng.randrange(256) for _ in range(rng.randrange(0, 8))),
)


def random_payload(rng: random.Random, depth: int = 0):
    """A random nested payload covering every canonical-encoder branch."""
    if depth >= 4 or rng.random() < 0.35:
        return rng.choice(_SCALARS)(rng)
    shape = rng.randrange(6)
    if shape == 0:
        return [random_payload(rng, depth + 1) for _ in range(rng.randrange(0, 4))]
    if shape == 1:
        return tuple(random_payload(rng, depth + 1) for _ in range(rng.randrange(0, 4)))
    if shape == 2:
        return {
            f"k{index}": random_payload(rng, depth + 1)
            for index in range(rng.randrange(0, 4))
        }
    if shape == 3:
        # Sets of possibly mixed scalar types exercise the sort fallback.
        return {
            rng.choice(_SCALARS[:3])(rng) for _ in range(rng.randrange(0, 4))
        }
    if shape == 4:
        return FrozenLeaf(name=f"f{rng.randrange(10)}", value=rng.randrange(100))
    return MutableLeaf(
        items=[random_payload(rng, depth + 1) for _ in range(rng.randrange(0, 3))],
        tag=f"t{rng.randrange(10)}",
    )


CASES = 150


class TestCanonicalEncoderProperties:
    def test_encode_is_deterministic_per_object(self):
        rng = random.Random(0xA11CE)
        for case in range(CASES):
            payload = random_payload(rng)
            assert canonical_encode(payload) == canonical_encode(payload), payload

    def test_encode_agrees_on_structural_copies(self):
        # A deep copy shares no identity with the original (so the identity
        # memo cannot help) yet must encode and digest identically.
        rng = random.Random(0xB0B)
        for case in range(CASES):
            payload = random_payload(rng)
            clone = copy.deepcopy(payload)
            assert canonical_encode(payload) == canonical_encode(clone), payload
            assert digest_object(payload) == digest_object(clone), payload

    def test_real_and_cost_only_modes_agree_on_equality(self):
        # The cost-only token replaces SHA-256 with the canonical encoding:
        # two payloads collide in one mode iff they collide in the other iff
        # their canonical encodings are equal.
        rng = random.Random(0xC0FFEE)
        for case in range(CASES):
            left = random_payload(rng)
            right = copy.deepcopy(left) if rng.random() < 0.5 else random_payload(rng)
            encodings_equal = canonical_encode(left) == canonical_encode(right)
            real_equal = digest_object_in_mode(left, DIGEST_MODE_REAL) == (
                digest_object_in_mode(right, DIGEST_MODE_REAL)
            )
            cost_equal = digest_object_in_mode(left, DIGEST_MODE_COST_ONLY) == (
                digest_object_in_mode(right, DIGEST_MODE_COST_ONLY)
            )
            assert real_equal == encodings_equal, (left, right)
            assert cost_equal == encodings_equal, (left, right)

    def test_mode_switch_round_trip_is_stable(self):
        rng = random.Random(0xD1CE)
        payloads = [random_payload(rng) for _ in range(30)]
        before = [digest_object(p) for p in payloads]
        with digest_mode(DIGEST_MODE_COST_ONLY):
            tokens = [digest_object(p) for p in payloads]
            assert all(token.startswith("cm:") for token in tokens)
        assert [digest_object(p) for p in payloads] == before

    def test_mutation_changes_the_digest(self):
        rng = random.Random(0xFACE)
        for case in range(50):
            payload = {"fixed": "frame", "blob": random_payload(rng)}
            tampered = copy.deepcopy(payload)
            tampered["fixed"] = "frame-flipped"
            assert digest_object(payload) != digest_object(tampered)


# ------------------------------------------------------------ plan fuzzer


def _random_window(rng):
    start = rng.choice([-1.0, 0.0, rng.uniform(0.0, 100.0)])
    stop = rng.choice([None, start, start - 1.0, start + rng.uniform(0.001, 50.0), math.inf])
    return start, stop


class TestFaultPlanValidationProperties:
    def test_link_fault_accepts_exactly_the_valid_region(self):
        rng = random.Random(0x5EED)
        for case in range(CASES):
            loss = rng.choice([0.0, 1.0, rng.uniform(0, 1), -0.2, 1.5])
            duplicate = rng.choice([0.0, rng.uniform(0, 1), 2.0])
            corrupt = rng.choice([0.0, rng.uniform(0, 1), -1.0])
            extra_delay = rng.choice([0.0, rng.uniform(0, 5), -0.5])
            jitter = rng.choice([0.0, rng.uniform(0, 5), -0.5])
            start, stop = _random_window(rng)
            stop = math.inf if stop is None else stop
            expected_valid = (
                0.0 <= loss <= 1.0
                and 0.0 <= duplicate <= 1.0
                and 0.0 <= corrupt <= 1.0
                and extra_delay >= 0.0
                and jitter >= 0.0
                and stop > start
            )
            try:
                fault = LinkFault(
                    loss=loss,
                    duplicate=duplicate,
                    corrupt=corrupt,
                    extra_delay=extra_delay,
                    jitter=jitter,
                    start=start,
                    stop=stop,
                )
            except ValueError:
                assert not expected_valid, vars()
            else:
                assert expected_valid, vars(fault)

    def test_partition_accepts_exactly_the_valid_region(self):
        rng = random.Random(0xBEEF)
        pool = [f"n{i}" for i in range(8)]
        for case in range(CASES):
            use_sides = rng.random() < 0.5
            start = rng.choice([-1.0, 0.0, rng.uniform(0, 50)])
            heal_at = rng.choice([None, start, start + rng.uniform(0.001, 20), start - 1.0])
            if use_sides:
                sides = tuple(
                    tuple(rng.sample(pool, rng.randrange(0, 4)))
                    for _ in range(rng.randrange(1, 4))
                )
                flat = [a for side in sides for a in side]
                expected_valid = (
                    len(sides) >= 2
                    and all(sides)
                    and len(set(flat)) == len(flat)
                    and start >= 0.0
                    and (heal_at is None or heal_at > start)
                )
                kwargs = dict(sides=sides, start=start, heal_at=heal_at)
            else:
                members = tuple(rng.sample(pool, rng.randrange(0, 4)))
                expected_valid = (
                    bool(members)
                    and start >= 0.0
                    and (heal_at is None or heal_at > start)
                )
                kwargs = dict(members=members, start=start, heal_at=heal_at)
            try:
                partition = Partition(**kwargs)
            except ValueError:
                assert not expected_valid, kwargs
            else:
                assert expected_valid, kwargs
                if use_sides:
                    assert set(partition.members) == {
                        a for side in kwargs["sides"] for a in side
                    }

    def test_node_fault_accepts_exactly_the_valid_region(self):
        rng = random.Random(0xF00D)
        behaviours = list(NODE_BEHAVIOURS) + ["gremlin", ""]
        for case in range(CASES):
            behaviour = rng.choice(behaviours)
            start = rng.choice([-0.5, 0.0, rng.uniform(0, 50)])
            stop = rng.choice([None, start, start + rng.uniform(0.001, 20)])
            attack_period = rng.choice([0.0, -1.0, rng.uniform(0.1, 60)])
            expected_valid = (
                behaviour in NODE_BEHAVIOURS
                and start >= 0.0
                and (stop is None or stop > start)
                and attack_period > 0.0
            )
            try:
                NodeFault(
                    address="n0",
                    behaviour=behaviour,
                    start=start,
                    stop=stop,
                    attack_period=attack_period,
                )
            except ValueError:
                assert not expected_valid, vars()
            else:
                assert expected_valid
