"""Figure 11: impact of Byzantine nodes on AShare read latency (100 nodes).

Same experiment as Figure 10 with a 100-node system and a larger corpus: the
paper draws the same conclusions at the larger scale (corrupted replicas raise
read latency; the effect weakens as the replica count approaches the chunk
count).
"""

from repro.analysis import format_table

from bench_fig10_ashare_byz_50 import check_shape, run_experiment


def test_fig11_ashare_byzantine_100_nodes(benchmark, scale):
    rows = benchmark.pedantic(
        run_experiment, args=(100, 200, 7, 8, scale), kwargs={"seed": 11}, rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Figure 11: AShare read latency per MB, 100 nodes, 7 Byzantine"))
    check_shape(rows)
