"""Group messages: reliable communication between pairs of vgroups.

A group message from vgroup A to vgroup B is a message that all correct nodes
of A send to all nodes of B; a node of B *accepts* it once it has received the
message from a strict majority of A's membership (paper section 3.1).  Because
every vgroup has a correct majority, an accepted group message is guaranteed to
originate from a decision of A's state machine, not from a Byzantine minority.

The messenger also implements the *message digest* optimisation of section
5.1: only a majority of A's nodes send the full payload, the remaining nodes
send just a digest.  Digest copies count towards acceptance, but delivery to
the upper layer happens only once a full copy is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.crypto.digest import digest_object
from repro.group.vgroup import VGroupView, majority_threshold
from repro.net.network import Network
from repro.sim.simulator import Simulator


@dataclass
class NodeBinding:
    """How the messenger is attached to its host node."""

    address: str
    network: Network
    sim: Simulator


@dataclass
class GroupMessageEnvelope:
    """Node-level wire format of one share of a group message.

    Attributes:
        gm_id: Identifier of the group message (same for all shares).
        source_group: Group id of the sending vgroup.
        source_epoch: Epoch of the sender's view of its own vgroup.
        target_group: Group id of the destination vgroup.
        kind: Application-level type tag (e.g. ``"gossip"``, ``"walk"``).
        payload: Full payload, or ``None`` when this share carries only a digest.
        digest: Digest of the payload (always present).
        sender_group_size: Size of the sending vgroup (for majority counting).
    """

    gm_id: str
    source_group: str
    source_epoch: int
    target_group: str
    kind: str
    payload: Optional[Any]
    digest: str
    sender_group_size: int


@dataclass
class _PendingGroupMessage:
    """Receiver-side accumulation state for one (gm_id, digest) pair."""

    senders: Set[str] = field(default_factory=set)
    full_payload: Optional[Any] = None
    accepted: bool = False
    delivered: bool = False


class GroupMessenger:
    """Per-node component that sends and accepts group messages.

    The host node provides its current view of its own vgroup via
    ``own_view_fn`` and receives accepted group messages through the
    ``on_accept`` callback, which is invoked exactly once per group message
    with ``(kind, payload, source_group, gm_id)``.
    """

    def __init__(
        self,
        binding: NodeBinding,
        own_view_fn: Callable[[], VGroupView],
        on_accept: Callable[[str, Any, str, str], None],
        payload_bytes: int = 1024,
        digest_bytes: int = 96,
        use_digest_optimization: bool = True,
    ) -> None:
        self.binding = binding
        self.own_view_fn = own_view_fn
        self.on_accept = on_accept
        self.payload_bytes = payload_bytes
        self.digest_bytes = digest_bytes
        self.use_digest_optimization = use_digest_optimization
        self._pending: Dict[Tuple[str, str], _PendingGroupMessage] = {}
        self._gm_counter = 0

    # ------------------------------------------------------------------ sending

    def next_gm_id(self, label: str = "gm") -> str:
        self._gm_counter += 1
        return f"{self.binding.address}/{label}/{self._gm_counter}"

    def send(
        self,
        target_view: VGroupView,
        kind: str,
        payload: Any,
        gm_id: Optional[str] = None,
        payload_bytes: Optional[int] = None,
    ) -> str:
        """Send this node's share of a group message to every node of ``target_view``.

        Every correct member of the sending vgroup is expected to make the same
        call with the same ``gm_id`` (they all execute the same decided
        operation); this method sends only the local node's shares.
        """
        own_view = self.own_view_fn()
        identifier = gm_id or self.next_gm_id(kind)
        digest = digest_object(payload)
        size = payload_bytes if payload_bytes is not None else self.payload_bytes

        # Digest optimisation: order members deterministically; the first
        # majority sends the full payload, the rest send only the digest.
        members = list(own_view.members)
        full_senders = set(members[: majority_threshold(len(members))])
        send_full = (not self.use_digest_optimization) or (
            self.binding.address in full_senders
        ) or (self.binding.address not in members)

        burst = []
        for destination in target_view.members:
            envelope = GroupMessageEnvelope(
                gm_id=identifier,
                source_group=own_view.group_id,
                source_epoch=own_view.epoch,
                target_group=target_view.group_id,
                kind=kind,
                payload=payload if send_full else None,
                digest=digest,
                sender_group_size=own_view.size,
            )
            burst.append(
                (destination, envelope, size if send_full else self.digest_bytes)
            )
        self.binding.network.send_burst(self.binding.address, burst)
        self.binding.sim.metrics.increment("group.shares_sent", len(burst))
        return identifier

    # ---------------------------------------------------------------- receiving

    def handle(self, envelope: GroupMessageEnvelope, sender: str) -> None:
        """Process one share of a group message arriving from ``sender``."""
        key = (envelope.gm_id, envelope.digest)
        state = self._pending.setdefault(key, _PendingGroupMessage())
        if state.delivered:
            return
        state.senders.add(sender)
        if envelope.payload is not None and state.full_payload is None:
            state.full_payload = envelope.payload

        required = majority_threshold(max(1, envelope.sender_group_size))
        if len(state.senders) >= required:
            state.accepted = True
        if state.accepted and state.full_payload is not None and not state.delivered:
            state.delivered = True
            self.binding.sim.metrics.increment("group.messages_accepted")
            self.on_accept(
                envelope.kind, state.full_payload, envelope.source_group, envelope.gm_id
            )

    # ----------------------------------------------------------------- queries

    def pending_count(self) -> int:
        return sum(1 for state in self._pending.values() if not state.delivered)


__all__ = ["GroupMessenger", "GroupMessageEnvelope", "NodeBinding"]
