"""Latency model for group-level operations.

The vgroup-granularity membership engine (used for the growth, churn and
exchange-rate experiments, where simulating every inter-node packet of a
1400-node system would be prohibitively slow in Python) charges simulated time
for each protocol step using this model.  The model is derived from the
node-level protocols implemented in :mod:`repro.smr` and :mod:`repro.group`:

* a *group message* costs one network traversal (the shares travel in
  parallel) plus a small processing overhead that grows with the receiving
  group size (incast);
* an *SMR agreement* costs ``f + 1`` rounds for the synchronous engine (plus
  the expected wait for the next round boundary), or roughly three network
  round-trips for the PBFT engine;
* a *state transfer* for a node joining a vgroup is proportional to the state
  size, which grows with the number of neighbouring vgroups (``hc``).

The calibration test in ``tests/test_group_cost.py`` checks that the model is
consistent with latencies measured on the full node-level protocols.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.smr.base import async_fault_threshold, sync_fault_threshold


@dataclass
class GroupCostModel:
    """Latencies (seconds) of vgroup-level protocol steps.

    Attributes:
        synchronous: Whether the Sync (round-based) engine is in use.
        round_duration: Round length for the Sync engine.
        network_latency: Typical one-way network latency (LAN: ~1 ms,
            WAN: ~80 ms).
        per_member_overhead: Additional receive/processing cost per member of
            the receiving vgroup (models incast and CPU).
        state_transfer_per_neighbor: Cost of transferring the replicated state
            about one neighbouring vgroup to a joining node.
    """

    synchronous: bool = True
    round_duration: float = 1.0
    network_latency: float = 0.001
    per_member_overhead: float = 0.0002
    state_transfer_per_neighbor: float = 0.05

    # ------------------------------------------------------------ primitive costs

    def group_message_latency(self, sender_size: int, receiver_size: int) -> float:
        """Latency for a group message to be accepted by the receiving vgroup."""
        return self.network_latency + self.per_member_overhead * max(1, receiver_size)

    def agreement_latency(self, group_size: int) -> float:
        """Latency of one SMR agreement inside a vgroup of ``group_size``."""
        if self.synchronous:
            faults = sync_fault_threshold(group_size)
            # Wait (on average half a round) for the next round boundary, then
            # run the f+1 rounds of the Dolev-Strong broadcast.
            return (faults + 1) * self.round_duration + 0.5 * self.round_duration
        faults = async_fault_threshold(group_size)
        # PBFT: request + pre-prepare + prepare + commit = ~4 one-way hops,
        # with a mild dependence on group size via incast.
        return 4 * (self.network_latency + self.per_member_overhead * group_size)

    def walk_relay_occupancy(self, group_size: int) -> float:
        """Capacity consumed at a vgroup that relays one random-walk hop.

        Relaying a walk is cheap compared to an agreement, but it is not free:
        the relaying vgroup must handle the group message and act on it
        consistently.  In the synchronous engine this work competes with the
        vgroup's round budget (the paper observes that random walks are
        heavily used during churn, which is why shorter walks allow higher
        churn rates); asynchronously it only costs the message handling.
        """
        if self.synchronous:
            return 0.3 * self.round_duration
        return self.group_message_latency(group_size, group_size)

    def walk_step_latency(self, sender_size: int, receiver_size: int) -> float:
        """One hop of a random walk: a group message plus forwarding agreement.

        Forwarding a walk requires the relaying vgroup to act consistently,
        which in practice is a lightweight agreement (the decision which
        neighbour to pick is derived from the bulk RNG carried by the walk),
        so only a group message plus processing is charged.
        """
        return self.group_message_latency(sender_size, receiver_size)

    def random_walk_latency(self, rwl: int, group_size: int, backward_phase: bool) -> float:
        """Full random walk of length ``rwl`` between vgroups of ``group_size``.

        With the backward phase (used by Sync), the reply retraces the walk,
        doubling the number of hops.  With certificates (used by Async), the
        selected vgroup answers directly but the originator pays the chain
        verification cost, which grows with ``rwl``.
        """
        forward = rwl * self.walk_step_latency(group_size, group_size)
        if backward_phase:
            return 2 * forward
        verification = 0.00025 * rwl * (group_size // 2 + 1)
        return forward + self.group_message_latency(group_size, group_size) + verification

    def state_transfer_latency(self, hc: int, group_size: int) -> float:
        """Cost for a joining node to synchronise the vgroup's replicated state."""
        return self.state_transfer_per_neighbor * (2 * hc) + self.per_member_overhead * group_size

    # ------------------------------------------------------------- composite costs

    def join_agreement_latency(self, group_size: int) -> float:
        """Agreement on a join/leave request (same as any agreement)."""
        return self.agreement_latency(group_size)


__all__ = ["GroupCostModel"]
