"""Tests for repro.sim.runpar: the sharded parallel scenario runner.

The load-bearing property is determinism: fanning seeded shards across
worker processes must produce metrics identical to a single-process run on
the same seeds (an acceptance criterion of the protocol fast-path PR).
"""

import multiprocessing

import pytest

from repro.sim.metrics import Histogram
from repro.sim.runpar import (
    WORKERS_ENV,
    default_workers,
    merge_shards,
    resolve_target,
    run_and_merge,
    run_sharded,
)

BROADCAST_TARGET = "repro.sim.protocol_perf:broadcast_shard"
CHURN_TARGET = "repro.sim.protocol_perf:churn_shard"

SMALL_BROADCAST = {
    "groups": 6,
    "group_size": 5,
    "broadcasts": 3,
    "horizon": 20.0,
    "heartbeat_period": None,
    "randomized_send_order": False,
}
SMALL_CHURN = {"initial_nodes": 120, "operations": 40, "op_interval": 0.5}

fork_available = "fork" in multiprocessing.get_all_start_methods()


class TestResolveTarget:
    def test_resolves_module_path(self):
        fn = resolve_target(BROADCAST_TARGET)
        assert callable(fn)

    def test_passes_through_callables(self):
        fn = resolve_target(len)
        assert fn is len

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            resolve_target("repro.sim.protocol_perf")

    def test_rejects_non_callable_attribute(self):
        with pytest.raises(TypeError):
            resolve_target("repro.sim.protocol_perf:BASELINE_PROTOCOL_RATES")


class TestSerialSharding:
    def test_results_come_back_in_seed_order(self):
        results = run_sharded(BROADCAST_TARGET, [5, 6], workers=1, kwargs=SMALL_BROADCAST)
        assert len(results) == 2
        # Different seeds produce different event structures.
        assert results[0]["counters"] != results[1]["counters"] or (
            results[0]["histograms"] != results[1]["histograms"]
        )

    def test_merge_sums_counters_and_concatenates_histograms(self):
        shard_a = {"counters": {"x": 1.0, "y": 2.0}, "histograms": {"h": [1.0, 2.0]}}
        shard_b = {"counters": {"x": 3.0}, "histograms": {"h": [3.0], "g": [4.0]}}
        merged = merge_shards([shard_a, shard_b])
        assert merged["shards"] == 2
        assert merged["counters"] == {"x": 4.0, "y": 2.0}
        assert merged["histograms"]["h"].samples == [1.0, 2.0, 3.0]
        assert merged["histograms"]["g"].samples == [4.0]
        assert isinstance(merged["histograms"]["h"], Histogram)
        assert merged["histograms"]["h"].mean == 2.0

    def test_empty_seed_list(self):
        assert run_sharded(BROADCAST_TARGET, [], workers=4) == []


@pytest.mark.skipif(not fork_available, reason="fork start method unavailable")
class TestParallelIdentity:
    def test_broadcast_parallel_equals_serial(self):
        seeds = [7, 8, 9]
        serial = run_and_merge(BROADCAST_TARGET, seeds, workers=1, kwargs=SMALL_BROADCAST)
        parallel = run_and_merge(BROADCAST_TARGET, seeds, workers=2, kwargs=SMALL_BROADCAST)
        assert parallel["counters"] == serial["counters"]
        assert set(parallel["histograms"]) == set(serial["histograms"])
        for name, histogram in serial["histograms"].items():
            assert parallel["histograms"][name].samples == histogram.samples

    def test_churn_parallel_equals_serial(self):
        # Fork workers inherit the parent's hash salt, so even the
        # set-iteration-sensitive membership paths merge identically.
        seeds = [3, 4]
        serial = run_and_merge(CHURN_TARGET, seeds, workers=1, kwargs=SMALL_CHURN)
        parallel = run_and_merge(CHURN_TARGET, seeds, workers=2, kwargs=SMALL_CHURN)
        assert parallel["counters"] == serial["counters"]
        for name, histogram in serial["histograms"].items():
            assert parallel["histograms"][name].samples == histogram.samples

    def test_worker_count_does_not_change_results(self):
        seeds = [1, 2, 3, 4]
        two = run_and_merge(BROADCAST_TARGET, seeds, workers=2, kwargs=SMALL_BROADCAST)
        three = run_and_merge(BROADCAST_TARGET, seeds, workers=3, kwargs=SMALL_BROADCAST)
        assert two["counters"] == three["counters"]
        for name, histogram in two["histograms"].items():
            assert three["histograms"][name].samples == histogram.samples


class TestWorkerKnob:
    def test_env_variable_controls_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_workers() == 3

    def test_invalid_env_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        assert default_workers() >= 1

    def test_floor_of_one(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert default_workers() == 1


class TestChurnErrorAccounting:
    """The perf churn workload must count — not blanket-swallow — failures."""

    def test_clean_run_swallows_nothing(self):
        from repro.sim.protocol_perf import run_churn_scenario

        outcome = run_churn_scenario(seed=1, **SMALL_CHURN)
        assert outcome["swallowed_errors"] == 0
        assert outcome["completed_operations"] > 0

    def test_membership_errors_are_counted_visibly(self, monkeypatch):
        from repro.overlay.membership import MembershipEngine, MembershipError
        from repro.sim.protocol_perf import run_churn_scenario

        def failing_leave(self, node, eviction=False):
            raise MembershipError("injected failure")

        monkeypatch.setattr(MembershipEngine, "leave", failing_leave)
        outcome = run_churn_scenario(seed=1, **SMALL_CHURN)
        assert outcome["swallowed_errors"] > 0

    def test_unexpected_errors_propagate(self, monkeypatch):
        from repro.overlay.membership import MembershipEngine
        from repro.sim.protocol_perf import run_churn_scenario

        def broken_leave(self, node, eviction=False):
            raise RuntimeError("engine bug")

        monkeypatch.setattr(MembershipEngine, "leave", broken_leave)
        with pytest.raises(RuntimeError):
            run_churn_scenario(seed=1, **SMALL_CHURN)
