"""Classic round-based, crash-tolerant gossip with global membership.

This is the first baseline of the paper's Figure 8: every node has a global
membership view, and in every round exchanges the message with ``fanout``
random nodes.  To make the comparison with Atum fair, the paper sets the
fanout to the size of an Atum node's view (a loose upper bound on Atum's
fanout) and the round duration to the same 1.5 seconds.

The simulation is round-driven and failure-free (the paper's configuration),
and reports the per-node delivery latency of one broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.simulator import Simulator


@dataclass
class GossipConfig:
    """Configuration of the classic gossip baseline.

    Attributes:
        num_nodes: System size (850 in the paper's comparison).
        fanout: Number of random peers contacted per round.
        round_duration: Round length in seconds (1.5 s in the paper).
        max_rounds: Safety bound on the number of rounds simulated.
    """

    num_nodes: int = 850
    fanout: int = 15
    round_duration: float = 1.5
    max_rounds: int = 100


class ClassicGossipSimulation:
    """Round-by-round push gossip over a complete membership view."""

    def __init__(self, config: GossipConfig, seed: int = 0) -> None:
        self.config = config
        self.sim = Simulator(seed=seed)
        self._rng = self.sim.rng.stream("classic-gossip")
        self.delivery_round: Dict[int, int] = {}

    def run_broadcast(self, origin: int = 0) -> Dict[int, float]:
        """Disseminate one message from ``origin``; returns delivery time per node."""
        config = self.config
        infected: Set[int] = {origin}
        self.delivery_round = {origin: 0}
        rounds = 0
        while len(infected) < config.num_nodes and rounds < config.max_rounds:
            rounds += 1
            newly_infected: Set[int] = set()
            for node in infected:
                for _ in range(config.fanout):
                    peer = self._rng.randrange(config.num_nodes)
                    if peer not in infected and peer not in newly_infected:
                        newly_infected.add(peer)
                        self.delivery_round[peer] = rounds
            infected.update(newly_infected)
        return {
            node: round_index * config.round_duration
            for node, round_index in self.delivery_round.items()
        }

    def delivery_latencies(self, origin: int = 0) -> List[float]:
        """Latency samples (seconds) of one broadcast, one entry per node reached."""
        return sorted(self.run_broadcast(origin).values())

    def rounds_to_full_coverage(self, origin: int = 0) -> int:
        times = self.run_broadcast(origin)
        if len(times) < self.config.num_nodes:
            return self.config.max_rounds
        return int(max(times.values()) / self.config.round_duration)


__all__ = ["GossipConfig", "ClassicGossipSimulation"]
