"""Applications built on top of Atum, as in the paper's section 4.

* :mod:`repro.apps.asub` -- ASub, a topic-based publish/subscribe service that
  maps one-to-one onto the Atum API.
* :mod:`repro.apps.ashare` -- AShare, a file sharing service with randomized
  replication, chunked parallel transfers and integrity checks.
* :mod:`repro.apps.astream` -- AStream, a two-tier data streaming system
  (Atum for stream authentication metadata, a spanning-forest push-pull
  multicast for the data).
* :mod:`repro.apps.transfer` -- the bulk-transfer cost model shared by AShare
  and the NFS baseline.
"""

from repro.apps.asub import ASubTopic, ASubService
from repro.apps.ashare import AShareCluster, FileRecord, MetadataIndex
from repro.apps.astream import AStreamSession
from repro.apps.transfer import TransferModel

__all__ = [
    "ASubTopic",
    "ASubService",
    "AShareCluster",
    "FileRecord",
    "MetadataIndex",
    "AStreamSession",
    "TransferModel",
]
