"""Figure 13: exchange completion rate under aggressive growth.

Grows a system to 400 nodes at join rates of 8%, 20% and 24% of the current
size per minute.  Faster growth generates more concurrent shuffle operations,
so more node exchanges find their chosen partner vgroup busy and are
suppressed.  The paper reports that the exchange completion rate drops as the
join rate rises (flexibility is bought at the price of composition quality),
while the system grows faster.
"""

from repro.analysis import format_table
from repro.core.config import AtumParameters, SmrKind
from repro.overlay.membership import MembershipEngine
from repro.sim import Simulator
from repro.workloads import GrowthConfig, GrowthWorkload


def _grow_at(join_fraction: float, target: int, seed: int) -> GrowthWorkload:
    params = AtumParameters.for_system_size(target, SmrKind.SYNC)
    sim = Simulator(seed=seed)
    engine = MembershipEngine(sim, params.membership_config(), params.cost_model())
    workload = GrowthWorkload(
        engine,
        GrowthConfig(
            target_size=target,
            join_fraction_per_minute=join_fraction,
            provisioning_delay=10.0,
            max_duration=40_000.0,
        ),
    )
    workload.run()
    return workload


def _run(scale):
    target = 400
    rows = []
    for join_fraction in (0.08, 0.20, 0.24):
        workload = _grow_at(join_fraction, target, seed=int(join_fraction * 100))
        rows.append(
            {
                "join_rate_percent_per_min": round(join_fraction * 100, 1),
                "time_to_400_nodes_s": round(workload.time_to_reach(target) or float("nan"), 1),
                "exchanges_attempted": int(
                    workload.sim.metrics.counter("membership.exchanges_attempted")
                ),
                "exchange_completion_rate": round(workload.exchange_completion_rate(), 3),
            }
        )
    return rows


def test_fig13_exchange_completion(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 13: exchange completion rate vs join rate (growth to N=400)"))

    by_rate = {row["join_rate_percent_per_min"]: row for row in rows}
    # Faster joining grows the system faster...
    assert by_rate[24.0]["time_to_400_nodes_s"] < by_rate[8.0]["time_to_400_nodes_s"]
    # ...but suppresses more exchanges (lower completion rate).
    assert by_rate[24.0]["exchange_completion_rate"] <= by_rate[8.0]["exchange_completion_rate"]
    # Every run produced a meaningful number of exchange attempts.
    assert all(row["exchanges_attempted"] > 100 for row in rows)
