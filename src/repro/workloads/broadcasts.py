"""Broadcast workloads with small payloads (used for Figure 8)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cluster import AtumCluster


@dataclass
class BroadcastWorkloadConfig:
    """Configuration of a broadcast workload.

    Attributes:
        count: Number of broadcasts to send (800 in the paper; benchmarks use
            fewer for speed, the CDF shape is unchanged).
        min_bytes / max_bytes: Payload size range (10 to 100 bytes, comparable
            to Twitter messages).
        interval: Time between consecutive broadcasts.
        settle_time: Time to keep running after the last broadcast.
    """

    count: int = 50
    min_bytes: int = 10
    max_bytes: int = 100
    interval: float = 0.5
    settle_time: float = 60.0


class BroadcastWorkload:
    """Sends broadcasts from random correct origins and collects latencies."""

    def __init__(self, cluster: AtumCluster, config: Optional[BroadcastWorkloadConfig] = None) -> None:
        self.cluster = cluster
        self.config = config or BroadcastWorkloadConfig()
        self._rng = cluster.sim.rng.stream("broadcast-workload")
        self.broadcasts: List[Tuple[str, float]] = []  # (bcast_id, started_at)

    def run(self) -> List[float]:
        """Issue the workload and return all per-node delivery latencies."""
        origins = self.cluster.correct_member_addresses()
        if not origins:
            raise RuntimeError("the cluster has no correct members to broadcast from")
        for index in range(self.config.count):
            origin = origins[self._rng.randrange(len(origins))]
            size = self._rng.randint(self.config.min_bytes, self.config.max_bytes)
            delay = index * self.config.interval

            def send(origin=origin, size=size) -> None:
                started = self.cluster.sim.now
                bcast_id = self.cluster.broadcast(origin, {"seq": len(self.broadcasts)}, size_bytes=size)
                self.broadcasts.append((bcast_id, started))

            self.cluster.sim.schedule(delay, send, tag="broadcast-workload")
        horizon = self.config.count * self.config.interval + self.config.settle_time
        self.cluster.run(until=self.cluster.sim.now + horizon)
        return self.latencies()

    def latencies(self) -> List[float]:
        """All delivery latencies across all broadcasts sent so far."""
        samples: List[float] = []
        for bcast_id, started_at in self.broadcasts:
            samples.extend(self.cluster.delivery_latencies(bcast_id, started_at))
        return samples

    def delivery_fractions(self) -> Dict[str, float]:
        return {bcast_id: self.cluster.delivery_fraction(bcast_id) for bcast_id, _ in self.broadcasts}


__all__ = ["BroadcastWorkload", "BroadcastWorkloadConfig"]
