"""Ordered middleware chains for the message path and membership events.

Fault injection, invariant monitoring, anti-entropy repair and metrics each
used to hand-wire their own hook into a different layer: the network carried
a ``_fault_injector`` attribute, every node a ``delivery_observer`` slot,
every messenger an ``accept_audit`` callable, and the cluster a scatter of
``self.monitor is not None`` guards.  Each wiring point had its own install
semantics (and its own bugs — silent replacement on double install, observers
dropped when ``deliver_fn`` was reassigned).

This module replaces all of them with one interposition pipeline in the
style of FastMCP's ``MiddlewareContext``: a :class:`MiddlewareChain` of
:class:`Middleware` objects is composed declaratively per scenario and
installed **once** on the cluster, which distributes the compiled per-hook
pipelines to the layers that dispatch them:

=================  ========================================================
``on_send``        :class:`repro.net.network.Network`, once per routed
                   message; the context carries a mutable fault verdict
                   (``drop`` / ``extra_delay`` / ``copies`` / ``corrupted``)
``on_deliver``     :class:`repro.core.node.AtumNode` for broadcast
                   deliveries (``channel == "broadcast"``) and
                   :class:`repro.group.messages.GroupMessenger` for accepted
                   group messages (``channel == "group"``)
``on_view_change``  :class:`repro.core.cluster.AtumCluster`, once per
                   installed vgroup view
``on_eviction``    the cluster, exactly once per evicted identity
``on_node_added``  the cluster, when a node actor is created
``on_node_left``   the cluster, when a node actually leaves the system
``on_timer``       the cluster's simulator, every :attr:`Middleware.
                   timer_period` seconds while the chain stays installed
=================  ========================================================

Determinism contract: an **empty chain compiles to ``None`` pipelines
everywhere**, so uninstrumented runs keep the exact fast paths (one
truthiness check per hot send) and stay byte-identical to builds without
this module.  Middleware that only observes (the invariant monitor, metric
taps) must draw no randomness and schedule no events; middleware that
perturbs (the link-fault injector) owns a dedicated RNG stream so the
network's draw sequence is untouched.

Chain semantics:

* middleware run in insertion order; a hook may set ``ctx.stop = True`` to
  short-circuit the remaining middleware for that event;
* ``on_send`` middleware may additionally set ``ctx.drop = True`` to drop
  the message outright (accounted as ``net.messages_lost``);
* adding the same middleware instance twice, or installing a second chain
  (or a second monitor) over an existing one, raises
  :class:`MiddlewareError` instead of silently replacing — a scenario
  wiring bug must be loud;
* exceptions raised by a hook propagate to the event's dispatch site; the
  pipeline never swallows them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Set, Tuple

#: Hook methods a middleware may override (see :class:`Middleware`).
HOOK_NAMES = (
    "on_send",
    "on_deliver",
    "on_view_change",
    "on_eviction",
    "on_node_added",
    "on_node_left",
    "on_timer",
)


class MiddlewareError(RuntimeError):
    """A middleware wiring error (double install, duplicate add)."""


class MiddlewareContext:
    """The slotted per-event context handed to every hook of a chain.

    One class serves all hooks; fields that do not apply to the current
    ``hook`` keep their defaults.  The ``on_send`` verdict fields
    (``drop``/``extra_delay``/``copies``/``corrupted``) start at the
    no-perturbation values, so a chain that touches nothing is
    byte-identical to no chain at all.
    """

    __slots__ = (
        "hook",
        "channel",
        "scenario",
        "now",
        "sender",
        "receiver",
        "address",
        "payload",
        "size_bytes",
        "node",
        "view",
        "senders",
        "drop",
        "extra_delay",
        "copies",
        "corrupted",
        "stop",
    )

    def __init__(
        self,
        hook: str,
        now: float = 0.0,
        scenario: str = "",
        channel: str = "",
        sender: str = "",
        receiver: str = "",
        address: str = "",
        payload: Any = None,
        size_bytes: int = 0,
        node: Any = None,
        view: Any = None,
        senders: Optional[Set[str]] = None,
    ) -> None:
        self.hook = hook
        self.channel = channel
        self.scenario = scenario
        self.now = now
        self.sender = sender
        self.receiver = receiver
        self.address = address
        self.payload = payload
        self.size_bytes = size_bytes
        self.node = node
        self.view = view
        self.senders = senders
        # on_send verdict (mutable): defaults mean "deliver unperturbed".
        self.drop = False
        self.extra_delay = 0.0
        self.copies = 1
        self.corrupted = False
        # Set by a hook to short-circuit the rest of the chain.
        self.stop = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MiddlewareContext({self.hook!r}, channel={self.channel!r}, "
            f"t={self.now:.3f}, {self.sender!r}->{self.receiver!r})"
        )


class Middleware:
    """Base class: every hook is a no-op; override the ones you observe.

    Only *overridden* hooks enter a chain's compiled pipelines (detected by
    method identity against this base class), so a middleware pays nothing
    for the hooks it ignores.  :meth:`setup` runs once when the chain is
    installed on a cluster (or when the middleware is added to an
    already-installed chain); :attr:`timer_period` arms a recurring
    ``on_timer`` tick with that period when set.
    """

    #: Period (simulated seconds) of the recurring ``on_timer`` hook;
    #: ``None`` schedules no timer.  Timers add events to the run, so a
    #: byte-identity-sensitive scenario must leave this unset.
    timer_period: Optional[float] = None

    def setup(self, cluster) -> None:
        """Called once when the hosting chain is installed on ``cluster``."""

    def on_send(self, ctx: MiddlewareContext) -> None:
        """One message entering the network's routing pipeline."""

    def on_deliver(self, ctx: MiddlewareContext) -> None:
        """A broadcast delivery (``channel=='broadcast'``, ``ctx.node`` set)
        or an accepted group message (``channel=='group'``, ``ctx.senders``
        set)."""

    def on_view_change(self, ctx: MiddlewareContext) -> None:
        """A vgroup view was installed (``ctx.view``)."""

    def on_eviction(self, ctx: MiddlewareContext) -> None:
        """An eviction was decided against ``ctx.address`` (exactly once
        per evicted identity)."""

    def on_node_added(self, ctx: MiddlewareContext) -> None:
        """A node actor was created (``ctx.node``, ``ctx.address``)."""

    def on_node_left(self, ctx: MiddlewareContext) -> None:
        """A node actually left the system (``ctx.address``)."""

    def on_timer(self, ctx: MiddlewareContext) -> None:
        """Recurring tick every :attr:`timer_period` simulated seconds."""


def overrides_hook(middleware: Middleware, name: str) -> bool:
    """Whether ``middleware`` overrides the base no-op hook ``name``.

    Class-level overrides are detected by method identity; an instance may
    also opt into a hook at construction time by binding a callable under
    the hook's name (see :class:`MetricsTap`'s ``count_sends``).
    """
    if name in getattr(middleware, "__dict__", {}):
        return True
    return getattr(type(middleware), name, None) is not getattr(Middleware, name)


def run_hooks(hooks: Tuple[Callable[[MiddlewareContext], None], ...], ctx: MiddlewareContext) -> None:
    """Dispatch ``ctx`` through a compiled pipeline, honouring ``ctx.stop``."""
    for hook in hooks:
        hook(ctx)
        if ctx.stop:
            return


class MiddlewareChain:
    """An ordered, grow-only collection of middleware.

    The chain itself holds no wiring; installers (the cluster, the network)
    compile the per-hook pipelines they dispatch via :meth:`hooks` and
    subscribe to :meth:`subscribe` so a late :meth:`add` — a fault plan
    installing its injector after the monitor was attached — recompiles
    them.  A hook with no participating middleware compiles to ``None``,
    which is the installers' "no pipeline" fast-path sentinel.
    """

    __slots__ = ("scenario", "_middleware", "_listeners")

    def __init__(self, *middleware: Middleware, scenario: str = "") -> None:
        self.scenario = scenario
        self._middleware: List[Middleware] = []
        self._listeners: List[Callable[[], None]] = []
        for entry in middleware:
            self.add(entry)

    def add(self, middleware: Middleware) -> Middleware:
        """Append ``middleware``; adding the same instance twice is an error."""
        if any(existing is middleware for existing in self._middleware):
            raise MiddlewareError(
                f"middleware {middleware!r} is already in the chain; "
                f"double-install would have been a silent no-op bug"
            )
        self._middleware.append(middleware)
        for listener in self._listeners:
            listener()
        return middleware

    def hooks(
        self, name: str
    ) -> Optional[Tuple[Callable[[MiddlewareContext], None], ...]]:
        """The compiled pipeline for hook ``name`` (``None`` when empty)."""
        bound = tuple(
            getattr(middleware, name)
            for middleware in self._middleware
            if overrides_hook(middleware, name)
        )
        return bound or None

    def subscribe(self, listener: Callable[[], None]) -> None:
        """Register a recompile callback, invoked after every :meth:`add`."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def __iter__(self) -> Iterator[Middleware]:
        return iter(self._middleware)

    def __len__(self) -> int:
        return len(self._middleware)

    def __contains__(self, middleware: object) -> bool:
        return any(existing is middleware for existing in self._middleware)


class MetricsTap(Middleware):
    """Per-hook pipeline counters (the metrics-counter interceptor).

    Counts every event flowing through the pipeline under ``mw.*`` counter
    names.  Observation only: no RNG draws, no scheduled events, so an
    installed tap never changes a run's trace — fault-matrix scenarios
    install it alongside the invariant monitor.

    ``count_sends`` additionally counts messages entering the network's
    ``on_send`` pipeline (``mw.sends``), before any fault middleware's
    verdict.  It is opt-in because *any* ``on_send`` hook routes the
    network off its batched/coalesced fan-out fast paths onto the
    per-message interception path — same verdict, but per-message event
    scheduling and none of the fan-out batching, so a tap that only wants
    to observe should not force it on runs that carry no other ``on_send``
    middleware.

    With ``sample_period`` the tap also arms the ``on_timer`` hook and
    counts ticks (``mw.timer_ticks``).  Timer events extend the trace, so
    leave it unset for byte-identity-sensitive runs.
    """

    def __init__(
        self, sample_period: Optional[float] = None, count_sends: bool = False
    ) -> None:
        self.timer_period = sample_period
        self.counters = None
        if count_sends:
            # Instance-level hook opt-in (see overrides_hook): only a tap
            # constructed with count_sends pulls the network onto the
            # interception path.
            self.on_send = self._count_send

    def setup(self, cluster) -> None:
        self.counters = cluster.sim.metrics.counters

    def bind_metrics(self, metrics) -> None:
        """Bind a registry directly (bare-network installs without a cluster)."""
        self.counters = metrics.counters

    def _count_send(self, ctx: MiddlewareContext) -> None:
        if self.counters is not None:
            self.counters["mw.sends"] += 1.0

    def on_deliver(self, ctx: MiddlewareContext) -> None:
        if self.counters is not None:
            self.counters["mw.delivers"] += 1.0

    def on_view_change(self, ctx: MiddlewareContext) -> None:
        if self.counters is not None:
            self.counters["mw.view_changes"] += 1.0

    def on_eviction(self, ctx: MiddlewareContext) -> None:
        if self.counters is not None:
            self.counters["mw.evictions"] += 1.0

    def on_node_added(self, ctx: MiddlewareContext) -> None:
        if self.counters is not None:
            self.counters["mw.nodes_added"] += 1.0

    def on_node_left(self, ctx: MiddlewareContext) -> None:
        if self.counters is not None:
            self.counters["mw.nodes_left"] += 1.0

    def on_timer(self, ctx: MiddlewareContext) -> None:
        if self.counters is not None:
            self.counters["mw.timer_ticks"] += 1.0


__all__ = [
    "HOOK_NAMES",
    "Middleware",
    "MiddlewareChain",
    "MiddlewareContext",
    "MiddlewareError",
    "MetricsTap",
    "overrides_hook",
    "run_hooks",
]
