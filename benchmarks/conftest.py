"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints the corresponding rows/series.  Benchmarks run the full experiment once
(``benchmark.pedantic(..., rounds=1, iterations=1)``): the quantity of interest
is the experiment's *result*, not the wall-clock time of the harness itself.

Scale: the paper's experiments run for hours on hundreds of EC2 instances.
The benchmarks reproduce the same protocols at a reduced scale (fewer
broadcasts, shorter churn windows) so the whole suite completes in minutes;
the scale can be raised with the ``ATUM_BENCH_SCALE`` environment variable
(1 = default, 2 = closer to the paper's sample counts).
"""

import os

import pytest


def bench_scale() -> int:
    """Global scale factor for benchmark workloads (ATUM_BENCH_SCALE, default 1)."""
    try:
        return max(1, int(os.environ.get("ATUM_BENCH_SCALE", "1")))
    except ValueError:
        return 1


@pytest.fixture
def scale() -> int:
    return bench_scale()
