"""ATL004: blanket excepts that neither re-raise nor count."""

from lint_utils import lint_fixture, rules_of


def test_flags_swallowing_except_exception_and_bare_except():
    findings = lint_fixture("atl004_bad.py", rules=["ATL004"])
    assert rules_of(findings) == ["ATL004", "ATL004"]
    messages = [f.message for f in findings]
    assert any("except Exception" in m for m in messages)
    assert any("bare except" in m for m in messages)


def test_counting_reraising_and_waived_handlers_pass():
    assert lint_fixture("atl004_ok.py") == []
