"""ATL003 fixture: unordered set iteration feeding protocol sinks."""


def flood(peers, transport):
    alive = {peer for peer in peers if peer}
    for peer in alive:
        transport.send(peer)


def pick(peers, rng):
    candidates = set(peers)
    return rng.sample(candidates, 2)


def drain(tasks):
    pending = set(tasks)
    return pending.pop()
