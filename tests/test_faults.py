"""Tests for the fault-injection and invariant-checking subsystem (repro.faults)."""

import random

import pytest

from repro.core.cluster import AtumCluster
from repro.core.config import AtumParameters
from repro.core.node import BroadcastMessage
from repro.crypto.digest import digest_object
from repro.faults import (
    FaultPlan,
    InvariantMonitor,
    LinkFault,
    NodeFault,
    Partition,
    apply_plan,
    check_agreement_logs,
    install_link_faults,
)
from repro.faults.scenarios import SCENARIOS, SMALL_MATRIX, run_scenario, scenario_shard
from repro.group.messages import GroupMessageEnvelope, GroupMessenger, NodeBinding
from repro.group.vgroup import VGroupView
from repro.net.latency import FixedLatency
from repro.net.message import CorruptedPayload
from repro.net.network import Network
from repro.sim.actor import Actor
from repro.sim.runpar import run_and_merge
from repro.sim.simulator import Simulator
from repro.smr.harness import ReplicaGroupHarness
from repro.workloads.byzantine import select_byzantine_per_group


def small_params(**overrides):
    defaults = dict(hc=3, rwl=5, gmax=6, gmin=3, round_duration=0.5)
    defaults.update(overrides)
    return AtumParameters(**defaults)


def build_cluster(seed=9, nodes=16, monitor=None, **cluster_kwargs):
    cluster = AtumCluster(small_params(), seed=seed, **cluster_kwargs)
    if monitor is not None:
        cluster.attach_monitor(monitor)
    cluster.build_static([f"n{i}" for i in range(nodes)])
    return cluster


# ----------------------------------------------------------------- plan schema


class TestFaultPlan:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty()
        assert FaultPlan().faulted_addresses() == frozenset()

    def test_compose_concatenates(self):
        first = FaultPlan(partitions=(Partition(members=("a",), start=1.0),))
        second = FaultPlan(nodes=(NodeFault(address="b", behaviour="silent"),))
        combined = first + second
        assert len(combined.partitions) == 1 and len(combined.nodes) == 1
        assert combined.faulted_addresses() == {"a", "b"}

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(loss=1.5)
        with pytest.raises(ValueError):
            LinkFault(duplicate=-0.1)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(start=5.0, stop=5.0)
        with pytest.raises(ValueError):
            Partition(members=("a",), start=2.0, heal_at=1.0)
        with pytest.raises(ValueError):
            NodeFault(address="a", behaviour="crash", start=3.0, stop=3.0)

    def test_unknown_behaviour_rejected(self):
        with pytest.raises(ValueError):
            NodeFault(address="a", behaviour="gremlin")

    def test_link_fault_matching(self):
        rule = LinkFault(src="a", start=1.0, stop=2.0)
        assert rule.matches("a", "b", 1.5)
        assert not rule.matches("c", "b", 1.5)
        assert not rule.matches("a", "b", 2.0)
        assert not rule.matches("a", "b", 0.5)

    def test_corrupt_probability_validated(self):
        assert LinkFault(corrupt=0.5).corrupt == 0.5
        with pytest.raises(ValueError):
            LinkFault(corrupt=1.2)
        with pytest.raises(ValueError):
            LinkFault(corrupt=-0.1)

    def test_side_preserving_partition_schema(self):
        partition = Partition(sides=(("a", "b"), ("c",)), start=1.0, heal_at=2.0)
        assert partition.is_side_preserving
        # members derives as the sorted union of the sides
        assert partition.members == ("a", "b", "c")
        assert not Partition(members=("a",)).is_side_preserving

    def test_side_preserving_partition_validation(self):
        with pytest.raises(ValueError):  # one side is not a split
            Partition(sides=(("a", "b"),))
        with pytest.raises(ValueError):  # empty side
            Partition(sides=(("a",), ()))
        with pytest.raises(ValueError):  # overlapping sides
            Partition(sides=(("a", "b"), ("b", "c")))
        with pytest.raises(ValueError):  # inconsistent explicit members
            Partition(members=("a",), sides=(("a",), ("b",)))
        # consistent explicit members are accepted
        assert Partition(members=("a", "b"), sides=(("a",), ("b",))).members == ("a", "b")

    def test_side_members_not_counted_unavailable(self):
        plan = FaultPlan(
            partitions=(
                Partition(sides=(("a",), ("b",))),
                Partition(members=("c",)),
            ),
            nodes=(NodeFault(address="d", behaviour="crash"),),
        )
        # all partitioned/faulted addresses are exempt from eviction checks...
        assert plan.faulted_addresses() == {"a", "b", "c", "d"}
        # ...but side members stay *available* (their broadcasts keep the bound)
        assert plan.unavailable_addresses() == {"c", "d"}


# ----------------------------------------------------------- network injector


class _Sink(Actor):
    def __init__(self, sim, address):
        super().__init__(sim, address)
        self.received = []

    def on_message(self, payload, sender):
        self.received.append((self.sim.now, payload, sender))


def _wired_pair(seed=3):
    sim = Simulator(seed=seed)
    network = Network(sim, latency_model=FixedLatency(0.01))
    sender, receiver = _Sink(sim, "a"), _Sink(sim, "b")
    network.register(sender)
    network.register(receiver)
    return sim, network, receiver


class TestLinkFaultInjector:
    def test_total_loss_drops_everything(self):
        sim, network, receiver = _wired_pair()
        install_link_faults(network, sim, [LinkFault(loss=1.0)])
        for _ in range(5):
            network.send("a", "b", "x", 100)
        sim.run_until_idle()
        assert receiver.received == []
        assert sim.metrics.counter("faults.messages_dropped") == 5
        assert sim.metrics.counter("net.messages_lost") == 5

    def test_loss_window_expires(self):
        sim, network, receiver = _wired_pair()
        install_link_faults(network, sim, [LinkFault(loss=1.0, start=0.0, stop=5.0)])
        network.send("a", "b", "early", 100)
        sim.schedule(6.0, lambda: network.send("a", "b", "late", 100))
        sim.run_until_idle()
        assert [payload for _, payload, _ in receiver.received] == ["late"]

    def test_duplication_delivers_twice(self):
        sim, network, receiver = _wired_pair()
        install_link_faults(network, sim, [LinkFault(duplicate=1.0)])
        network.send("a", "b", "x", 100)
        sim.run_until_idle()
        assert [payload for _, payload, _ in receiver.received] == ["x", "x"]
        assert sim.metrics.counter("faults.messages_duplicated") == 1
        # Both copies serialize through the downlink, so they land at
        # different times.
        assert receiver.received[0][0] < receiver.received[1][0]

    def test_extra_delay_shifts_delivery(self):
        baseline_sim, baseline_net, baseline_rx = _wired_pair()
        baseline_net.send("a", "b", "x", 100)
        baseline_sim.run_until_idle()
        sim, network, receiver = _wired_pair()
        install_link_faults(network, sim, [LinkFault(extra_delay=0.5)])
        network.send("a", "b", "x", 100)
        sim.run_until_idle()
        assert receiver.received[0][0] == pytest.approx(baseline_rx.received[0][0] + 0.5)

    def test_only_matching_links_perturbed(self):
        sim = Simulator(seed=4)
        network = Network(sim, latency_model=FixedLatency(0.01))
        sinks = {name: _Sink(sim, name) for name in ("a", "b", "c")}
        for sink in sinks.values():
            network.register(sink)
        install_link_faults(network, sim, [LinkFault(dst="b", loss=1.0)])
        network.send("a", "b", "x", 100)
        network.send("a", "c", "x", 100)
        sim.run_until_idle()
        assert sinks["b"].received == []
        assert len(sinks["c"].received) == 1

    def test_burst_and_fanout_paths_respect_injector(self):
        sim = Simulator(seed=5)
        network = Network(sim, latency_model=FixedLatency(0.01))
        sinks = {name: _Sink(sim, name) for name in ("a", "b", "c")}
        for sink in sinks.values():
            network.register(sink)
        install_link_faults(network, sim, [LinkFault(loss=1.0)])
        network.send_burst("a", [("b", "x", 64), ("c", "x", 64)])
        network.send_fanout("a", ["b", "c"], "y", 64)
        network.send_one("a", "b", "z", 64)
        sim.run_until_idle()
        assert sinks["b"].received == [] and sinks["c"].received == []
        assert sim.metrics.counter("faults.messages_dropped") == 5


# -------------------------------------------------------------- corruption


class TestCorruptionFault:
    def test_all_send_paths_deliver_corrupted_wrapper(self):
        # The wire-level contract: with corrupt=1.0 every path hands the
        # receiver a CorruptedPayload wrapper (which protocol actors then
        # verify and discard) instead of the raw payload.
        sim = Simulator(seed=6)
        network = Network(sim, latency_model=FixedLatency(0.01))
        sinks = {name: _Sink(sim, name) for name in ("a", "b", "c")}
        for sink in sinks.values():
            network.register(sink)
        install_link_faults(network, sim, [LinkFault(corrupt=1.0)])
        network.send("a", "b", "p1", 64)
        network.send_one("a", "b", "p2", 64)
        network.send_burst("a", [("b", "p3", 64), ("c", "p4", 64)])
        network.send_fanout("a", ["b", "c"], "p5", 64)
        sim.run_until_idle()
        received = [p for _, p, _ in sinks["b"].received] + [
            p for _, p, _ in sinks["c"].received
        ]
        assert len(received) == 6
        assert all(isinstance(p, CorruptedPayload) for p in received)
        assert sim.metrics.counter("faults.messages_corrupted") == 6

    def test_corrupted_full_share_fails_digest_verification(self):
        sim = Simulator(seed=8)
        network = Network(sim, latency_model=FixedLatency(0.005))
        view = VGroupView.create("B", ["b0"])
        node = _GmNode(sim, network, "b0", view)
        network.register(node)
        payload = {"value": 42}
        envelope = GroupMessageEnvelope(
            gm_id="gm-c1",
            source_group="A",
            source_epoch=0,
            target_group="B",
            kind="k",
            payload=payload,
            digest=digest_object(payload),
            sender_group_size=1,
        )
        assert node.messenger.verify_share(envelope)  # intact share verifies
        node.messenger.handle_corrupted(envelope, "a0")
        assert node.accepted == []  # discarded before accumulation
        assert node.messenger.pending_count() == 0
        assert sim.metrics.counter("group.corrupted_shares_dropped") == 1

    def test_corrupted_digest_share_cannot_reach_majority(self):
        # A digest-only share carries nothing to verify; the garbled digest
        # lands in its own conflicting bucket like an equivocation and the
        # honest shares still win.
        sim, view_b, nodes = TestEquivocation()._group_pair(seed=30)
        honest_digest_envelope = GroupMessageEnvelope(
            gm_id="gm1",
            source_group="A",
            source_epoch=0,
            target_group="B",
            kind="k",
            payload=None,
            digest=digest_object("honest"),
            sender_group_size=3,
        )
        nodes["b0"].messenger.handle_corrupted(honest_digest_envelope, "a2")
        nodes["a0"].messenger.send(view_b, "k", "honest", gm_id="gm1")
        nodes["a1"].messenger.send(view_b, "k", "honest", gm_id="gm1")
        sim.run_until_idle()
        accepted = nodes["b0"].accepted
        assert len(accepted) == 1 and accepted[0][1] == "honest"

    def test_cluster_discards_corruption_on_every_protocol(self):
        # End to end: every message to n1 arrives bit-flipped.  SMR envelopes
        # and direct messages fail transport authentication, gossip shares
        # fail the payload-digest check -- n1 delivers nothing, nobody else
        # is affected, and no agreement invariant breaks.
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=43, nodes=16, monitor=monitor)
        apply_plan(
            cluster,
            FaultPlan(links=(LinkFault(dst="n1", corrupt=1.0),)),
            monitor=monitor,
        )
        bcast = {}
        cluster.sim.schedule(0.5, lambda: bcast.setdefault("id", cluster.broadcast("n0", "x")))
        cluster.run(until=30.0)
        assert not cluster.nodes["n1"].has_delivered(bcast["id"])
        others = [
            node
            for address, node in cluster.nodes.items()
            if address not in ("n0", "n1")
        ]
        assert all(node.has_delivered(bcast["id"]) for node in others)
        metrics = cluster.sim.metrics
        assert metrics.counter("faults.messages_corrupted") > 0
        assert (
            metrics.counter("group.corrupted_shares_dropped")
            + metrics.counter("net.corrupted_discarded")
            > 0
        )
        monitor.finalize()
        monitor.assert_clean()

    def test_corrupt_links_scenario_stays_clean(self):
        row = run_scenario(5, "broadcast/corrupt_links")
        assert row["violations"] == 0
        assert row["counters"]["faults.messages_corrupted"] > 0
        assert row["counters"]["group.corrupted_shares_dropped"] > 0
        assert row["delivery_bound_met"]


# ------------------------------------------------ side-preserving partitions


class TestSidePreservingPartitions:
    def test_controller_forms_and_heals_split(self):
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=45, nodes=12, monitor=monitor)
        addresses = sorted(cluster.nodes)
        side_a, side_b = tuple(addresses[:6]), tuple(addresses[6:])
        plan = FaultPlan(
            partitions=(Partition(sides=(side_a, side_b), start=1.0, heal_at=5.0),)
        )
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=2.0)
        assert cluster.network.crosses_split(side_a[0], side_b[0])
        assert not cluster.network.crosses_split(side_a[0], side_a[1])
        # per-node isolation is NOT in effect: both sides stay live
        assert not cluster.network.is_partitioned(side_a[0])
        cluster.run(until=6.0)
        assert not cluster.network.crosses_split(side_a[0], side_b[0])
        assert cluster.sim.metrics.counter("faults.partitions_formed") == 1
        assert cluster.sim.metrics.counter("faults.partitions_healed") == 1

    def test_sides_keep_running_their_own_smr(self):
        # A broadcast from each side during the split reaches that side's
        # correct nodes co-grouped with the origin -- the sides are live,
        # which per-node isolation could never show.
        cluster = build_cluster(seed=47, nodes=12)
        addresses = sorted(cluster.nodes)
        side_a, side_b = tuple(addresses[:6]), tuple(addresses[6:])
        plan = FaultPlan(partitions=(Partition(sides=(side_a, side_b), start=0.0),))
        apply_plan(cluster, plan)
        ids = {}
        cluster.sim.schedule(
            0.5, lambda: ids.setdefault("a", cluster.broadcast(side_a[0], "from-a"))
        )
        cluster.sim.schedule(
            0.5, lambda: ids.setdefault("b", cluster.broadcast(side_b[0], "from-b"))
        )
        cluster.run(until=20.0)
        delivered_a = {a for a in cluster.delivery_times(ids["a"])}
        delivered_b = {a for a in cluster.delivery_times(ids["b"])}
        assert delivered_a and delivered_a <= set(side_a)
        assert delivered_b and delivered_b <= set(side_b)

    @pytest.mark.parametrize("name", ["broadcast/two_sided_split", "broadcast/two_sided_split_pbft"])
    def test_split_scenarios_reconcile_to_full_delivery(self, name):
        row = run_scenario(7, name)
        assert row["violations"] == 0
        assert row["mean_delivery_fraction"] == 1.0
        assert row["delivery_bound_met"]
        assert row["counters"]["ae.shares_resent"] > 0


# ------------------------------------------------------ deterministic replay


class TestDeterminism:
    def test_empty_plan_and_monitor_leave_trace_byte_identical(self):
        def run(with_faults):
            cluster = AtumCluster(small_params(), seed=11)
            if with_faults:
                monitor = InvariantMonitor()
                cluster.attach_monitor(monitor)
            cluster.build_static([f"n{i}" for i in range(16)])
            if with_faults:
                apply_plan(cluster, FaultPlan(), monitor=cluster.monitor)
            cluster.sim.schedule(0.1, lambda: cluster.broadcast("n0", "hello"))
            trace = []
            cluster.sim.run(until=20.0, trace=trace)
            return trace, dict(cluster.sim.metrics.counters)

        plain_trace, plain_counters = run(False)
        faulty_trace, faulty_counters = run(True)
        assert faulty_trace == plain_trace
        assert faulty_counters == plain_counters

    def test_faulty_runs_are_seed_deterministic(self):
        first = run_scenario(13, "broadcast/lossy_links")
        second = run_scenario(13, "broadcast/lossy_links")
        assert first == second

    def test_different_seeds_draw_different_faults(self):
        first = run_scenario(13, "broadcast/lossy_links")
        second = run_scenario(14, "broadcast/lossy_links")
        assert (
            first["counters"]["faults.messages_dropped"]
            != second["counters"]["faults.messages_dropped"]
        )


# ----------------------------------------------------------- node behaviours


class TestNodeBehaviours:
    def test_crash_recover_window(self):
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=21, nodes=16, monitor=monitor)
        plan = FaultPlan(nodes=(NodeFault(address="n1", behaviour="crash", start=1.0, stop=10.0),))
        apply_plan(cluster, plan, monitor=monitor)
        during = {}
        after = {}
        cluster.sim.schedule(2.0, lambda: during.setdefault("id", cluster.broadcast("n0", "during")))
        cluster.sim.schedule(12.0, lambda: after.setdefault("id", cluster.broadcast("n0", "after")))
        cluster.run(until=40.0)
        node = cluster.nodes["n1"]
        assert node.is_correct  # recovered
        assert not node.has_delivered(during["id"])  # was down
        assert node.has_delivered(after["id"])  # participates again
        monitor.finalize()
        monitor.assert_clean()

    def test_partition_heal_reaches_correct_fraction_bound(self):
        # A partition that respects the per-vgroup minority keeps every group
        # message acceptable: broadcasts sent during the partition reach every
        # connected correct node (>= 1 - fault_fraction of the system), and
        # broadcasts sent after the heal reach the paper's full bound (every
        # correct node).
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=17, nodes=24, monitor=monitor)
        rng = random.Random(1)
        partitioned = select_byzantine_per_group(cluster.engine.groups.values(), 0.25, rng)
        assert partitioned
        plan = FaultPlan(
            partitions=(Partition(members=tuple(partitioned), start=0.0, heal_at=10.0),)
        )
        apply_plan(cluster, plan, monitor=monitor)
        ids = {}
        cluster.sim.schedule(1.0, lambda: ids.setdefault("during", cluster.broadcast("n0", "d")))
        cluster.sim.schedule(12.0, lambda: ids.setdefault("post", cluster.broadcast("n0", "p")))
        cluster.run(until=50.0)
        correct_fraction = (24 - len(partitioned)) / 24
        assert cluster.delivery_fraction(ids["during"]) >= correct_fraction
        assert cluster.delivery_fraction(ids["post"]) == 1.0
        monitor.finalize()
        monitor.assert_clean()

    def test_overlapping_partition_heal_keeps_other_partition_active(self):
        # Healing one partition must not release an address that another
        # still-active partition of the composed plan also covers.
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=25, nodes=16, monitor=monitor)
        plan = FaultPlan(
            partitions=(
                Partition(members=("n1",), start=0.0, heal_at=5.0),
                Partition(members=("n1", "n2"), start=0.0, heal_at=20.0),
            )
        )
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=6.0)
        assert cluster.network.is_partitioned("n1")  # second partition holds
        assert cluster.network.is_partitioned("n2")
        cluster.run(until=21.0)
        assert not cluster.network.is_partitioned("n1")
        assert not cluster.network.is_partitioned("n2")

    def test_crash_window_restores_composed_behaviour(self):
        # A crash-recover window layered over a permanent behaviour fault
        # must hand the node back to that behaviour, not to correctness.
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=27, nodes=16, monitor=monitor)
        plan = FaultPlan(
            nodes=(
                NodeFault(address="n1", behaviour="silent"),
                NodeFault(address="n1", behaviour="crash", start=5.0, stop=10.0),
            )
        )
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=4.0)
        assert cluster.nodes["n1"].byzantine == "silent"
        cluster.run(until=8.0)
        assert cluster.nodes["n1"].byzantine == "mute"
        cluster.run(until=20.0)
        assert cluster.nodes["n1"].byzantine == "silent"

    def test_two_attacker_minority_in_one_group_cannot_evict(self):
        # The sharpest version of the §6.1.3 attack: a single 5-member vgroup
        # with the largest strict minority (2 attackers).  The eviction
        # threshold is a strict majority of the 4 co-members (3), so the two
        # attackers' persistent accusations must never evict anyone.
        monitor = InvariantMonitor()
        cluster = AtumCluster(
            small_params(heartbeat_period=2.0), seed=29, enable_heartbeats=True
        )
        cluster.attach_monitor(monitor)
        cluster.build_static([f"n{i}" for i in range(5)])
        assert cluster.engine.group_count == 1
        attackers = select_byzantine_per_group(
            cluster.engine.groups.values(), 0.4, random.Random(3)
        )
        assert len(attackers) == 2
        plan = FaultPlan(
            nodes=tuple(
                NodeFault(address=a, behaviour="evict_attack", attack_period=3.0)
                for a in attackers
            )
        )
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=60.0)
        assert cluster.sim.metrics.counter("faults.evictions_proposed_by_byzantine") > 0
        assert cluster.sim.metrics.counter("membership.evictions_started") == 0
        assert cluster.engine.system_size == 5
        monitor.finalize()
        monitor.assert_clean()

    def test_recovered_nodes_do_not_mass_suspect_correct_peers(self):
        # Recovering monitors restart with a clean slate: comparing "now"
        # against pre-crash last_seen timestamps would make two recovered
        # nodes instantly co-accuse the one correct peer and wrongfully
        # evict it.  Short crash window so the crashed pair recovers before
        # the (impossible, 1-of-2-reporter) eviction could ever fire.
        monitor = InvariantMonitor()
        cluster = AtumCluster(
            small_params(heartbeat_period=2.0), seed=37, enable_heartbeats=True
        )
        cluster.attach_monitor(monitor)
        cluster.build_static(["n0", "n1", "n2"])
        assert cluster.engine.group_count == 1
        plan = FaultPlan(
            nodes=(
                NodeFault(address="n0", behaviour="crash", start=5.0, stop=40.0),
                NodeFault(address="n1", behaviour="crash", start=5.0, stop=40.0),
            )
        )
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=80.0)
        assert "n2" in cluster.engine.node_group
        monitor.finalize()
        monitor.assert_clean()

    def test_partially_overlapping_windows_restore_the_active_fault(self):
        # silent on [0,30) overlaps equivocate on [10,50): when silent ends,
        # the still-active equivocate fault must take over, and when that
        # ends too the node recovers.
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=39, nodes=16, monitor=monitor)
        plan = FaultPlan(
            nodes=(
                NodeFault(address="n1", behaviour="silent", start=0.0, stop=30.0),
                NodeFault(address="n1", behaviour="equivocate", start=10.0, stop=50.0),
            )
        )
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=5.0)
        assert cluster.nodes["n1"].byzantine == "silent"
        cluster.run(until=20.0)
        assert cluster.nodes["n1"].byzantine == "equivocate"
        cluster.run(until=35.0)
        assert cluster.nodes["n1"].byzantine == "equivocate"
        cluster.run(until=55.0)
        assert cluster.nodes["n1"].byzantine is None

    def test_mute_node_stops_heartbeating_and_is_evicted(self):
        # "mute" means completely unresponsive, heartbeats included: the
        # node's monitor must stop so its vgroup peers eventually evict it.
        monitor = InvariantMonitor()
        cluster = AtumCluster(
            small_params(heartbeat_period=2.0), seed=33, enable_heartbeats=True
        )
        cluster.attach_monitor(monitor)
        cluster.build_static([f"n{i}" for i in range(16)])
        plan = FaultPlan(nodes=(NodeFault(address="n1", behaviour="mute", start=1.0),))
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=60.0)
        assert not cluster.nodes["n1"].heartbeats.running
        assert "n1" not in cluster.engine.node_group
        assert cluster.sim.metrics.counter("membership.evictions_started") == 1
        monitor.finalize()
        monitor.assert_clean()

    def test_crashed_node_stays_mute_across_view_changes(self):
        # Reconfigurations of the victim's vgroup (here: a join) must not
        # resurrect its stopped heartbeat monitor and hide the crash.
        monitor = InvariantMonitor()
        cluster = AtumCluster(
            small_params(heartbeat_period=2.0), seed=35, enable_heartbeats=True
        )
        cluster.attach_monitor(monitor)
        cluster.build_static([f"n{i}" for i in range(16)])
        plan = FaultPlan(nodes=(NodeFault(address="n0", behaviour="crash", start=1.0),))
        apply_plan(cluster, plan, monitor=monitor)
        cluster.sim.schedule(2.0, lambda: cluster.join("newcomer"))
        cluster.run(until=60.0)
        assert not cluster.nodes["n0"].heartbeats.running
        assert "n0" not in cluster.engine.node_group
        monitor.finalize()
        monitor.assert_clean()

    def test_evict_attack_never_evicts_correct_nodes(self):
        monitor = InvariantMonitor()
        cluster = AtumCluster(
            small_params(heartbeat_period=2.0), seed=23, enable_heartbeats=True
        )
        cluster.attach_monitor(monitor)
        cluster.build_static([f"n{i}" for i in range(20)])
        rng = random.Random(2)
        attackers = select_byzantine_per_group(cluster.engine.groups.values(), 0.25, rng)
        assert attackers
        plan = FaultPlan(
            nodes=tuple(
                NodeFault(address=a, behaviour="evict_attack", attack_period=4.0)
                for a in attackers
            )
        )
        apply_plan(cluster, plan, monitor=monitor)
        cluster.run(until=40.0)
        assert cluster.sim.metrics.counter("faults.evictions_proposed_by_byzantine") > 0
        # No eviction went through: a Byzantine minority cannot assemble the
        # majority suspicion an eviction requires.
        assert cluster.sim.metrics.counter("membership.evictions_started") == 0
        assert cluster.engine.system_size == 20
        monitor.finalize()
        monitor.assert_clean()


# -------------------------------------------------------------- equivocation


class _GmNode(Actor):
    def __init__(self, sim, network, address, own_view):
        super().__init__(sim, address)
        self.accepted = []
        self.messenger = GroupMessenger(
            binding=NodeBinding(address=address, network=network, sim=sim),
            own_view_fn=lambda: own_view,
            on_accept=lambda kind, payload, src, gm_id: self.accepted.append(
                (kind, payload, src, gm_id)
            ),
        )

    def on_message(self, payload, sender):
        self.messenger.handle(payload, sender)


class TestEquivocation:
    def _group_pair(self, seed=31):
        sim = Simulator(seed=seed)
        network = Network(sim, latency_model=FixedLatency(0.005))
        view_a = VGroupView.create("A", ["a0", "a1", "a2"])
        view_b = VGroupView.create("B", ["b0", "b1", "b2"])
        nodes = {}
        for address in list(view_a.members) + list(view_b.members):
            own = view_a if address.startswith("a") else view_b
            node = _GmNode(sim, network, address, own)
            network.register(node)
            nodes[address] = node
        return sim, view_b, nodes

    def test_minority_equivocator_never_wins(self):
        sim, view_b, nodes = self._group_pair()
        nodes["a0"].messenger.send(view_b, "k", "honest", gm_id="gm1")
        nodes["a1"].messenger.send(view_b, "k", "honest", gm_id="gm1")
        nodes["a2"].messenger.send_equivocating(
            view_b, "k", "honest", "forged", gm_id="gm1"
        )
        sim.run_until_idle()
        for address in ("b0", "b1", "b2"):
            accepted = nodes[address].accepted
            assert len(accepted) == 1, f"{address} accepted {accepted}"
            assert accepted[0][1] == "honest"
            # Conflicting buckets are retired with the delivery.
            assert nodes[address].messenger.pending_count() == 0
        assert sim.metrics.counter("group.equivocations_sent") == 1

    def test_equivocating_broadcaster_scenario_stays_clean(self):
        row = run_scenario(19, "broadcast/equivocators")
        assert row["violations"] == 0
        assert row["counters"]["group.equivocations_sent"] > 0
        # Every broadcast from a correct origin still reaches every correct node.
        assert row["mean_delivery_fraction"] == 1.0


# -------------------------------------------------------- invariant monitor


class TestInvariantMonitorDetections:
    """The monitor must actually fire when an invariant is broken."""

    def _monitored_cluster(self):
        monitor = InvariantMonitor()
        cluster = build_cluster(seed=41, nodes=12, monitor=monitor)
        return monitor, cluster

    def _kinds(self, monitor):
        return {violation.kind for violation in monitor.violations}

    def test_forged_group_message_detected(self):
        # Defence in depth: even with the messenger's forged-size rejection
        # bypassed, the monitor must still flag the accepted forgery.
        monitor, cluster = self._monitored_cluster()
        group_ids = sorted(cluster.engine.groups)
        source, target = group_ids[0], group_ids[1]
        victim = cluster.engine.groups[target].members[0]
        cluster.nodes[victim].messenger.source_size_fn = None
        payload = "not-a-real-decision"
        envelope = GroupMessageEnvelope(
            gm_id="forged-1",
            source_group=source,
            source_epoch=0,
            target_group=target,
            kind="custom",
            payload=payload,
            digest=digest_object(payload),
            sender_group_size=1,  # the forger lies about the group size
        )
        cluster.nodes[victim].messenger.handle(envelope, "intruder-1")
        kinds = self._kinds(monitor)
        assert "forged_sender" in kinds
        assert "forged_majority" in kinds

    def test_forged_size_rejected_by_messenger(self):
        # The protocol-level defence: a lying minority's message is dropped
        # at accept time (not merely flagged after acceptance).  The claimed
        # size of 1 would have made a single Byzantine sender a "majority".
        monitor, cluster = self._monitored_cluster()
        group_ids = sorted(cluster.engine.groups)
        source, target = group_ids[0], group_ids[1]
        liar = cluster.engine.groups[source].members[0]
        victim = cluster.engine.groups[target].members[0]
        node = cluster.nodes[victim]
        accepted = []
        node.register_group_handler(
            "custom", lambda payload, src, gm_id: accepted.append(payload)
        )
        payload = "minority-coup"
        envelope = GroupMessageEnvelope(
            gm_id="forged-2",
            source_group=source,
            source_epoch=0,
            target_group=target,
            kind="custom",
            payload=payload,
            digest=digest_object(payload),
            sender_group_size=1,
        )
        node.messenger.handle(envelope, liar)
        assert accepted == []  # dropped, no delivery to the upper layer
        assert cluster.sim.metrics.counter("group.forged_size_rejected") >= 1
        assert monitor.violations == []  # nothing was accepted to flag
        # Once a real majority of the source group backs the same message,
        # it goes through: the rejection is a threshold correction, not a
        # liveness hazard.
        required = len(cluster.engine.groups[source].members) // 2 + 1
        for member in cluster.engine.groups[source].members[:required]:
            node.messenger.handle(envelope, member)
        assert accepted == [payload]

    def test_wrongful_eviction_detected(self):
        monitor, cluster = self._monitored_cluster()
        monitor.record_eviction("n3")
        assert self._kinds(monitor) == {"correct_evicted"}

    def test_exempt_addresses_not_flagged(self):
        monitor, cluster = self._monitored_cluster()
        monitor.exempt(["n3"])
        monitor.record_eviction("n3")
        assert monitor.violations == []

    def test_evicted_identity_readmission_detected(self):
        monitor, cluster = self._monitored_cluster()
        monitor.exempt(["n3"])
        monitor.record_eviction("n3")
        group_id = sorted(cluster.engine.groups)[0]
        view = cluster.engine.groups[group_id]
        readmitted = view.with_members(list(view.members) + ["n3"])
        # While the eviction's leave is still in flight, n3 may legitimately
        # appear in views — no violation yet.
        monitor.on_view_changed(readmitted)
        assert monitor.violations == []
        # Once the eviction completed, the identity is banned.
        monitor.record_node_left("n3")
        monitor.on_view_changed(readmitted.with_members(readmitted.members))
        assert "evicted_readmitted" in self._kinds(monitor)

    def test_broadcast_payload_mismatch_detected(self):
        monitor, cluster = self._monitored_cluster()
        honest = BroadcastMessage(
            bcast_id="bc-x-1", origin="x", payload="p1", size_bytes=10, created_at=0.0
        )
        forged = BroadcastMessage(
            bcast_id="bc-x-1", origin="x", payload="p2", size_bytes=10, created_at=0.0
        )
        cluster.nodes["n1"]._deliver_and_forward(honest, source_group="")
        cluster.nodes["n2"]._deliver_and_forward(forged, source_group="")
        assert "broadcast_mismatch" in self._kinds(monitor)

    def test_monitor_observation_survives_deliver_fn_reassignment(self):
        # ASub-style apps assign node.deliver_fn after creation; the monitor
        # hook must keep observing regardless.
        monitor, cluster = self._monitored_cluster()
        cluster.nodes["n1"].deliver_fn = lambda message: None
        honest = BroadcastMessage(
            bcast_id="bc-y-1", origin="y", payload="p1", size_bytes=10, created_at=0.0
        )
        forged = BroadcastMessage(
            bcast_id="bc-y-1", origin="y", payload="p2", size_bytes=10, created_at=0.0
        )
        cluster.nodes["n1"]._deliver_and_forward(honest, source_group="")
        cluster.nodes["n2"]._deliver_and_forward(forged, source_group="")
        assert "broadcast_mismatch" in self._kinds(monitor)

    def test_epoch_regression_detected(self):
        monitor, cluster = self._monitored_cluster()
        group_id = sorted(cluster.engine.groups)[0]
        view = cluster.engine.groups[group_id]
        newer = view.with_members(view.members)  # epoch + 1
        monitor.on_view_changed(newer)
        monitor.on_view_changed(view)  # stale epoch re-installed
        assert "epoch_regression" in self._kinds(monitor)

    def test_oversized_view_detected(self):
        monitor, cluster = self._monitored_cluster()
        gmax, gmin = cluster.engine.config.gmax, cluster.engine.config.gmin
        bogus = VGroupView.create("vg-bogus", [f"m{i}" for i in range(gmax + gmin + 1)])
        monitor.on_view_changed(bogus)
        assert "group_size" in self._kinds(monitor)

    def test_assert_clean_raises_with_report(self):
        monitor, cluster = self._monitored_cluster()
        monitor.record_eviction("n3")
        with pytest.raises(AssertionError, match="correct_evicted"):
            monitor.assert_clean()


class TestAgreementChecks:
    def test_prefix_consistent_logs_pass(self):
        assert check_agreement_logs([["a", "b"], ["a", "b", "c"], []]) == []

    def test_divergence_detected(self):
        mismatches = check_agreement_logs([["a", "b"], ["a", "x"]])
        assert len(mismatches) == 1
        assert "diverge" in mismatches[0]

    def test_harness_agreement_hook(self):
        harness = ReplicaGroupHarness(group_size=4, seed=2)
        harness.propose("replica-0", "noop", {"v": 1})
        harness.run(until=30.0)
        assert harness.agreement_violations() == []


# ------------------------------------------------------------ scenario matrix


class TestScenarioMatrix:
    def test_matrix_covers_at_least_twenty_combinations(self):
        assert len(SMALL_MATRIX) >= 20
        combos = {(SCENARIOS[name].workload, SCENARIOS[name].plan) for name in SMALL_MATRIX}
        assert len(combos) >= 14  # engine/checkpoint variants share a combo
        assert {SCENARIOS[name].workload for name in SMALL_MATRIX} == {
            "broadcast",
            "churn",
            "churn_broadcast",
            "flash_crowd",
            "growth",
        }

    def test_matrix_covers_checkpointing_and_churn_attacks(self):
        # The PR-5 additions: checkpoint-enabled PBFT rows held to log
        # equality, the adaptive join-leave attack, and anti-entropy racing
        # continuous churn.
        for name in (
            "broadcast/isolated_catchup_pbft",
            "broadcast/split_stall_pbft",
            "broadcast/checkpoint_gc_pbft",
            "broadcast/rejoin_attack",
            "churn/antientropy",
        ):
            assert name in SMALL_MATRIX
        for name in (
            "broadcast/isolated_catchup_pbft",
            "broadcast/split_stall_pbft",
            "broadcast/checkpoint_gc_pbft",
        ):
            assert SCENARIOS[name].smr == "async"
            assert SCENARIOS[name].checkpoint_interval > 0
            assert SCENARIOS[name].delivery_bound == 1.0
        assert SCENARIOS["broadcast/rejoin_attack"].attack_threshold == 0.0
        assert SCENARIOS["churn/antientropy"].antientropy

    def test_matrix_covers_async_engine_splits_and_corruption(self):
        # The PR-4 additions: two-sided splits under both engines, a PBFT
        # delay spike, and a corruption scenario — with the partition-heal
        # bound lifted to the paper's full 1.0 by anti-entropy.
        for name in (
            "broadcast/two_sided_split",
            "broadcast/two_sided_split_pbft",
            "broadcast/delay_spike_pbft",
            "broadcast/corrupt_links",
        ):
            assert name in SMALL_MATRIX
        assert SCENARIOS["broadcast/two_sided_split_pbft"].smr == "async"
        assert SCENARIOS["broadcast/delay_spike_pbft"].smr == "async"
        assert SCENARIOS["broadcast/partition_heal"].antientropy
        assert SCENARIOS["broadcast/partition_heal"].delivery_bound == 1.0

    def test_nightly_matrix_scenarios_resolve(self, monkeypatch):
        from repro.faults.scenarios import NIGHTLY_MATRIX, _resolve

        assert len(NIGHTLY_MATRIX) >= 4
        for name in NIGHTLY_MATRIX:
            scenario = _resolve(name)
            assert scenario.nodes >= 400  # deployment scale (800 at scale 2)
            assert name not in SMALL_MATRIX
            assert name not in SCENARIOS  # served at resolve time, not import
        # ATUM_BENCH_SCALE is honoured when the run starts, not at import.
        monkeypatch.setenv("ATUM_BENCH_SCALE", "2")
        assert _resolve(NIGHTLY_MATRIX[0]).nodes == 800
        # ...and a malformed value fails loudly instead of shrinking the run.
        monkeypatch.setenv("ATUM_BENCH_SCALE", "2x")
        with pytest.raises(ValueError, match="ATUM_BENCH_SCALE"):
            _resolve(NIGHTLY_MATRIX[0])

    def test_nightly_name_list_matches_builder(self):
        from repro.faults.scenarios import NIGHTLY_MATRIX, _nightly_scenarios

        assert sorted(_nightly_scenarios()) == sorted(NIGHTLY_MATRIX)

    @pytest.mark.parametrize(
        "name", ["broadcast/delay_spike_pbft"]
    )
    def test_async_engine_scenarios_run_clean(self, name):
        row = run_scenario(3, name)
        assert row["violations"] == 0
        assert row["smr"] == "async"
        assert row["delivery_bound_met"]

    @pytest.mark.parametrize(
        "name", ["broadcast/isolated_catchup_pbft", "broadcast/checkpoint_gc_pbft"]
    )
    def test_checkpoint_scenarios_reach_log_equality(self, name):
        # Checkpoint-enabled rows run the monitor's eventual-equality mode:
        # zero violations here means every isolated/stalled replica closed
        # its log gap through checkpoint announces + state transfer (or the
        # announce tail signal), not merely that nothing diverged.
        row = run_scenario(7, name)
        assert row["violations"] == 0
        assert row["checkpoint_interval"] > 0
        assert row["delivery_bound_met"]
        assert row["counters"]["smr.checkpoint.stable"] > 0
        if name == "broadcast/checkpoint_gc_pbft":
            # Sustained load actually exercised log GC.
            assert row["counters"]["smr.checkpoint.slots_gc"] > 0

    @pytest.mark.parametrize(
        "name",
        ["broadcast/partition_heal", "broadcast/silent_minority", "churn/crash_recover", "growth/none"],
    )
    def test_representative_scenarios_run_clean(self, name):
        row = run_scenario(3, name)
        assert row["violations"] == 0
        assert row["checks_run"] > 0
        assert row["delivery_bound_met"]

    def test_scenario_shard_parallel_matches_serial(self):
        seeds = [3, 5]
        kwargs = {"name": "broadcast/none"}
        serial = run_and_merge(
            "repro.faults.scenarios:scenario_shard", seeds, workers=1, kwargs=kwargs
        )
        parallel = run_and_merge(
            "repro.faults.scenarios:scenario_shard", seeds, workers=2, kwargs=kwargs
        )
        assert serial["counters"] == parallel["counters"]
        for name, histogram in serial["histograms"].items():
            assert parallel["histograms"][name].samples == histogram.samples

    def test_shard_snapshot_shape(self):
        snapshot = scenario_shard(3, "broadcast/none")
        assert snapshot["counters"]["scenario.runs"] == 1.0
        assert snapshot["counters"]["scenario.violations"] == 0.0
        assert snapshot["histograms"]["scenario.delivery_fraction"] == [1.0]


# -------------------------------------------------- adversarial recovery (PR 6)


class TestAdversarialRecovery:
    """Byzantine state-transfer servers, split-brain directories, slowdowns."""

    def test_matrix_covers_adversarial_recovery(self):
        # The PR-6 additions: active Byzantine transfer responders, the
        # split-brain directory heal, the rejoin x eviction-pipeline cross,
        # and the slow-vgroup cost perturbation.
        for name in (
            "broadcast/byz_transfer_stonewall",
            "broadcast/byz_transfer_slow_drip",
            "broadcast/byz_transfer_garbage",
            "broadcast/split_brain_directory",
            "broadcast/rejoin_eviction",
            "churn/slow_vgroup",
        ):
            assert name in SMALL_MATRIX
        for name in (
            "broadcast/byz_transfer_stonewall",
            "broadcast/byz_transfer_slow_drip",
            "broadcast/byz_transfer_garbage",
        ):
            scenario = SCENARIOS[name]
            assert scenario.smr == "async" and scenario.checkpoint_interval > 0
            assert scenario.catchup_bound is not None

    def test_nightly_matrix_covers_adversarial_recovery(self):
        from repro.faults.scenarios import NIGHTLY_MATRIX, _resolve

        for name in (
            "nightly/byzantine_transfer",
            "nightly/split_brain_directory",
            "nightly/rejoin_eviction",
        ):
            assert name in NIGHTLY_MATRIX
            assert _resolve(name).nodes >= 400
        assert _resolve("nightly/byzantine_transfer").catchup_bound is not None

    @pytest.mark.parametrize(
        "name, counter",
        [
            ("broadcast/byz_transfer_stonewall", "faults.transfer_stonewalled"),
            ("broadcast/byz_transfer_slow_drip", "faults.transfer_slow_dripped"),
            ("broadcast/byz_transfer_garbage", "faults.transfer_garbage_served"),
        ],
    )
    def test_byzantine_transfer_servers_cannot_stall_catchup(self, name, counter):
        # Laggards recover through state transfer while a Byzantine minority
        # actively misserves the requests.  Zero violations is log equality
        # (checkpointed rows run the monitor's eventual-equality mode), the
        # adversary counter proves the behaviour actually fired, and the
        # catch-up bound turns "recovered eventually" into a latency SLO --
        # run_scenario fails the bound vacuously when no transfer happened.
        row = run_scenario(7, name)
        assert row["violations"] == 0
        assert row["counters"][counter] > 0
        assert row["counters"]["smr.checkpoint.state_requests"] > 0
        assert row["delivery_bound_met"]
        assert row["catchup_bound_met"]
        assert row["catchup_latency_max"] is not None
        assert row["catchup_latency_max"] <= SCENARIOS[name].catchup_bound

    def test_split_brain_directories_reconcile_at_heal(self):
        # Each side runs its own membership directory while the split is
        # active; the heal merges them deterministically and the monitor
        # replays the merge from the recorded side snapshots.  A cross-side
        # eviction is deferred mid-split and enforced at merge.
        row = run_scenario(7, "broadcast/split_brain_directory")
        assert row["violations"] == 0
        counters = row["counters"]
        assert counters["directory.splits"] >= 1
        assert counters["directory.merges"] >= 1
        assert counters["directory.evictions_deferred"] >= 1
        assert counters["directory.merge_evictions_enforced"] >= 1
        assert row["delivery_bound_met"]

    def test_rejoin_attack_against_the_eviction_pipeline_stays_bounded(self):
        # Join-leave churn by the adversary races the heartbeat eviction
        # pipeline; the attack bound caps the coalition's excess over the
        # strict per-group minority while evictions are actually landing.
        row = run_scenario(7, "broadcast/rejoin_eviction")
        assert row["violations"] == 0
        assert row["attack_bound_met"]
        assert row["evictions_observed"] > 0
        assert row["counters"]["faults.rejoin_joins"] > 0
        assert row["delivery_bound_met"]

    def test_slow_vgroup_perturbation_costs_latency_not_safety(self):
        # The cost perturbation stretches one vgroup's link latencies; the
        # row measures the penalty (so the matrix can track it) and safety
        # invariants must hold regardless.
        row = run_scenario(7, "churn/slow_vgroup")
        assert row["violations"] == 0
        assert row["slowdown_penalty_mean"] > 0
        assert row["slowdown_penalty_max"] >= row["slowdown_penalty_mean"]
        assert row["delivery_bound_met"]
